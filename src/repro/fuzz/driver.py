"""The budgeted search loop: Hypothesis as a counterexample engine.

:func:`search` runs ``budget`` synthesized cases from one strategy
space through the oracle.  A monitor FAIL raises inside the Hypothesis
test body, which switches Hypothesis into its shrinking phase; the
final (minimal) failing example is captured on its last execution and
serialized as a ``shrunk`` fixture.  Surviving examples are scored by
how hard they pressed the bounds (near-bound skew, envelope-grazing
resync) and the best become ``interesting`` fixtures, promotable into
the scenario registry.

Determinism: the loop pins an explicit Hypothesis seed, disables the
example database and deadlines, and restricts phases to
``generate`` + ``shrink`` (no ``explain`` re-runs that could overwrite
the captured minimum), so a ``(strategy, budget, seed)`` triple always
reproduces the same report — which is what lets the campaign layer
shard fuzz budgets across pool workers with derived seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from hypothesis import HealthCheck, Phase, Verbosity, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from repro.fuzz.corpus import fixture_id, make_fixture
from repro.fuzz.oracle import interest_score, run_fuzz_case
from repro.fuzz.strategies import (
    fuzz_cases,
    known_bad_cases,
    valid_churn_cases,
    valid_cps_cases,
)

#: Examples generated per default-budget run (seconds, not minutes).
DEFAULT_BUDGET = 100

#: A surviving example is *interesting* when some bound ratio reaches
#: this floor; the best ``max_interesting`` of them become fixtures.
#: (The protocol legitimately operates close to ``S`` under maximum
#: delay, so the floor alone is not selective — ranking is.)
INTERESTING_FLOOR = 0.9
DEFAULT_MAX_INTERESTING = 2

#: Strategy spaces addressable from the CLI and the campaign layer.
STRATEGY_SPACES = {
    "valid": fuzz_cases,
    "cps": valid_cps_cases,
    "churn": valid_churn_cases,
    "known-bad": known_bad_cases,
}

#: What finding a violation *means* per space: in the valid spaces it
#: is a theorem-bound counterexample (the run failed); in the known-bad
#: space it is the expected outcome (the oracle works).
STRATEGY_EXPECTS_VIOLATION = {"known-bad": True}


class UnknownStrategyError(KeyError):
    """Raised for strategy names outside :data:`STRATEGY_SPACES`."""


class _CounterexampleFound(Exception):
    """Internal control flow: hands a monitor FAIL to the shrinker."""


@dataclass
class FuzzReport:
    """Outcome of one budgeted search."""

    strategy: str
    budget: int
    seed: int
    executions: int
    counterexample: Optional[Dict[str, Any]] = None
    interesting: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.counterexample is not None

    @property
    def expects_violation(self) -> bool:
        return STRATEGY_EXPECTS_VIOLATION.get(self.strategy, False)

    @property
    def ok(self) -> bool:
        """Did the search end the way its space predicts?"""
        return self.found == self.expects_violation

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "executions": self.executions,
            "found": self.found,
            "ok": self.ok,
            "counterexample": self.counterexample,
            "interesting": self.interesting,
        }


def available_strategies() -> List[str]:
    return list(STRATEGY_SPACES)


def search(
    strategy: str = "valid",
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    max_interesting: int = DEFAULT_MAX_INTERESTING,
    trace: Any = "pulses",
) -> FuzzReport:
    """Run ``budget`` examples of ``strategy`` through the oracle.

    Returns a :class:`FuzzReport`; ``counterexample`` (when found) is a
    *shrunk* fixture payload — Hypothesis re-executes the minimal
    failing example last, so the final capture is the minimum.
    ``executions`` counts actual oracle runs including shrink steps.
    """
    try:
        space = STRATEGY_SPACES[strategy]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown fuzz strategy {strategy!r} "
            f"(available: {', '.join(STRATEGY_SPACES)})"
        ) from None
    captured: Dict[str, Any] = {}
    survivors: Dict[str, Any] = {}
    counter = {"executions": 0}

    @hypothesis_seed(seed)
    @hypothesis_settings(
        max_examples=budget,
        database=None,
        deadline=None,
        derandomize=False,
        verbosity=Verbosity.quiet,
        phases=(Phase.generate, Phase.shrink),
        suppress_health_check=list(HealthCheck),
    )
    @given(payload=space())
    def probe(payload: Dict[str, Any]) -> None:
        counter["executions"] += 1
        run = run_fuzz_case(
            payload["case"], payload["pulses"], payload["seed"],
            trace=trace,
        )
        if not run.ok:
            captured["payload"] = payload
            captured["violations"] = [
                violation.as_dict() for violation in run.violations()
            ]
            raise _CounterexampleFound(payload)
        if not captured:
            score = interest_score(run)
            if score.score >= INTERESTING_FLOOR:
                key = fixture_id(
                    payload["case"], payload["pulses"], payload["seed"]
                )
                survivors[key] = (score, payload)

    try:
        probe()
        counterexample = None
    except _CounterexampleFound:
        payload = captured["payload"]
        counterexample = make_fixture(
            payload["case"],
            payload["pulses"],
            payload["seed"],
            strategy=strategy,
            origin="shrunk",
            expect="violation",
            summary={"violations": captured["violations"]},
        )
    ranked = sorted(
        survivors.items(), key=lambda item: (-item[1][0].score, item[0])
    )
    interesting = [
        make_fixture(
            payload["case"],
            payload["pulses"],
            payload["seed"],
            strategy=strategy,
            origin="interesting",
            expect="pass",
            summary={"score": score.as_dict()},
        )
        for _key, (score, payload) in ranked[: max(max_interesting, 0)]
    ]
    return FuzzReport(
        strategy=strategy,
        budget=budget,
        seed=seed,
        executions=counter["executions"],
        counterexample=counterexample,
        interesting=interesting,
    )


def _describe_case(fixture: Dict[str, Any]) -> str:
    case = fixture["case"]
    axes = [
        f"{kind}={case[kind]}"
        for kind in ("adversary", "delay", "drift", "churn", "topology")
        if kind in case
    ]
    if "u_tilde" in case:
        axes.append(f"u_tilde={case['u_tilde']}")
    return (
        f"n={case['n']} pulses={fixture['pulses']} "
        f"seed={fixture['seed']} " + " ".join(axes)
    )


def render_fuzz_report(report: FuzzReport) -> str:
    """Human-readable search outcome for ``stdout``."""
    lines = [
        f"fuzz [{report.strategy}] budget={report.budget} "
        f"seed={report.seed} — {report.executions} oracle run(s)"
    ]
    if report.counterexample is not None:
        fixture = report.counterexample
        violations = fixture["summary"].get("violations", [])
        lines.append(
            f"  COUNTEREXAMPLE fuzz-{fixture['fixture_id']} "
            f"({len(violations)} violation(s), shrunk): "
            f"{_describe_case(fixture)}"
        )
        for violation in violations:
            lines.append(
                f"    ! {violation['monitor']}: {violation['message']} "
                f"(observed {violation['observed']:.6g}, "
                f"bound {violation['bound']:.6g})"
            )
    else:
        lines.append("  no monitor violations found")
    for fixture in report.interesting:
        score = fixture["summary"].get("score", {})
        lines.append(
            f"  interesting fuzz-{fixture['fixture_id']} "
            f"(score {score.get('score', 0.0):.3f}): "
            f"{_describe_case(fixture)}"
        )
    verdict = "matches" if report.ok else "CONTRADICTS"
    expectation = (
        "a violation" if report.expects_violation else "no violations"
    )
    lines.append(
        f"  outcome {verdict} the {report.strategy!r} space's "
        f"expectation ({expectation})"
    )
    return "\n".join(lines)
