"""Property-based search for theorem-bound violations.

The conformance engine judges *hand-written* scenarios; this package
turns the monitors into a counterexample **oracle**: Hypothesis
strategies synthesize registry-keyed cases — delay policies within the
``d``/``u`` envelope, Byzantine behaviours composed from the registry's
adversary primitives, fault schedules validated against the ``f``
budget — and a driver runs each one through the scheduler's ``checks=``
hook.  Any monitor FAIL is a found counterexample; Hypothesis shrinking
reduces it to a minimal case that is serialized as a deterministic,
content-hashed fixture and can be promoted into the scenario registry
(kind ``fuzz``) as a permanent regression gate.

``strategies``
    The search spaces: :func:`valid_cps_cases`,
    :func:`valid_churn_cases`, their union :func:`fuzz_cases`, and the
    deliberately-broken :func:`known_bad_cases` region (E8's
    ``u_tilde >> u`` corner) used to sanity-gate the oracle.
``oracle``
    :func:`run_fuzz_case` — one synthesized case through
    :func:`repro.build.build_simulation` with
    the applicable check set attached; :func:`replay_fixture` and the
    byte-stable :func:`verdict_payload` for deterministic replay.
``corpus``
    Content-hashed fixture files under ``results/fuzz/`` —
    save/load/list, promotion into the registry, and
    :func:`load_promoted` to re-register a committed corpus.
``driver``
    :func:`search` — the budgeted Hypothesis loop with shrink capture
    and interesting-corner scoring (near-bound skew, envelope-grazing
    resync).

See ``docs/FUZZING.md`` for the workflow.
"""

from repro.fuzz.corpus import (
    CORPUS_DIR,
    FIXTURE_SCHEMA,
    PROMOTED_DIR,
    fixture_id,
    fixture_path,
    list_fixtures,
    load_fixture,
    load_promoted,
    make_fixture,
    promote_fixture,
    register_fixture,
    save_fixture,
)
from repro.fuzz.driver import (
    DEFAULT_BUDGET,
    INTERESTING_FLOOR,
    FuzzReport,
    available_strategies,
    render_fuzz_report,
    search,
)
from repro.fuzz.oracle import (
    FuzzRun,
    expectation_verdict,
    interest_score,
    replay_fixture,
    run_fuzz_case,
    verdict_payload,
)
from repro.fuzz.strategies import (
    fuzz_cases,
    known_bad_cases,
    valid_cps_cases,
    valid_churn_cases,
)

__all__ = [
    "CORPUS_DIR",
    "DEFAULT_BUDGET",
    "FIXTURE_SCHEMA",
    "INTERESTING_FLOOR",
    "PROMOTED_DIR",
    "FuzzReport",
    "FuzzRun",
    "available_strategies",
    "expectation_verdict",
    "fixture_id",
    "fixture_path",
    "fuzz_cases",
    "interest_score",
    "known_bad_cases",
    "list_fixtures",
    "load_fixture",
    "load_promoted",
    "make_fixture",
    "promote_fixture",
    "register_fixture",
    "render_fuzz_report",
    "replay_fixture",
    "run_fuzz_case",
    "save_fixture",
    "search",
    "valid_cps_cases",
    "valid_churn_cases",
    "verdict_payload",
]
