"""Hypothesis strategies over the scenario registry.

Every strategy draws a complete *fuzz payload* — a plain dict
``{"case": ..., "pulses": ..., "seed": ...}`` whose ``case`` follows
:func:`repro.build.build_simulation`
conventions — so a drawn example is exactly what the campaign engine
already knows how to run, hash, and cache.

The **valid** spaces stay inside the model the theorems assume:

* delays honour the ``d``/``u`` envelope (``d`` fixed, ``u < d/2``, no
  ``u_tilde`` override), with policy parameters drawn over their full
  documented ranges;
* Byzantine behaviours are composed from the registry's ``cps``-tagged
  adversary primitives (``apa``-tagged round-model adversaries cannot
  run under the pulse engine);
* fault schedules are instantiated during the draw and discarded
  (``hypothesis.assume``) when the profile cannot fit the deployment's
  ``f`` budget, so the driver only ever sees schedules that validate.

A monitor violation inside these spaces is a genuine counterexample to
the Theorem 17 / Lemma 11 / churn-stabilization claims as implemented.

The **known-bad** space deliberately breaks the model the same way the
hand-written broken fixture does (E8: ``rushing-echo`` +
``fast-to-faulty`` with ``u_tilde`` a multiple of ``u``), which is what
sanity-gates the whole loop: the fuzzer must find a violation there and
shrink it to a case no larger than the hand-written one.

Choice lists are ordered simplest-first because Hypothesis shrinks
toward the first element — a shrunk counterexample prefers ``silent``
over ``rushing-echo``, the smallest ``n``, the fewest pulses.
"""

from __future__ import annotations

from hypothesis import assume
from hypothesis import strategies as st

from repro import scenarios
from repro.core.params import derive_parameters
from repro.dynamics.schedule import MalformedScheduleError

#: The fixed message-delay upper bound; ``u`` is fuzzed below ``d/2``.
FUZZ_D = 1.0

#: System sizes searched.  CPS allows ``n >= 4`` (``f >= 1``); churn
#: profiles need a slightly larger budget to fit their corruptions.
CPS_N_RANGE = (4, 8)
CHURN_N_RANGE = (5, 8)

#: Drift-rate bound: the paper needs ``theta < THETA_MAX ~ 1.0795``;
#: realistic deployments sit near 1, and the monitors' bounds tighten
#: as ``theta`` falls, so the search concentrates where violations
#: would be hardest to hide.
THETA_RANGE = (1.0, 1.005)

#: Delay-uncertainty range; the TCB construction requires ``u < d/2``.
U_RANGE = (0.005, 0.05)

#: Pulses per run.  Churn runs are longer: every scheduled activation
#: must fire and the rejoiner needs resync headroom (the conformance
#: tiers use 14 for the same reason).
CPS_PULSES_RANGE = (4, 10)
CHURN_PULSES_RANGE = (12, 16)

#: ``u_tilde = factor * u`` in the known-bad region (E8 uses 16).
BAD_U_TILDE_FACTORS = (2, 16)

#: CPS-engine adversaries (``apa``-tagged entries are round-model
#: only), simplest first for shrinking.
CPS_ADVERSARIES = (
    "silent",
    "mimic-split",
    "equivocating-subset",
    "coordinated-offset",
    "replay",
    "rushing-echo",
)

#: Every registered delay policy runs under the CPS engine.
CPS_DELAYS = (
    "maximum",
    "minimum",
    "constant-fraction",
    "random",
    "skewing",
    "biased-partition",
    "eclipse",
    "fast-to-faulty",
    "flicker-partition",
)

DRIFTS = ("random", "extreme", "mixed", "staggered")

#: The churn envelope is deliberately narrower: a rejoiner's resync
#: budget (RESYNC_PULSE_BUDGET) is calibrated against benign delivery,
#: so targeted-delay policies (eclipse of the rejoiner, flickering
#: partitions) compose with churn outside the validated envelope.
CHURN_ADVERSARIES = ("silent", "mimic-split", "rushing-echo")
CHURN_DELAYS = ("maximum", "minimum", "random")
CHURN_DRIFTS = ("random", "extreme")

CHURN_PROFILES = (
    "single-crash",
    "crash-recover-wave",
    "flapping-node",
    "late-join-cohort",
    "rolling-crashes",
    "adversary-handoff",
)

_FRACTION = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_SEED = st.integers(min_value=0, max_value=2**32 - 1)


def _theta() -> st.SearchStrategy:
    return st.floats(
        min_value=THETA_RANGE[0],
        max_value=THETA_RANGE[1],
        allow_nan=False,
        allow_infinity=False,
    )


def _u() -> st.SearchStrategy:
    return st.floats(
        min_value=U_RANGE[0],
        max_value=U_RANGE[1],
        allow_nan=False,
        allow_infinity=False,
    )


@st.composite
def _adversary_axis(draw, keys=CPS_ADVERSARIES):
    """``(key, params)`` with factory parameters over their ranges."""
    key = draw(st.sampled_from(keys))
    params = {}
    if key == "mimic-split":
        params = {
            "spread_fraction": draw(_FRACTION),
            "stagger": draw(
                st.floats(
                    min_value=0.0,
                    max_value=0.1,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
        }
    elif key == "coordinated-offset":
        params = {
            "offset_fraction": draw(_FRACTION),
            "alternate": draw(st.booleans()),
        }
    elif key == "replay":
        params = {
            "seed": draw(st.integers(min_value=0, max_value=99)),
            "copies": draw(st.integers(min_value=1, max_value=3)),
        }
    return key, params


@st.composite
def _delay_axis(draw, keys=CPS_DELAYS):
    """``(key, params)`` within the honest ``d``/``u`` envelope."""
    key = draw(st.sampled_from(keys))
    params = {}
    if key == "constant-fraction":
        params = {"fraction": draw(_FRACTION)}
    elif key == "random":
        params = {"seed": draw(st.integers(min_value=0, max_value=99))}
    elif key == "flicker-partition":
        params = {
            "period": draw(
                st.floats(
                    min_value=2.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
        }
    return key, params


@st.composite
def valid_cps_cases(draw):
    """Static CPS deployments inside the model the theorems assume."""
    n = draw(st.integers(*CPS_N_RANGE))
    adversary, adversary_params = draw(_adversary_axis())
    delay, delay_params = draw(_delay_axis())
    case = {
        "n": n,
        "theta": draw(_theta()),
        "d": FUZZ_D,
        "u": draw(_u()),
        "adversary": adversary,
        "delay": delay,
        "drift": draw(st.sampled_from(DRIFTS)),
    }
    if adversary_params:
        case["adversary_params"] = adversary_params
    if delay_params:
        case["delay_params"] = delay_params
    return {
        "case": case,
        "pulses": draw(st.integers(*CPS_PULSES_RANGE)),
        "seed": draw(_SEED),
    }


@st.composite
def _churn_profile_axis(draw, n: int):
    """``(key, params)`` for a fault-schedule profile sized to ``n``."""
    key = draw(st.sampled_from(CHURN_PROFILES))
    params = {}
    if key == "single-crash":
        params = {
            "node": draw(st.integers(min_value=0, max_value=n - 1)),
            "at_pulse": draw(st.integers(min_value=2, max_value=4)),
        }
    elif key in ("crash-recover-wave", "late-join-cohort",
                 "adversary-handoff"):
        params = {"at_pulse": draw(st.integers(min_value=2, max_value=3))}
    elif key == "flapping-node":
        params = {
            "cycles": draw(st.integers(min_value=1, max_value=2)),
            "node": draw(st.integers(min_value=0, max_value=n - 1)),
        }
    elif key == "rolling-crashes":
        params = {"gap": draw(st.integers(min_value=3, max_value=5))}
    return key, params


@st.composite
def valid_churn_cases(draw):
    """Deployments under membership dynamics within the ``f`` budget.

    The fault schedule is instantiated (and validated) during the draw;
    profiles that cannot fit the deployment's budget are discarded with
    ``assume``, so every surviving example carries a well-formed
    schedule.
    """
    n = draw(st.integers(*CHURN_N_RANGE))
    theta = draw(_theta())
    u = draw(_u())
    churn, churn_params = draw(_churn_profile_axis(n))
    params = derive_parameters(theta, FUZZ_D, u, n)
    try:
        schedule = scenarios.create("churn", churn, params, **churn_params)
        schedule.validate(params.n, params.f)
    except MalformedScheduleError:
        assume(False)
    case = {
        "n": n,
        "theta": theta,
        "d": FUZZ_D,
        "u": u,
        "churn": churn,
        "adversary": draw(st.sampled_from(CHURN_ADVERSARIES)),
        "delay": draw(st.sampled_from(CHURN_DELAYS)),
        "drift": draw(st.sampled_from(CHURN_DRIFTS)),
    }
    if churn_params:
        case["churn_params"] = churn_params
    return {
        "case": case,
        "pulses": draw(st.integers(*CHURN_PULSES_RANGE)),
        "seed": draw(_SEED),
    }


def fuzz_cases() -> st.SearchStrategy:
    """The full valid space: static CPS plus churn deployments."""
    return st.one_of(valid_cps_cases(), valid_churn_cases())


@st.composite
def known_bad_cases(draw):
    """E8's model-violation region: faulty links undercut ``u``.

    ``rushing-echo`` + ``fast-to-faulty`` with ``u_tilde`` a multiple
    of ``u`` reproduces the broken fixture's setup across sizes and
    factors; every point in this region breaks Theorem 17, which is
    what the sanity-gate test relies on.
    """
    n = draw(st.integers(*CPS_N_RANGE))
    u = draw(st.sampled_from([0.01, 0.02]))
    factor = draw(st.integers(*BAD_U_TILDE_FACTORS))
    case = {
        "n": n,
        "theta": draw(st.sampled_from([1.0005, 1.001])),
        "d": FUZZ_D,
        "u": u,
        "u_tilde": round(factor * u, 10),
        "adversary": "rushing-echo",
        "delay": "fast-to-faulty",
        "drift": "extreme",
    }
    return {
        "case": case,
        "pulses": draw(st.integers(min_value=6, max_value=12)),
        "seed": draw(st.integers(min_value=0, max_value=999)),
    }
