"""The fuzz corpus: content-hashed, replayable fixture files.

A fixture is the serialized form of one fuzz payload plus provenance —
the same shape the hand-written broken fixtures expose through
``repro check fixture``: everything needed to re-execute the case
deterministically, plus what the search observed when it found it.

Identity is content-addressed: :func:`fixture_id` hashes the runnable
triple ``(case, pulses, seed)`` through the campaign engine's
:func:`~repro.campaigns.spec.stable_hash`, so re-discovering the same
minimal counterexample produces the same file name, and provenance
fields (scores, violation summaries) never perturb identity.  Files are
written through :func:`~repro.campaigns.store.dump_json_summary`, the
byte-stable serializer every committed artifact uses.

Layout under ``results/fuzz/``::

    corpus/    fuzz-<id>.json   found by `repro fuzz run` (seed corpus
               entries are committed; CI finds are uploaded artifacts)
    promoted/  fuzz-<id>.json   promoted via `repro fuzz promote` —
               re-registered into the scenario registry (kind ``fuzz``)
               by :func:`load_promoted`

Registration is *never* import-time: the conformance matrix and the
scenario catalog only see fuzz entries after an explicit
:func:`register_fixture` / :func:`load_promoted` call, which keeps the
committed ``results/conformance.json`` baseline byte-stable.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional

from repro.campaigns.spec import stable_hash
from repro.campaigns.store import dump_json_summary
from repro.scenarios import REGISTRY
from repro.scenarios.registry import ScenarioRegistry

#: Schema tag every fixture file carries (versioned for migrations).
FIXTURE_SCHEMA = "fuzz-fixture/v1"

DEFAULT_FUZZ_DIR = os.path.join("results", "fuzz")
CORPUS_DIR = os.path.join(DEFAULT_FUZZ_DIR, "corpus")
PROMOTED_DIR = os.path.join(DEFAULT_FUZZ_DIR, "promoted")


class MalformedFixtureError(ValueError):
    """A fixture file that does not parse into the expected schema."""


def fixture_id(case: Dict[str, Any], pulses: int, seed: int) -> str:
    """Content hash of the runnable triple (16 hex chars)."""
    return stable_hash({"case": case, "pulses": pulses, "seed": seed})[:16]


def make_fixture(
    case: Dict[str, Any],
    pulses: int,
    seed: int,
    *,
    strategy: str,
    origin: str,
    expect: str,
    summary: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a fixture payload from a fuzz case plus provenance.

    ``origin`` is ``"shrunk"`` (a minimized counterexample),
    ``"interesting"`` (a surviving near-bound corner), or ``"seed"``
    (hand-promoted corpus entry); ``expect`` is ``"violation"`` or
    ``"pass"`` — what a replay must reproduce.
    """
    if expect not in ("violation", "pass"):
        raise ValueError(f"expect must be violation|pass, got {expect!r}")
    return {
        "schema": FIXTURE_SCHEMA,
        "fixture_id": fixture_id(case, pulses, seed),
        "strategy": strategy,
        "origin": origin,
        "expect": expect,
        "case": dict(case),
        "pulses": pulses,
        "seed": seed,
        "summary": dict(summary or {}),
    }


def fixture_path(payload: Dict[str, Any], directory: str) -> str:
    return os.path.join(directory, f"fuzz-{payload['fixture_id']}.json")


def save_fixture(payload: Dict[str, Any], directory: str) -> str:
    """Write a fixture canonically; returns the content-addressed path."""
    os.makedirs(directory, exist_ok=True)
    path = fixture_path(payload, directory)
    dump_json_summary(path, payload)
    return path


def load_fixture(path: str) -> Dict[str, Any]:
    """Parse and schema-check one fixture file."""
    if not os.path.exists(path):
        raise MalformedFixtureError(f"fixture file not found: {path}")
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise MalformedFixtureError(
                f"{path} is not valid JSON: {exc}"
            ) from None
    if not isinstance(payload, dict) or payload.get(
        "schema"
    ) != FIXTURE_SCHEMA:
        found = (
            payload.get("schema") if isinstance(payload, dict) else None
        )
        raise MalformedFixtureError(
            f"{path} is not a {FIXTURE_SCHEMA} fixture "
            f"(schema: {found!r})"
        )
    for field in ("fixture_id", "case", "pulses", "seed", "expect"):
        if field not in payload:
            raise MalformedFixtureError(
                f"{path} is missing the {field!r} field"
            )
    return payload


def list_fixtures(directory: str) -> List[str]:
    """Fixture file paths under ``directory``, sorted by name."""
    return sorted(glob.glob(os.path.join(directory, "fuzz-*.json")))


def register_fixture(
    payload: Dict[str, Any],
    registry: ScenarioRegistry = REGISTRY,
) -> str:
    """Register a fixture as a ``fuzz`` scenario entry; returns the key.

    Idempotent: re-registering the same content hash is a no-op (the
    registry otherwise refuses re-registration), so loading a promoted
    corpus twice is safe.
    """
    key = payload["fixture_id"]
    if registry.has("fuzz", key):
        return key
    frozen = json.loads(json.dumps(payload))
    summary = payload.get("summary", {})
    violations = summary.get("violations") or []
    if payload["expect"] == "violation":
        what = (
            f"shrunk counterexample ({len(violations)} violation(s))"
            if violations
            else "shrunk counterexample"
        )
    else:
        score = (summary.get("score") or {}).get("score")
        what = (
            f"interesting corner (score {score:.3f})"
            if isinstance(score, (int, float))
            else "interesting corner"
        )
    description = (
        f"promoted fuzz fixture: {what}, strategy "
        f"{payload.get('strategy', '?')}"
    )

    @registry.register(
        "fuzz",
        key,
        description=description,
        paper_ref="Thm 17 / Lemma 11 bounds as a counterexample oracle",
        tags=("fuzz", payload.get("origin", "seed"), payload["expect"]),
    )
    def _fixture_factory(params: Any = None, **_overrides: Any):
        return json.loads(json.dumps(frozen))

    return key


def promote_fixture(
    payload: Dict[str, Any],
    registry: ScenarioRegistry = REGISTRY,
    directory: str = PROMOTED_DIR,
) -> tuple:
    """Promote a fixture: persist it under ``promoted/`` and register
    it as a ``fuzz`` scenario entry.

    Returns ``(key, path)``.  The file is the durable half (the
    registry is per-process); :func:`load_promoted` re-registers a
    committed corpus.
    """
    path = save_fixture(payload, directory)
    key = register_fixture(payload, registry)
    return key, path


def load_promoted(
    registry: ScenarioRegistry = REGISTRY,
    directory: str = PROMOTED_DIR,
) -> List[str]:
    """Register every promoted fixture on disk; returns their keys."""
    keys = []
    for path in list_fixtures(directory):
        keys.append(register_fixture(load_fixture(path), registry))
    return keys
