"""The counterexample oracle: one fuzz payload through the monitors.

A fuzz payload is runnable data — ``{"case", "pulses", "seed"}`` — and
the oracle contract is exactly the conformance engine's: build the
simulation with :func:`repro.build.build_simulation`, attach the
applicable check set through the scheduler's ``checks=`` hook (the
churn stabilization monitor when the case names a fault schedule, the
Theorem 17 / Lemma 11 set otherwise), run, and collect verdicts.  Any
verdict with violations is a counterexample.

Everything is deterministic given the payload — replaying a fixture
twice, or at different trace levels, produces byte-identical
:func:`verdict_payload` serializations; the determinism tests and the
``repro fuzz replay`` CLI rely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.analysis import metrics
from repro.build import build_simulation
from repro.checks.conformance import (
    FUZZ_EXPECTATION_CLAIM,
    FUZZ_EXPECTATION_MONITOR,
    RESYNC_PULSE_BUDGET,
    churn_check_set,
    cps_check_set,
)
from repro.checks.monitors import MonitorVerdict, Violation


@dataclass
class FuzzRun:
    """One executed fuzz case: verdicts plus the run's raw material."""

    verdicts: Tuple[MonitorVerdict, ...]
    result: Any
    params: Any
    simulation: Any
    mode: str  # "cps" | "churn"

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def violations(self) -> List[Violation]:
        return [
            violation
            for verdict in self.verdicts
            for violation in verdict.violations
        ]


def run_fuzz_case(
    case: Dict[str, Any],
    pulses: int,
    seed: int,
    trace: Any = "pulses",
) -> FuzzRun:
    """Execute one registry-keyed case with its monitors attached."""
    simulation, params, _f, _effective = build_simulation(
        case, seed=seed, trace=trace
    ).legacy_tuple()
    mode = "churn" if "churn" in case else "cps"
    if mode == "churn":
        checks = churn_check_set(simulation.dynamics.schedule, params)
    else:
        checks = cps_check_set(params, simulation.honest, pulses)
    simulation.attach_checks(checks)
    result = simulation.run(max_pulses=pulses)
    return FuzzRun(
        verdicts=tuple(checks.finish()),
        result=result,
        params=params,
        simulation=simulation,
        mode=mode,
    )


def replay_fixture(payload: Dict[str, Any], trace: Any = "pulses") -> FuzzRun:
    """Re-execute a serialized fixture (same engine path as the search)."""
    return run_fuzz_case(
        payload["case"], payload["pulses"], payload["seed"], trace=trace
    )


def verdict_payload(
    fixture: Dict[str, Any], run: FuzzRun
) -> Dict[str, Any]:
    """The canonical, byte-stable replay output of one fixture.

    Contains the full verdicts *and* the honest pulse streams, so the
    determinism test can assert byte identity across invocations and
    across ``PULSES`` vs ``FULL`` trace levels (no wall-clock data).
    """
    expect = fixture.get("expect", "pass")
    fired = not run.ok
    return {
        "fixture_id": fixture.get("fixture_id"),
        "expect": expect,
        "ok": run.ok,
        "expectation_met": fired == (expect == "violation"),
        "verdicts": [verdict.as_dict() for verdict in run.verdicts],
        "pulses": {
            str(node): times
            for node, times in sorted(run.result.pulses.items())
        },
        "events": run.result.events_processed,
    }


def expectation_verdict(
    payload: Dict[str, Any], run: FuzzRun
) -> MonitorVerdict:
    """Judge a promoted fixture against its recorded expectation.

    A fixture promoted as a *counterexample* (``expect: violation``)
    passes conformance while the monitors still fire on it — it is a
    regression gate on the oracle itself; an *interesting corner*
    (``expect: pass``) passes while the bounds still hold.
    """
    expect = payload.get("expect", "pass")
    fired = not run.ok
    ok = fired == (expect == "violation")
    violations: Tuple[Violation, ...] = ()
    if not ok:
        violations = (
            Violation(
                monitor=FUZZ_EXPECTATION_MONITOR,
                message=(
                    f"fixture expects {expect!r} but the monitors "
                    + ("fired" if fired else "stayed silent")
                ),
                observed=float(fired),
                bound=float(expect == "violation"),
            ),
        )
    return MonitorVerdict(
        monitor=FUZZ_EXPECTATION_MONITOR,
        claim=FUZZ_EXPECTATION_CLAIM,
        ok=ok,
        checked=len(run.verdicts),
        violations=violations,
    )


@dataclass(frozen=True)
class InterestScore:
    """How close a *passing* run came to its bounds (0 = slack, 1 =
    grazing)."""

    skew_over_s: float = 0.0
    resync_over_budget: float = 0.0
    envelope_over_s: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def score(self) -> float:
        return max(
            self.skew_over_s, self.resync_over_budget, self.envelope_over_s
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "score": self.score,
            "skew_over_s": self.skew_over_s,
            "resync_over_budget": self.resync_over_budget,
            "envelope_over_s": self.envelope_over_s,
        }


def interest_score(run: FuzzRun) -> InterestScore:
    """Score a surviving example by how hard it pressed the bounds.

    ``skew_over_s``
        Worst observed honest skew over Theorem 17's ``S`` (for churn
        runs, over the never-disturbed stable cohort).
    ``resync_over_budget``
        Slowest applied activation's pulses-to-resync over the
        conformance resync budget (churn only).
    ``envelope_over_s``
        Worst post-resync alignment envelope over ``S`` (churn only).
    """
    result, params = run.result, run.params
    if run.mode == "churn":
        schedule = run.simulation.dynamics.schedule
        cohort_ids = [
            v
            for v in schedule.stable_nodes(params.n)
            if result.pulses.get(v)
        ]
        cohort = {v: result.pulses[v] for v in cohort_ids}
        try:
            skew_ratio = metrics.max_skew(cohort) / params.S
        except Exception:  # noqa: BLE001 - empty cohort scores zero
            skew_ratio = 0.0
        resync_ratio = 0.0
        envelope_ratio = 0.0
        for time, _kind, node in run.simulation.dynamics.activations_applied():
            report = metrics.stabilization_report(
                result.pulses, node, time, cohort_ids, params.S
            )
            if not report.resynced:
                continue
            resync_ratio = max(
                resync_ratio,
                report.pulses_to_resync / RESYNC_PULSE_BUDGET,
            )
            if report.envelope == report.envelope:  # drop NaNs
                envelope_ratio = max(
                    envelope_ratio, report.envelope / params.S
                )
        return InterestScore(
            skew_over_s=skew_ratio,
            resync_over_budget=resync_ratio,
            envelope_over_s=envelope_ratio,
        )
    honest = {
        v: result.pulses[v]
        for v in run.simulation.honest
        if result.pulses.get(v)
    }
    try:
        skew_ratio = metrics.max_skew(honest) / params.S
    except Exception:  # noqa: BLE001 - no pulses scores zero
        skew_ratio = 0.0
    return InterestScore(skew_over_s=skew_ratio)
