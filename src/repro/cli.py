"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------

``list``
    Show the experiment registry with one-line descriptions.
``run E4 [--scale full] [--csv out.csv]``
    Run one experiment and print its table.
``all [--scale quick] [--out results/]``
    Run every experiment, printing tables (and writing CSVs if asked).
``params --theta 1.001 --d 1.0 --u 0.01 --n 8``
    Derive and display CPS parameters and every bound of Theorem 17.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import theory
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.core.params import derive_parameters, max_faults


def _command_list(_args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS, key=lambda k: (k[0], len(k), k)):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:<4} {doc}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    table = run_experiment(args.experiment, scale=args.scale)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _command_all(args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS, key=lambda k: (k[0], len(k), k)):
        table = run_experiment(name, scale=args.scale)
        print(table.render())
        print()
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            table.to_csv(os.path.join(args.out, f"{name.lower()}.csv"))
    return 0


def _command_params(args: argparse.Namespace) -> int:
    params = derive_parameters(
        theta=args.theta,
        d=args.d,
        u=args.u,
        n=args.n,
        f=args.f,
        T=args.T,
    )
    print(
        f"n={params.n}  f={params.f} (max {max_faults(params.n)})  "
        f"theta={params.theta}  d={params.d}  u={params.u}"
    )
    for name, value in theory.summary(params).items():
        print(f"  {name:<26} {value:.9g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimal Clock Synchronization with "
            "Signatures' (Lenzen & Loss, PODC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        handler=_command_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. E4")
    run_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    run_parser.add_argument("--csv", help="also write the table as CSV")
    run_parser.set_defaults(handler=_command_run)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    all_parser.add_argument("--out", help="directory for CSV outputs")
    all_parser.set_defaults(handler=_command_all)

    params_parser = sub.add_parser(
        "params", help="derive CPS parameters for a deployment"
    )
    params_parser.add_argument("--theta", type=float, required=True)
    params_parser.add_argument("--d", type=float, required=True)
    params_parser.add_argument("--u", type=float, required=True)
    params_parser.add_argument("--n", type=int, required=True)
    params_parser.add_argument("--f", type=int, default=None)
    params_parser.add_argument("--T", type=float, default=None)
    params_parser.set_defaults(handler=_command_params)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
