"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------

``list``
    Show the experiment registry with one-line descriptions.
``run E4 [--scale full] [--csv out.csv]``
    Run one experiment and print its table.
``all [--scale quick] [--out results/]``
    Run every experiment, printing tables (and writing CSVs if asked).
``params --theta 1.001 --d 1.0 --u 0.01 --n 8``
    Derive and display CPS parameters and every bound of Theorem 17.
``campaign list``
    Show the declarative campaign catalog (the ported experiments).
``campaign show E4 [--scale full] [--store results/store]``
    Describe a campaign's grid, trial count, spec key, and cache state.
``campaign run E4 [--scale] [--workers 8] [--store DIR] [--resume]
[--fresh] [--timeout S] [--csv out.csv]``
    Execute a campaign through the sweep engine — serially or on a
    process pool — replaying cached trials from the result store, then
    print its table and execution summary.  ``--queue DIR`` switches
    to elastic execution (enqueue chunk leases, join as one worker);
    ``--adaptive --ci-width X`` replicates each grid cell until the
    confidence interval on the headline metric is narrow enough
    (see ``docs/SCALING.md``).
``campaign enqueue E4 --queue DIR [--scale] [--chunk-size 4]
[--store DIR]``
    Publish a campaign's pending chunks to a work-queue directory for
    detached workers.
``campaign worker --queue DIR --store DIR [--worker-id W]
[--lease-ttl 60] [--max-chunks N]``
    Drain a work queue: claim chunk leases (reclaiming stale ones),
    run trials, write this worker's store shard.
``store list|merge|compact --store DIR [KEY ...] [--drop-corrupt]``
    Result-store maintenance: show keys/shards, fold worker shards
    into the base files (deduped by case key), drop superseded or
    (with ``--drop-corrupt``) undecodable lines.
``scenarios list [--kind adversary|delay|topology|drift|churn]``
    Show the scenario registry: every adversary behaviour, delay
    policy, topology, drift profile, and churn (fault-schedule)
    profile a campaign case can name.
``scenarios show eclipse`` / ``scenarios show delay:random``
    Describe one entry: description, paper reference, parameters,
    tags.  Qualify with ``kind:`` when a key exists in several kinds.
    Churn profiles additionally render their fault-event schedule as
    a per-event table (at the reference configuration).
``ablate plan [--tier quick] [--component NAME ...] [--pairwise]``
    Expand the ablation challenge matrix (baseline-plus-one-off per
    component, optionally pairwise) and show every planned trial with
    its content-addressed case key.
``ablate run [--tier quick] [--workers 8] [--store DIR]
[--adaptive --ci-width X] [--out results/ablation.json] [--check]``
    Execute the matrix through the campaign engine, print the
    per-component importance table (monitor flips + skew deltas), and
    write the byte-stable committed artifact — or, with ``--check``,
    verify the committed copy is fresh (the CI gate).
``ablate report [--path results/ablation.json]``
    Render the committed importance artifact without executing
    anything.  Catalog semantics in ``docs/ABLATIONS.md``.
``perf list``
    Show the registered perf cases.
``perf run [--quick] [--case NAME] [--out results/perf]``
    Measure perf cases and write ``BENCH_<name>.json`` files.
``perf compare --baseline results/perf_baseline.json [--tolerance 0.35]``
    Grade fresh measurements against the committed baseline; exits
    non-zero on a regression (the CI perf gate).
``perf baseline [--out results/perf_baseline.json]``
    Re-record the baseline from the current ``BENCH_*.json`` files.
``check list``
    Show the conformance monitors (one per paper guarantee) and the
    scenarios each applies to.
``check run eclipse [--kind delay] [--monitor skew] [--scale quick]
[--param key=value]``
    Conformance-run one registry scenario with streaming monitors
    attached; non-zero exit on any violation.  ``--param`` forwards
    factory overrides (e.g. ``--param cycles=3`` on a churn profile);
    malformed fault schedules exit cleanly with the validation error.
``check matrix [--scale quick] [--out results/conformance.json]``
    Sweep every applicable registry scenario and render the
    scenario x monitor pass/fail matrix (the CI conformance gate).
``check fixture [--fixture broken|churn|all|PATH]``
    Run the deliberately-broken executions and verify the monitors
    fire (exit non-zero if no violation is detected): ``broken`` is
    the E8 ``u_tilde >> u`` corner, ``churn`` the crash whose
    scheduled recovery never happens.  A path to a serialized fuzz
    fixture replays it instead and verifies its recorded expectation.
``fuzz run [--strategy valid|cps|churn|known-bad] [--budget 100]
[--seed 0] [--out results/fuzz/corpus] [--promote]``
    Property-based search for theorem-bound violations: synthesized
    registry cases through the conformance monitors, with Hypothesis
    shrinking any violation to a minimal content-hashed fixture.
    Exit status follows the space's expectation (a violation inside a
    valid space fails; the known-bad space must find one).
``fuzz list [--dir results/fuzz]``
    Show the fixture corpus (found and promoted).
``fuzz replay FIXTURE [--trace pulses|full]``
    Re-execute one fixture and print its canonical verdict payload
    (byte-identical across invocations and trace levels); non-zero
    exit when the recorded expectation is not reproduced.
``fuzz promote FIXTURE [--dest results/fuzz/promoted]``
    Persist a fixture under ``promoted/`` and register it as a
    ``fuzz``-kind scenario entry (a permanent regression gate).

``campaign run --check`` additionally conformance-runs every scenario
the campaign references and, with ``--store``, persists the verdicts
as ``<spec_key>.check.json`` (mirroring ``--perf``).

``campaign run --telemetry`` instruments every executed trial with the
metrics registry, prints the aggregated counters, and, with
``--store``, persists the byte-stable ``<spec_key>.telemetry.json``
sidecar; ``--profile`` attaches cProfile per trial and tabulates the
top hotspots; ``--progress`` prints live heartbeats (trials done,
rolling events/sec, ETA) to stderr.

``telemetry list``
    Show the fixed metric catalog with one-line meanings.
``telemetry show E4 [--scale quick] [--store DIR] [--metric NAME]``
    Render a campaign's persisted telemetry sidecar (or pass a
    ``.telemetry.json`` path directly).
``telemetry aggregate [--store DIR] [--out FILE]``
    Merge every sidecar in a store into one fleet-level aggregate.
``telemetry diff A B [--scale] [--store DIR] [--changed-only]``
    Counter/gauge deltas between two campaigns' sidecars.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional

from repro import scenarios
from repro.analysis import theory
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.build import (
    UnknownBackendError,
    UnknownComponentError,
    resolve_backend,
)
from repro.campaigns import (
    CorruptStoreError,
    ExecutionPolicy,
    QueueError,
    ResultStore,
    available_campaigns,
    campaign_definition,
    execute_campaign,
    run_summary_table,
)
from repro.core.params import derive_parameters, max_faults
from repro.dynamics import MalformedScheduleError


def _unknown_name_exit(
    name: str, noun: str, available: List[str]
) -> SystemExit:
    """A clean CLI error with a did-you-mean hint for close misses."""
    close = difflib.get_close_matches(name, available, n=1)
    hint = f" — did you mean {close[0]!r}?" if close else ""
    return SystemExit(
        f"unknown {noun} {name!r}{hint} "
        f"(available: {', '.join(available)})"
    )


def _parse_param_overrides(pairs: Optional[List[str]]) -> dict:
    """Parse repeated ``--param key=value`` flags into overrides.

    Values are Python literals when they parse as one (ints, floats,
    tuples, ``None``) and strings otherwise.
    """
    import ast

    overrides = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise SystemExit(
                f"--param expects key=value, got {pair!r}"
            )
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[key] = value
    return overrides


def _campaign_or_exit(name: str):
    try:
        return campaign_definition(name)
    except KeyError:
        raise _unknown_name_exit(
            name, "campaign", available_campaigns()
        ) from None


def _command_list(_args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS, key=lambda k: (k[0], len(k), k)):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
        print(f"{name:<4} {doc}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    # Validate the name up front: a KeyError raised *inside* a running
    # experiment must surface as itself, not as "unknown experiment".
    if args.experiment.upper() not in EXPERIMENTS:
        raise _unknown_name_exit(
            args.experiment, "experiment", sorted(EXPERIMENTS)
        )
    table = run_experiment(args.experiment, scale=args.scale)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _command_all(args: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS, key=lambda k: (k[0], len(k), k)):
        table = run_experiment(name, scale=args.scale)
        print(table.render())
        print()
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            table.to_csv(os.path.join(args.out, f"{name.lower()}.csv"))
    return 0


def _command_params(args: argparse.Namespace) -> int:
    params = derive_parameters(
        theta=args.theta,
        d=args.d,
        u=args.u,
        n=args.n,
        f=args.f,
        T=args.T,
    )
    print(
        f"n={params.n}  f={params.f} (max {max_faults(params.n)})  "
        f"theta={params.theta}  d={params.d}  u={params.u}"
    )
    for name, value in theory.summary(params).items():
        print(f"  {name:<26} {value:.9g}")
    return 0


def _command_campaign_list(_args: argparse.Namespace) -> int:
    for name in available_campaigns():
        definition = campaign_definition(name)
        print(f"{name:<6} {definition.description}")
    return 0


def _command_campaign_show(args: argparse.Namespace) -> int:
    definition = _campaign_or_exit(args.campaign)
    spec = definition.spec()
    info = spec.describe(args.scale)
    print(f"campaign {info['name']} [{info['scale']}] — "
          f"{info['description']}")
    print(f"  seed       {info['seed']}")
    print(f"  spec key   {info['spec_key']}")
    measurement = info["measurement"]
    print(
        f"  measure    pulses={measurement['pulses']} "
        f"warmup={measurement['warmup']} "
        f"liveness={measurement['liveness']}"
    )
    for scenario in info["scenarios"]:
        print(f"  scenario   {scenario['builder']}: "
              f"{scenario['cases']} cases")
    print(f"  trials     {info['trials']}")
    if args.store:
        store = ResultStore(args.store)
        cached = store.count(spec.spec_key(args.scale))
        print(f"  store      {cached}/{info['trials']} trials cached "
              f"in {args.store}")
    return 0


def _command_campaign_run(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    if args.queue and not args.store:
        raise SystemExit(
            "--queue requires --store: elastic workers coordinate "
            "through the shared result store"
        )
    if args.queue and args.fresh:
        raise SystemExit(
            "--fresh is incompatible with --queue (workers skip "
            "persisted case keys); clear the store instead"
        )
    if args.adaptive and args.queue:
        raise SystemExit(
            "--adaptive is incompatible with --queue: the stopping "
            "rule needs round barriers a detached worker fleet "
            "cannot provide"
        )
    if args.adaptive and args.ci_width is None:
        raise SystemExit("--adaptive requires --ci-width")
    if args.ci_width is not None and not args.adaptive:
        raise SystemExit("--ci-width only makes sense with --adaptive")
    definition = _campaign_or_exit(args.campaign)
    spec = definition.spec()
    if args.backend is not None:
        # Re-keying is deliberate: a backend override changes every
        # case/spec hash, so cached event-backend trials are never
        # replayed as vectorized ones (or vice versa).
        from dataclasses import replace

        backend = resolve_backend(args.backend)
        if any(
            m.backend != backend for m in spec.measurements.values()
        ):
            spec = replace(
                spec,
                measurements={
                    scale: replace(m, backend=backend)
                    for scale, m in spec.measurements.items()
                },
            )
    store = ResultStore(args.store) if args.store else None
    try:
        policy = ExecutionPolicy(
            workers=args.workers,
            chunk_size=args.chunk_size,
            timeout=args.timeout,
            queue=args.queue,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    instrumentation = None
    if args.telemetry or args.profile:
        from repro.telemetry.campaign import InstrumentationPlan

        instrumentation = InstrumentationPlan(
            telemetry=args.telemetry,
            profile=args.profile,
            profile_top=args.profile_top,
        )
    reporter = None
    if args.progress:
        from repro.telemetry.progress import ProgressReporter

        reporter = ProgressReporter(
            label=f"{spec.name}/{args.scale}"
        )
    progress = reporter.update if reporter is not None else None
    try:
        if args.adaptive:
            from repro.campaigns.adaptive import (
                AdaptivePolicy,
                execute_adaptive_campaign,
            )

            if instrumentation is not None:
                print(
                    "note: per-trial instrumentation is not applied "
                    "under --adaptive; the sidecar records the "
                    "stopping-rule summary instead"
                )
            adaptive = AdaptivePolicy(
                ci_width=args.ci_width,
                metric=args.ci_metric,
                confidence=args.ci_confidence,
                min_trials=args.min_trials,
                max_trials=args.max_trials,
            )
            run = execute_adaptive_campaign(
                spec,
                scale=args.scale,
                adaptive=adaptive,
                policy=policy,
                store=store,
                reuse=not args.fresh,
                progress=progress,
            )
        else:
            run = execute_campaign(
                spec,
                scale=args.scale,
                policy=policy,
                store=store,
                reuse=not args.fresh,
                instrumentation=instrumentation,
                progress=progress,
            )
    except (ValueError, QueueError) as exc:
        raise SystemExit(str(exc)) from None
    if reporter is not None:
        reporter.finish()
    table = definition.tabulate(run)
    print(table.render())
    print()
    print(run_summary_table(run).render())
    print(run.summary() + f" (workers={policy.workers})")
    if run.adaptive is not None:
        a = run.adaptive
        print(
            f"adaptive[{a['metric']}]: {a['trials']} trials over "
            f"{a['cells']} cells — saved {a['saved']} vs fixed "
            f"{a['max_trials']}x replication ({a['converged']} "
            f"converged, {a['exhausted']} at cap)"
        )
    if args.perf:
        from repro.perf import campaign_throughput

        throughput = campaign_throughput(run)
        print(
            f"throughput: {throughput['events']} events in "
            f"{throughput['duration']:.2f}s across "
            f"{throughput['measured']} executed trials "
            f"({throughput['events_per_sec']:,.0f} events/sec, "
            f"peak RSS {throughput['peak_rss_kib']} KiB)"
        )
        if store is not None:
            path = store.write_summary(
                spec.spec_key(args.scale), throughput
            )
            print(f"wrote {path}")
    exit_code = 0 if run.failed == 0 else 1
    if args.telemetry:
        from repro.telemetry.campaign import (
            campaign_telemetry,
            render_campaign_telemetry,
        )

        payload = campaign_telemetry(run)
        print(render_campaign_telemetry(payload))
        if store is not None:
            path = store.write_summary(
                spec.spec_key(args.scale),
                payload,
                kind="telemetry",
            )
            print(f"wrote {path}")
    if args.profile:
        from repro.telemetry.profiler import (
            aggregate_hotspots,
            render_hotspots,
        )

        print(
            render_hotspots(
                aggregate_hotspots(run.records, top=args.profile_top)
            )
        )
    if args.check:
        from repro.checks import (
            campaign_conformance,
            render_campaign_conformance,
        )

        payload = campaign_conformance(spec, args.scale)
        print(render_campaign_conformance(payload))
        if store is not None:
            path = store.write_summary(
                spec.spec_key(args.scale),
                payload,
                kind="check",
            )
            print(f"wrote {path}")
        if not payload["pass"]:
            exit_code = 1
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return exit_code


def _command_campaign_enqueue(args: argparse.Namespace) -> int:
    from repro.campaigns.queue import WorkQueue

    definition = _campaign_or_exit(args.campaign)
    spec = definition.spec()
    plans = spec.trials_for(args.scale)
    total = len(plans)
    if args.store:
        known = ResultStore(args.store).load(spec.spec_key(args.scale))
        plans = [p for p in plans if p.case_key not in known]
    queue = WorkQueue(args.queue)
    try:
        manifest = queue.enqueue(
            spec, args.scale, plans=plans, chunk_size=args.chunk_size
        )
    except (QueueError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"enqueued campaign {spec.name} [{args.scale}]: "
        f"{manifest['trials']}/{total} trials in "
        f"{manifest['chunks']} chunks at {args.queue}"
    )
    print(f"spec key {manifest['spec_key']}")
    print(
        f"start workers with: repro campaign worker "
        f"--queue {args.queue} --store DIR"
    )
    return 0


def _command_campaign_worker(args: argparse.Namespace) -> int:
    from repro.campaigns.queue import run_worker

    store = ResultStore(args.store)
    try:
        stats = run_worker(
            args.queue,
            store,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            poll=args.poll,
            max_chunks=args.max_chunks,
        )
    except (QueueError, KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    print(
        f"worker {stats['worker']}: {stats['chunks']} chunks — "
        f"{stats['trials']} trials executed, {stats['skipped']} "
        f"skipped (cached), {stats['reclaimed']} leases reclaimed"
    )
    return 0


def _store_keys_or_exit(store: ResultStore, keys: List[str]) -> List[str]:
    if keys:
        return keys
    found = store.keys()
    if not found:
        raise SystemExit(f"no result stores under {store.root!r}")
    return found


def _command_store_list(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    for key in _store_keys_or_exit(store, args.keys):
        try:
            count = store.count(key)
        except CorruptStoreError as exc:
            print(f"{key}: CORRUPT — {exc}")
            continue
        shards = store.shards(key)
        suffix = (
            f" ({len(shards)} shard(s): {', '.join(shards)})"
            if shards
            else ""
        )
        print(f"{key}: {count} record(s){suffix}")
    return 0


def _command_store_merge(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    for key in _store_keys_or_exit(store, args.keys):
        try:
            result = store.merge(key)
        except CorruptStoreError as exc:
            raise SystemExit(str(exc)) from None
        print(
            f"{key}: merged {result['shards']} shard(s) into the "
            f"base file — {result['records']} record(s), "
            f"{result['dropped']} superseded line(s) dropped"
        )
    return 0


def _command_store_compact(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    for key in _store_keys_or_exit(store, args.keys):
        try:
            result = store.compact(key, drop_corrupt=args.drop_corrupt)
        except CorruptStoreError as exc:
            raise SystemExit(
                f"{exc}\n(re-run with --drop-corrupt to discard "
                f"undecodable lines)"
            ) from None
        print(
            f"{key}: compacted — {result['records']} record(s) kept, "
            f"{result['dropped']} line(s) dropped"
        )
    return 0


def _command_scenarios_list(args: argparse.Namespace) -> int:
    entries = scenarios.entries(args.kind)
    for entry in entries:
        print(f"{entry.kind:<10} {entry.key:<22} {entry.description}")
    kinds = args.kind or "/".join(scenarios.KINDS)
    print(f"\n{len(entries)} registered scenarios ({kinds})")
    return 0


def _command_scenarios_show(args: argparse.Namespace) -> int:
    key = args.key
    if args.kind and ":" not in key:
        key = f"{args.kind}:{key}"
    matches = scenarios.find(key)
    if not matches:
        # Surface the registry's did-you-mean hint as a clean exit.
        kind, _, bare = (
            key.partition(":") if ":" in key else (args.kind, "", key)
        )
        if kind:
            # Surfaces the registry's did-you-mean hint; unwrapped from
            # the KeyError repr by the main() handler.
            scenarios.get(kind, bare)
        raise _unknown_name_exit(
            args.key, "scenario", sorted(set(scenarios.keys()))
        )
    if len(matches) > 1:
        names = ", ".join(entry.qualified for entry in matches)
        raise SystemExit(
            f"{args.key!r} is ambiguous: {names} "
            f"(qualify as kind:key or pass --kind)"
        )
    entry = matches[0]
    print(f"{entry.qualified} — {entry.description}")
    if entry.paper_ref:
        print(f"  paper      {entry.paper_ref}")
    if entry.tags:
        print(f"  tags       {', '.join(sorted(entry.tags))}")
    if entry.params:
        print("  parameters")
        for spec in entry.params:
            doc = f"  — {spec.doc}" if spec.doc else ""
            print(f"    {spec.render()}{doc}")
    else:
        print("  parameters (none)")
    if entry.kind == "churn":
        # Churn profiles *are* their fault schedules; render the
        # events as a table (trigger / kind / node) at the reference
        # configuration instead of leaving the schedule opaque.
        from repro.checks.conformance import CPS_BASE_CASE

        params = derive_parameters(
            theta=CPS_BASE_CASE["theta"],
            d=CPS_BASE_CASE["d"],
            u=CPS_BASE_CASE["u"],
            n=CPS_BASE_CASE["n"],
        )
        schedule = scenarios.create("churn", entry.key, params)
        label = schedule.description or "fault events"
        print(f"  schedule   {label} (reference n={params.n})")
        for line in schedule.describe().splitlines():
            print(f"    {line}")
    return 0


DEFAULT_ABLATION = os.path.join("results", "ablation.json")


def _ablation_spec(args: argparse.Namespace):
    from repro.ablation import AblationSpec

    return AblationSpec(
        components=tuple(args.component or ()),
        pairwise=args.pairwise,
        seed=args.seed,
    )


def _case_scenario_summary(case) -> str:
    """The scenario-registry keys a case names, compactly."""
    parts = [
        f"{kind}={case[kind]}"
        for kind in ("adversary", "churn", "topology")
        if case.get(kind) is not None
    ]
    return ", ".join(parts) or "silent"


def _command_ablate_plan(args: argparse.Namespace) -> int:
    from repro.ablation import ablation_campaign_spec, planned_trials

    spec = _ablation_spec(args)
    pairs = planned_trials(spec, args.tier)
    campaign = ablation_campaign_spec(spec)
    print(
        f"ablation matrix [{args.tier}] — {len(pairs)} trials "
        f"({len(spec.selected())} components"
        + (", pairwise" if spec.pairwise else "")
        + f"), seed {spec.seed}, spec key "
        f"{campaign.spec_key(args.tier)}"
    )
    for run, plan in pairs:
        print(
            f"  {run.label:<42} {plan.case_key}  "
            f"seed={plan.seed}  [{_case_scenario_summary(run.case)}]"
        )
    return 0


def _command_ablate_run(args: argparse.Namespace) -> int:
    from repro.ablation import (
        ablation_campaign_spec,
        ablation_payload_bytes,
        ablation_report,
        render_ablation_table,
    )
    from repro.campaigns.store import dump_json_summary

    if args.adaptive and args.ci_width is None:
        raise SystemExit("--adaptive requires --ci-width")
    if args.ci_width is not None and not args.adaptive:
        raise SystemExit("--ci-width only makes sense with --adaptive")
    spec = _ablation_spec(args)
    campaign = ablation_campaign_spec(spec)
    store = ResultStore(args.store) if args.store else None
    try:
        policy = ExecutionPolicy(
            workers=args.workers,
            chunk_size=args.chunk_size,
            timeout=args.timeout,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    reporter = None
    if args.progress:
        from repro.telemetry.progress import ProgressReporter

        reporter = ProgressReporter(
            label=f"{campaign.name}/{args.tier}"
        )
    progress = reporter.update if reporter is not None else None
    if args.adaptive:
        from repro.campaigns.adaptive import (
            AdaptivePolicy,
            execute_adaptive_campaign,
        )

        adaptive = AdaptivePolicy(
            ci_width=args.ci_width,
            metric=args.ci_metric,
            confidence=args.ci_confidence,
            min_trials=args.min_trials,
            max_trials=args.max_trials,
        )
        run = execute_adaptive_campaign(
            campaign,
            scale=args.tier,
            adaptive=adaptive,
            policy=policy,
            store=store,
            reuse=not args.fresh,
            progress=progress,
        )
    else:
        run = execute_campaign(
            campaign,
            scale=args.tier,
            policy=policy,
            store=store,
            reuse=not args.fresh,
            progress=progress,
        )
    if reporter is not None:
        reporter.finish()
    payload = ablation_report(spec, run)
    print(render_ablation_table(payload).render())
    print()
    print(run.summary() + f" (workers={policy.workers})")
    if run.failed:
        for record in run.failures():
            print(f"  TRIAL ERROR {record.case_key}: {record.error}")
        return 1
    if args.check:
        fresh = ablation_payload_bytes(payload)
        try:
            with open(args.out, "rb") as handle:
                committed = handle.read()
        except FileNotFoundError:
            print(f"{args.out} is missing; run 'repro ablate run' "
                  "to create it")
            return 1
        if committed != fresh:
            print(f"{args.out} is stale; re-run 'repro ablate run' "
                  "and commit the result")
            return 1
        print(f"{args.out} is up to date")
        return 0
    dump_json_summary(args.out, payload)
    print(f"wrote {args.out}")
    return 0


def _command_ablate_report(args: argparse.Namespace) -> int:
    from repro.ablation import render_ablation_table

    try:
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"{args.path} not found; generate it with "
            f"'repro ablate run'"
        ) from None
    print(render_ablation_table(payload).render())
    summary = payload.get("summary", {})
    flips = summary.get("flips", {})
    print()
    for component in sorted(flips):
        names = ", ".join(flips[component]) or "(none)"
        print(f"  {component:<20} flips: {names}")
    print(
        f"\n{summary.get('flipping', 0)}/"
        f"{summary.get('components', 0)} components flip at least "
        f"one monitor (campaign seed {payload.get('seed')}, "
        f"scale {payload.get('scale')})"
    )
    return 0


DEFAULT_BENCH_DIR = os.path.join("results", "perf")
DEFAULT_BASELINE = os.path.join("results", "perf_baseline.json")


def _command_perf_list(_args: argparse.Namespace) -> int:
    """List both perf JSON namespaces (docs/PERFORMANCE.md has detail).

    * registered cases — ``perf run`` writes ``BENCH_<name>.json``
      under ``results/perf`` (gitignored; compared via ``perf
      baseline`` / ``perf compare``);
    * campaign sidecars — ``campaign run NAME --perf --store DIR``
      writes ``<spec_key>.perf.json`` next to the campaign's results
      (spec-keyed, so every measurement knob change re-keys the file).
    """
    from repro.perf import PERF_CASES

    print(
        "registered cases — `repro perf run` writes "
        f"{DEFAULT_BENCH_DIR}/BENCH_<name>.json:"
    )
    for name in sorted(PERF_CASES):
        print(f"  {name:<18} {PERF_CASES[name].description}")
    print()
    print(
        "campaign sidecars — `repro campaign run NAME --perf "
        "--store DIR` writes <spec_key>.perf.json in DIR (spec-keyed "
        "per measurement, including its backend)."
    )
    return 0


def _command_perf_run(args: argparse.Namespace) -> int:
    from repro.perf import available_cases, run_case

    names = args.case or available_cases()
    unknown = sorted(set(names) - set(available_cases()))
    if unknown:
        raise _unknown_name_exit(
            unknown[0], "perf case", available_cases()
        )
    scale = "quick" if args.quick else "full"
    # Only resolve an explicit override: ``None`` must stay ``None`` so
    # backend-aware case bodies keep their own defaults (e9-vectorized-*
    # default to the vectorized engine).
    backend = (
        resolve_backend(args.backend)
        if args.backend is not None
        else None
    )
    for name in names:
        result = run_case(
            name, scale=scale, repeats=args.repeats, backend=backend
        )
        path = result.write(args.out)
        normalized = result.normalized_throughput
        cache = result.meta.get("verify_cache") or {}
        rate = cache.get("hit_rate")
        cache_note = (
            f"verify-cache {rate:.1%}" if rate is not None
            else "verify-cache n/a"
        )
        print(
            f"{name:<18} {result.events:>9} events  "
            f"{result.wall_seconds:8.3f}s  "
            f"{result.events_per_sec:>12,.0f} ev/s  "
            f"norm {normalized:.4f}  {cache_note}  -> {path}"
        )
    return 0


def _command_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf import compare, load_baseline, load_results

    if not os.path.exists(args.baseline):
        raise SystemExit(f"baseline file not found: {args.baseline}")
    baseline = load_baseline(args.baseline)
    current = load_results(args.current)
    if not current:
        raise SystemExit(
            f"no BENCH_*.json files under {args.current!r} "
            f"(run 'repro perf run' first)"
        )
    comparison = compare(baseline.cases, current, tolerance=args.tolerance)
    for verdict in comparison.verdicts:
        print(verdict.describe())
    print(comparison.summary())
    return 0 if comparison.ok else 1


def _command_perf_baseline(args: argparse.Namespace) -> int:
    from repro.perf import load_results, write_baseline

    results = load_results(args.current)
    if not results:
        raise SystemExit(
            f"no BENCH_*.json files under {args.current!r} "
            f"(run 'repro perf run' first)"
        )
    path = write_baseline(args.out, results, notes=args.notes)
    print(f"wrote baseline with {len(results)} case(s) to {path}")
    return 0


DEFAULT_CONFORMANCE = os.path.join("results", "conformance.json")


def _resolve_check_scenario(key: str, kind: Optional[str]):
    """Resolve a (possibly qualified) scenario key for ``check run``."""
    lookup = key
    if kind and ":" not in lookup:
        lookup = f"{kind}:{lookup}"
    matches = scenarios.find(lookup)
    if not matches:
        raise _unknown_name_exit(
            key,
            "scenario",
            sorted(set(scenarios.keys())),
        )
    if len(matches) > 1:
        names = ", ".join(entry.qualified for entry in matches)
        raise SystemExit(
            f"{key!r} is ambiguous: {names} "
            f"(qualify as kind:key or pass --kind)"
        )
    return matches[0]


def _resolve_check_monitors(
    requested: Optional[List[str]], kind: str, key: str
) -> Optional[List[str]]:
    """Validate ``--monitor`` names against catalog and applicability."""
    if not requested:
        return None
    from repro.checks import MONITOR_CATALOG, applicable_monitors

    names = list(MONITOR_CATALOG)
    applicable = applicable_monitors(kind, key)
    for name in requested:
        if name not in names:
            raise _unknown_name_exit(name, "monitor", names)
        if name not in applicable:
            raise SystemExit(
                f"monitor {name!r} is not applicable to {kind}:{key} "
                f"(applicable: {', '.join(applicable)})"
            )
    return list(requested)


def _write_conformance_json(path: str, payload) -> None:
    from repro.campaigns.store import dump_json_summary

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    dump_json_summary(path, payload)


def _command_check_list(_args: argparse.Namespace) -> int:
    from repro.checks import (
        MONITOR_CATALOG,
        applicable_monitors,
    )

    counts = {name: 0 for name in MONITOR_CATALOG}
    for entry in scenarios.entries():
        for name in applicable_monitors(entry.kind, entry.key):
            counts[name] += 1
    for name, claim in MONITOR_CATALOG.items():
        print(f"{name:<16} {claim}  [{counts[name]} scenarios]")
    return 0


def _command_check_run(args: argparse.Namespace) -> int:
    from repro.checks import check_scenario, render_report

    entry = _resolve_check_scenario(args.key, args.kind)
    monitors = _resolve_check_monitors(
        args.monitor, entry.kind, entry.key
    )
    report = check_scenario(
        entry.kind,
        entry.key,
        scale=args.scale,
        seed=args.seed,
        overrides=_parse_param_overrides(args.param),
        backend=resolve_backend(args.backend),
    )
    if monitors is not None:
        from dataclasses import replace

        report = replace(
            report,
            verdicts=tuple(
                v for v in report.verdicts if v.monitor in monitors
            ),
        )
    print(render_report(report))
    return 0 if report.ok else 1


def _command_check_matrix(args: argparse.Namespace) -> int:
    from repro.checks import conformance_matrix, render_matrix

    kinds = args.kind if args.kind else None
    backend = resolve_backend(args.backend)
    payload = conformance_matrix(
        scale=args.scale, seed=args.seed, kinds=kinds, backend=backend
    )
    print(render_matrix(payload))
    if args.out:
        if backend != "event" and args.out == DEFAULT_CONFORMANCE:
            # The committed artifact is the event-backend matrix;
            # don't let an exploratory vectorized sweep clobber it.
            print(
                f"not overwriting {DEFAULT_CONFORMANCE} with a "
                f"{backend!r}-backend matrix (pass --out explicitly)"
            )
        else:
            _write_conformance_json(args.out, payload)
            print(f"wrote {args.out}")
    return 0 if payload["pass"] else 1


def _replay_fuzz_fixture_path(path: str) -> int:
    """``check fixture`` on a serialized fuzz fixture: replay it and
    verify its recorded expectation (violation fixtures must fire)."""
    from repro.fuzz import load_fixture, replay_fixture
    from repro.fuzz.corpus import MalformedFixtureError

    try:
        payload = load_fixture(path)
    except MalformedFixtureError as exc:
        raise SystemExit(str(exc)) from None
    run = replay_fixture(payload)
    violations = run.violations()
    for violation in violations:
        print(f"! {violation.describe()}")
    name = f"fuzz-{payload['fixture_id']}"
    if violations:
        print(
            f"{name} fixture raised {len(violations)} violation(s) — "
            f"the monitors fire"
        )
    else:
        print(f"{name} fixture raised NO violations")
    expected = payload.get("expect", "pass") == "violation"
    if bool(violations) == expected:
        return 0
    print(
        f"{name} expects "
        + ("a violation" if expected else "no violations")
        + " — the replay CONTRADICTS the recorded expectation"
    )
    return 1


def _command_check_fixture(args: argparse.Namespace) -> int:
    from repro.checks import run_broken_fixture, run_churn_fixture

    runners = {
        "broken": lambda: run_broken_fixture(seed=args.seed),
        "churn": lambda: run_churn_fixture(seed=args.seed),
    }
    if args.fixture not in (*runners, "all"):
        if os.path.exists(args.fixture) or args.fixture.endswith(".json"):
            return _replay_fuzz_fixture_path(args.fixture)
        raise SystemExit(
            f"--fixture expects broken|churn|all or a fuzz fixture "
            f"path, got {args.fixture!r}"
        )
    names = (
        list(runners) if args.fixture == "all" else [args.fixture]
    )
    exit_code = 0
    for name in names:
        verdicts, _result = runners[name]()
        violations = [
            violation
            for verdict in verdicts
            for violation in verdict.violations
        ]
        for violation in violations:
            print(f"! {violation.describe()}")
        if violations:
            print(
                f"{name} fixture raised {len(violations)} "
                f"violation(s) — the monitors fire"
            )
        else:
            print(
                f"{name} fixture raised NO violations — the "
                f"conformance engine is not detecting anything"
            )
            exit_code = 1
    return exit_code


def _command_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        promote_fixture,
        render_fuzz_report,
        save_fixture,
        search,
    )
    from repro.fuzz.driver import UnknownStrategyError, available_strategies

    try:
        report = search(
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            max_interesting=args.max_interesting,
        )
    except UnknownStrategyError:
        raise _unknown_name_exit(
            args.strategy, "fuzz strategy", available_strategies()
        ) from None
    print(render_fuzz_report(report))
    fixtures = list(report.interesting)
    if report.counterexample is not None:
        fixtures.insert(0, report.counterexample)
    if not args.no_save:
        for fixture in fixtures:
            path = save_fixture(fixture, args.out)
            print(f"wrote {path}")
            if args.promote:
                key, promoted = promote_fixture(fixture)
                print(f"promoted fuzz:{key} -> {promoted}")
    return 0 if report.ok else 1


def _fuzz_fixture_line(path: str, payload: dict) -> str:
    case = payload["case"]
    axes = "/".join(
        str(case[kind])
        for kind in ("adversary", "delay", "drift", "churn")
        if kind in case
    )
    return (
        f"fuzz-{payload['fixture_id']}  {payload['origin']:<11} "
        f"expect={payload['expect']:<9} n={case['n']} "
        f"pulses={payload['pulses']} {axes}  [{path}]"
    )


def _command_fuzz_list(args: argparse.Namespace) -> int:
    from repro.fuzz import list_fixtures, load_fixture

    shown = 0
    for label in ("corpus", "promoted"):
        directory = os.path.join(args.dir, label)
        paths = list_fixtures(directory)
        if not paths:
            continue
        print(f"{label} ({directory}):")
        for path in paths:
            print("  " + _fuzz_fixture_line(path, load_fixture(path)))
            shown += 1
    if not shown:
        print(
            f"no fuzz fixtures under {args.dir!r} "
            f"(run 'repro fuzz run' first)"
        )
    return 0


def _command_fuzz_replay(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import load_fixture, replay_fixture, verdict_payload
    from repro.fuzz.corpus import MalformedFixtureError

    try:
        payload = load_fixture(args.fixture)
    except MalformedFixtureError as exc:
        raise SystemExit(str(exc)) from None
    run = replay_fixture(payload, trace=args.trace)
    verdicts = verdict_payload(payload, run)
    print(json.dumps(verdicts, indent=2, sort_keys=True))
    return 0 if verdicts["expectation_met"] else 1


def _command_fuzz_promote(args: argparse.Namespace) -> int:
    from repro.fuzz import load_fixture, promote_fixture
    from repro.fuzz.corpus import MalformedFixtureError

    try:
        payload = load_fixture(args.fixture)
    except MalformedFixtureError as exc:
        raise SystemExit(str(exc)) from None
    key, path = promote_fixture(payload, directory=args.dest)
    print(f"promoted fuzz:{key} -> {path}")
    print(
        "replayable via 'repro check run "
        f"{key} --kind fuzz' once registered (fixtures register on "
        "promotion and via repro.fuzz.load_promoted)"
    )
    return 0


def _load_telemetry_sidecar(name: str, scale: str, store_dir):
    """Resolve a campaign name (or a direct path) to its sidecar payload."""
    import json

    if name.endswith(".json"):
        if not os.path.exists(name):
            raise SystemExit(f"telemetry sidecar not found: {name}")
        with open(name, encoding="utf-8") as handle:
            return json.load(handle)
    definition = _campaign_or_exit(name)
    if not store_dir:
        raise SystemExit(
            "--store is required to look up a campaign's sidecar "
            "(or pass a .telemetry.json path directly)"
        )
    store = ResultStore(store_dir)
    key = definition.spec().spec_key(scale)
    payload = store.load_summary(key, kind="telemetry")
    if payload is None:
        raise SystemExit(
            f"no telemetry sidecar for campaign {name!r} "
            f"[{scale}] in {store_dir} — run "
            f"'repro campaign run {name} --scale {scale} "
            f"--telemetry --store {store_dir}' first"
        )
    return payload


def _check_metric_names(
    requested: Optional[List[str]], payload=None
) -> Optional[List[str]]:
    from repro.telemetry import available_metrics

    if not requested:
        return None
    available = available_metrics(payload)
    for name in requested:
        if name not in available:
            raise _unknown_name_exit(name, "metric", available)
    return list(requested)


def _command_telemetry_list(_args: argparse.Namespace) -> int:
    from repro.telemetry import METRIC_CATALOG

    width = max(len(name) for name in METRIC_CATALOG)
    for name, meaning in sorted(METRIC_CATALOG.items()):
        print(f"{name:<{width}}  {meaning}")
    return 0


def _command_telemetry_show(args: argparse.Namespace) -> int:
    from repro.telemetry.campaign import render_campaign_telemetry

    payload = _load_telemetry_sidecar(
        args.campaign, args.scale, args.store
    )
    metrics = _check_metric_names(args.metric, payload)
    print(render_campaign_telemetry(payload, metrics))
    return 0


def _command_telemetry_aggregate(args: argparse.Namespace) -> int:
    import glob
    import json

    from repro.campaigns.store import dump_json_summary
    from repro.telemetry.campaign import (
        aggregate_payloads,
        render_aggregate,
    )

    paths = sorted(
        glob.glob(os.path.join(args.store, "*.telemetry.json"))
    )
    if not paths:
        raise SystemExit(
            f"no *.telemetry.json sidecars under {args.store!r} "
            f"(run 'repro campaign run NAME --telemetry --store "
            f"{args.store}' first)"
        )
    payloads = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            payloads.append(json.load(handle))
    merged = aggregate_payloads(payloads)
    print(
        f"telemetry aggregate: {merged['sidecars']} sidecar(s), "
        f"{merged['instrumented']} instrumented trial(s) — "
        f"{', '.join(merged['campaigns'])}"
    )
    print(render_aggregate(merged["aggregate"]))
    if args.out:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        dump_json_summary(args.out, merged)
        print(f"wrote {args.out}")
    return 0


def _command_telemetry_diff(args: argparse.Namespace) -> int:
    from repro.telemetry.campaign import diff_rows, render_diff

    left = _load_telemetry_sidecar(args.a, args.scale, args.store)
    right = _load_telemetry_sidecar(args.b, args.scale, args.store)
    rows = diff_rows(left, right)
    metrics = _check_metric_names(args.metric, left)
    print(
        f"telemetry diff: a={left.get('campaign', '?')}"
        f"[{left.get('scale', '?')}] "
        f"b={right.get('campaign', '?')}[{right.get('scale', '?')}]"
    )
    print(render_diff(rows, metrics, changed_only=args.changed_only))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimal Clock Synchronization with "
            "Signatures' (Lenzen & Loss, PODC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every simulation-executing subcommand: `campaign run`,
    # `check run`, `check matrix`, and `perf run` accept the same
    # --backend flag (validated with a did-you-mean by
    # repro.build.resolve_backend).  Default None = "whatever the spec
    # or engine defaults to", so campaign specs that pin a backend are
    # not silently overridden.
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend: 'event' (discrete-event reference) "
        "or 'vectorized' (round-batched numpy engine)",
    )

    sub.add_parser("list", help="list experiments").set_defaults(
        handler=_command_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id, e.g. E4")
    run_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    run_parser.add_argument("--csv", help="also write the table as CSV")
    run_parser.set_defaults(handler=_command_run)

    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    all_parser.add_argument("--out", help="directory for CSV outputs")
    all_parser.set_defaults(handler=_command_all)

    params_parser = sub.add_parser(
        "params", help="derive CPS parameters for a deployment"
    )
    params_parser.add_argument("--theta", type=float, required=True)
    params_parser.add_argument("--d", type=float, required=True)
    params_parser.add_argument("--u", type=float, required=True)
    params_parser.add_argument("--n", type=int, required=True)
    params_parser.add_argument("--f", type=int, default=None)
    params_parser.add_argument("--T", type=float, default=None)
    params_parser.set_defaults(handler=_command_params)

    campaign_parser = sub.add_parser(
        "campaign", help="declarative sweep campaigns (parallel, cached)"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_sub.add_parser(
        "list", help="list the campaign catalog"
    ).set_defaults(handler=_command_campaign_list)

    show_parser = campaign_sub.add_parser(
        "show", help="describe a campaign's grid and cache state"
    )
    show_parser.add_argument("campaign", help="campaign id, e.g. E4")
    show_parser.add_argument("--scale", default="quick")
    show_parser.add_argument(
        "--store", help="result-store directory to inspect"
    )
    show_parser.set_defaults(handler=_command_campaign_show)

    campaign_run_parser = campaign_sub.add_parser(
        "run", help="execute a campaign through the sweep engine",
        parents=[backend_parent],
    )
    campaign_run_parser.add_argument("campaign", help="campaign id")
    campaign_run_parser.add_argument("--scale", default="quick")
    campaign_run_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (1 = in-process serial)",
    )
    campaign_run_parser.add_argument(
        "--chunk-size", type=int, default=4,
        help="trials per pool task",
    )
    campaign_run_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial timeout in seconds (pool mode only)",
    )
    campaign_run_parser.add_argument(
        "--store", help="result-store directory (enables cache replay)"
    )
    campaign_run_parser.add_argument(
        "--resume", action="store_true",
        help="complete a partially-run campaign (requires --store)",
    )
    campaign_run_parser.add_argument(
        "--fresh", action="store_true",
        help="ignore cached records and re-execute every trial",
    )
    campaign_run_parser.add_argument(
        "--csv", help="also write the table as CSV"
    )
    campaign_run_parser.add_argument(
        "--perf", action="store_true",
        help="record per-case throughput (events/sec) and, with "
        "--store, persist it as <spec_key>.perf.json",
    )
    campaign_run_parser.add_argument(
        "--check", action="store_true",
        help="conformance-run every scenario the campaign references "
        "and, with --store, persist verdicts as <spec_key>.check.json",
    )
    campaign_run_parser.add_argument(
        "--telemetry", action="store_true",
        help="instrument executed trials with the metrics registry and, "
        "with --store, persist <spec_key>.telemetry.json",
    )
    campaign_run_parser.add_argument(
        "--profile", action="store_true",
        help="attach cProfile to every executed trial and tabulate the "
        "top hotspots across the run",
    )
    campaign_run_parser.add_argument(
        "--profile-top", type=int, default=15,
        help="hotspot rows kept per trial and printed (default 15)",
    )
    campaign_run_parser.add_argument(
        "--progress", action="store_true",
        help="print live heartbeats (trials done, rolling events/sec, "
        "ETA) to stderr",
    )
    campaign_run_parser.add_argument(
        "--queue",
        help="run through a work-queue directory instead of a local "
        "pool: enqueue pending chunks there (unless already "
        "enqueued) and join as one worker alongside any external "
        "'repro campaign worker' processes (requires --store)",
    )
    campaign_run_parser.add_argument(
        "--worker-id", default=None,
        help="store shard / lease owner name for queue mode "
        "(default: host-pid)",
    )
    campaign_run_parser.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds without a heartbeat before a queue chunk lease "
        "is presumed dead and reclaimed (default 60)",
    )
    campaign_run_parser.add_argument(
        "--adaptive", action="store_true",
        help="per-cell adaptive sampling: replicate each grid cell "
        "until the CI width target (--ci-width) is hit, bounded by "
        "--max-trials",
    )
    campaign_run_parser.add_argument(
        "--ci-width", type=float, default=None,
        help="target confidence-interval width on the headline metric "
        "(enables the adaptive stopping rule)",
    )
    campaign_run_parser.add_argument(
        "--ci-metric", default="max_skew",
        help="metric the stopping rule targets (default max_skew)",
    )
    campaign_run_parser.add_argument(
        "--ci-confidence", type=float, default=0.95,
        help="confidence level of the interval (default 0.95)",
    )
    campaign_run_parser.add_argument(
        "--min-trials", type=int, default=3,
        help="replicates per cell before the first width check "
        "(default 3)",
    )
    campaign_run_parser.add_argument(
        "--max-trials", type=int, default=8,
        help="replicate cap per cell, converged or not (default 8)",
    )
    campaign_run_parser.set_defaults(handler=_command_campaign_run)

    enqueue_parser = campaign_sub.add_parser(
        "enqueue",
        help="publish a campaign's chunks to a work-queue directory",
    )
    enqueue_parser.add_argument("campaign", help="campaign id")
    enqueue_parser.add_argument("--scale", default="quick")
    enqueue_parser.add_argument(
        "--queue", required=True,
        help="work-queue directory (fresh per run; shared with every "
        "worker)",
    )
    enqueue_parser.add_argument(
        "--chunk-size", type=int, default=4,
        help="trials per chunk lease",
    )
    enqueue_parser.add_argument(
        "--store",
        help="result-store directory; already-cached trials are not "
        "enqueued",
    )
    enqueue_parser.set_defaults(handler=_command_campaign_enqueue)

    worker_parser = campaign_sub.add_parser(
        "worker",
        help="drain a work queue: claim chunk leases, run trials, "
        "write one store shard",
    )
    worker_parser.add_argument(
        "--queue", required=True, help="work-queue directory"
    )
    worker_parser.add_argument(
        "--store", required=True,
        help="shared result-store directory (this worker writes its "
        "own shard)",
    )
    worker_parser.add_argument(
        "--worker-id", default=None,
        help="shard / lease owner name (default: host-pid)",
    )
    worker_parser.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="seconds without a heartbeat before another worker's "
        "lease is presumed dead and reclaimed (default 60)",
    )
    worker_parser.add_argument(
        "--poll", type=float, default=0.5,
        help="seconds between queue scans while waiting on other "
        "workers' leases (default 0.5)",
    )
    worker_parser.add_argument(
        "--max-chunks", type=int, default=None,
        help="stop after completing this many chunks (default: drain "
        "the queue)",
    )
    worker_parser.set_defaults(handler=_command_campaign_worker)

    store_parser = sub.add_parser(
        "store",
        help="result-store maintenance (shards, merge, compact)",
    )
    store_sub = store_parser.add_subparsers(
        dest="store_command", required=True
    )

    store_list_parser = store_sub.add_parser(
        "list", help="list spec keys, record counts, and shards"
    )
    store_merge_parser = store_sub.add_parser(
        "merge",
        help="fold worker shards into each base file (deduped by "
        "case key, idempotent)",
    )
    store_compact_parser = store_sub.add_parser(
        "compact",
        help="rewrite files without superseded duplicate lines",
    )
    for parser_ in (
        store_list_parser, store_merge_parser, store_compact_parser
    ):
        parser_.add_argument(
            "--store", required=True,
            help="result-store directory",
        )
        parser_.add_argument(
            "keys", nargs="*",
            help="spec keys to operate on (default: every key)",
        )
    store_compact_parser.add_argument(
        "--drop-corrupt", action="store_true",
        help="discard undecodable interior lines instead of failing "
        "(salvages a damaged store)",
    )
    store_list_parser.set_defaults(handler=_command_store_list)
    store_merge_parser.set_defaults(handler=_command_store_merge)
    store_compact_parser.set_defaults(handler=_command_store_compact)

    scenarios_parser = sub.add_parser(
        "scenarios",
        help="the scenario registry (adversaries, delays, topologies, "
        "drift profiles)",
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )

    scenarios_list_parser = scenarios_sub.add_parser(
        "list", help="list registered scenarios"
    )
    scenarios_list_parser.add_argument(
        "--kind", choices=scenarios.KINDS, default=None,
        help="restrict to one scenario kind",
    )
    scenarios_list_parser.set_defaults(handler=_command_scenarios_list)

    scenarios_show_parser = scenarios_sub.add_parser(
        "show", help="describe one scenario entry"
    )
    scenarios_show_parser.add_argument(
        "key", help="scenario key, optionally qualified as kind:key"
    )
    scenarios_show_parser.add_argument(
        "--kind", choices=scenarios.KINDS, default=None,
        help="disambiguate keys that exist in several kinds",
    )
    scenarios_show_parser.set_defaults(handler=_command_scenarios_show)

    ablate_parser = sub.add_parser(
        "ablate",
        help="protocol ablation engine: per-component importance for "
        "every theorem bound (see docs/ABLATIONS.md)",
    )
    ablate_sub = ablate_parser.add_subparsers(
        dest="ablate_command", required=True
    )

    ablate_shared = argparse.ArgumentParser(add_help=False)
    ablate_shared.add_argument(
        "--tier", choices=("quick", "full"), default="quick",
        help="measurement tier (default quick — the CI matrix)",
    )
    ablate_shared.add_argument(
        "--component", action="append", metavar="NAME",
        help="restrict to this component (repeatable; unknown names "
        "get a did-you-mean hint; default: all)",
    )
    ablate_shared.add_argument(
        "--pairwise", action="store_true",
        help="also switch off every selected pair together "
        "(interaction effects)",
    )
    ablate_shared.add_argument(
        "--seed", type=int, default=53,
        help="campaign seed keying every derived trial seed "
        "(default 53, the committed artifact's seed)",
    )

    ablate_plan_parser = ablate_sub.add_parser(
        "plan",
        help="show the expanded matrix: every planned trial with its "
        "content-addressed case key",
        parents=[ablate_shared],
    )
    ablate_plan_parser.set_defaults(handler=_command_ablate_plan)

    ablate_run_parser = ablate_sub.add_parser(
        "run",
        help="execute the matrix and write the importance artifact",
        parents=[ablate_shared],
    )
    ablate_run_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (1 = in-process serial)",
    )
    ablate_run_parser.add_argument(
        "--chunk-size", type=int, default=4,
        help="trials per pool task",
    )
    ablate_run_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-trial budget in seconds (pool mode)",
    )
    ablate_run_parser.add_argument(
        "--store", help="result-store directory (cache/resume)"
    )
    ablate_run_parser.add_argument(
        "--fresh", action="store_true",
        help="ignore cached records; re-execute every trial",
    )
    ablate_run_parser.add_argument(
        "--adaptive", action="store_true",
        help="replicate each cell until the CI on --ci-metric is "
        "narrower than --ci-width",
    )
    ablate_run_parser.add_argument(
        "--ci-width", type=float, default=None,
        help="target confidence-interval width (requires --adaptive)",
    )
    ablate_run_parser.add_argument(
        "--ci-metric", default="max_skew",
        help="metric the stopping rule watches (default max_skew)",
    )
    ablate_run_parser.add_argument(
        "--ci-confidence", type=float, default=0.95,
        help="confidence level (default 0.95)",
    )
    ablate_run_parser.add_argument(
        "--min-trials", type=int, default=3,
        help="replicates before the stopping rule may fire",
    )
    ablate_run_parser.add_argument(
        "--max-trials", type=int, default=12,
        help="replication cap per cell",
    )
    ablate_run_parser.add_argument(
        "--progress", action="store_true",
        help="live per-trial progress line on stderr",
    )
    ablate_run_parser.add_argument(
        "--out", default=DEFAULT_ABLATION,
        help=f"importance artifact path (default {DEFAULT_ABLATION})",
    )
    ablate_run_parser.add_argument(
        "--check", action="store_true",
        help="verify --out matches the fresh payload byte-for-byte "
        "instead of writing it (the CI freshness gate)",
    )
    ablate_run_parser.set_defaults(handler=_command_ablate_run)

    ablate_report_parser = ablate_sub.add_parser(
        "report",
        help="render the committed importance artifact (no execution)",
    )
    ablate_report_parser.add_argument(
        "--path", default=DEFAULT_ABLATION,
        help=f"artifact to render (default {DEFAULT_ABLATION})",
    )
    ablate_report_parser.set_defaults(handler=_command_ablate_report)

    check_parser = sub.add_parser(
        "check",
        help="conformance engine (theorem-bound monitors over the "
        "scenario registry)",
    )
    check_sub = check_parser.add_subparsers(
        dest="check_command", required=True
    )

    check_sub.add_parser(
        "list", help="list the conformance monitors and their claims"
    ).set_defaults(handler=_command_check_list)

    check_run_parser = check_sub.add_parser(
        "run", help="conformance-run one registry scenario",
        parents=[backend_parent],
    )
    check_run_parser.add_argument(
        "key", help="scenario key, optionally qualified as kind:key"
    )
    check_run_parser.add_argument(
        "--kind", choices=scenarios.KINDS, default=None,
        help="disambiguate keys that exist in several kinds",
    )
    check_run_parser.add_argument(
        "--monitor", action="append",
        help="restrict the report to this monitor (repeatable); must "
        "be applicable to the scenario",
    )
    check_run_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    check_run_parser.add_argument("--seed", type=int, default=0)
    check_run_parser.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="scenario-factory override (repeatable), e.g. "
        "--param cycles=3 on a churn profile",
    )
    check_run_parser.set_defaults(handler=_command_check_run)

    check_matrix_parser = check_sub.add_parser(
        "matrix",
        help="sweep every applicable registry scenario and render the "
        "scenario x monitor pass/fail matrix",
        parents=[backend_parent],
    )
    check_matrix_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    check_matrix_parser.add_argument("--seed", type=int, default=0)
    check_matrix_parser.add_argument(
        "--kind", action="append", choices=scenarios.KINDS,
        help="restrict to one scenario kind (repeatable)",
    )
    check_matrix_parser.add_argument(
        "--out", default=DEFAULT_CONFORMANCE,
        help=f"JSON verdicts file (default {DEFAULT_CONFORMANCE}; "
        "empty string to skip)",
    )
    check_matrix_parser.set_defaults(handler=_command_check_matrix)

    check_fixture_parser = check_sub.add_parser(
        "fixture",
        help="run the deliberately-broken executions and verify the "
        "monitors fire",
    )
    check_fixture_parser.add_argument("--seed", type=int, default=2)
    check_fixture_parser.add_argument(
        "--fixture", default="all",
        help="which broken execution to run: the E8 u~>>u corner "
        "('broken'), the crash-without-recovery schedule ('churn'), "
        "both ('all', default), or a path to a serialized fuzz "
        "fixture to replay against its recorded expectation",
    )
    check_fixture_parser.set_defaults(handler=_command_check_fixture)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="property-based search for theorem-bound violations "
        "(Hypothesis strategies over the scenario registry)",
    )
    fuzz_sub = fuzz_parser.add_subparsers(
        dest="fuzz_command", required=True
    )

    fuzz_run_parser = fuzz_sub.add_parser(
        "run", help="run a budgeted search through the monitor oracle"
    )
    fuzz_run_parser.add_argument(
        "--strategy", default="valid",
        help="search space: valid (cps+churn, default), cps, churn, "
        "or known-bad (the E8 u~>>u region the oracle must catch)",
    )
    fuzz_run_parser.add_argument(
        "--budget", type=int, default=100,
        help="Hypothesis examples to generate (default 100)",
    )
    fuzz_run_parser.add_argument("--seed", type=int, default=0)
    fuzz_run_parser.add_argument(
        "--max-interesting", type=int, default=2,
        help="surviving near-bound corners kept as fixtures "
        "(default 2)",
    )
    fuzz_run_parser.add_argument(
        "--out", default=os.path.join("results", "fuzz", "corpus"),
        help="directory for found fixtures "
        "(default results/fuzz/corpus)",
    )
    fuzz_run_parser.add_argument(
        "--no-save", action="store_true",
        help="report only; do not write fixture files",
    )
    fuzz_run_parser.add_argument(
        "--promote", action="store_true",
        help="also promote saved fixtures into results/fuzz/promoted "
        "and the scenario registry",
    )
    fuzz_run_parser.set_defaults(handler=_command_fuzz_run)

    fuzz_list_parser = fuzz_sub.add_parser(
        "list", help="list the fixture corpus (found and promoted)"
    )
    fuzz_list_parser.add_argument(
        "--dir", default=os.path.join("results", "fuzz"),
        help="fuzz results root (default results/fuzz)",
    )
    fuzz_list_parser.set_defaults(handler=_command_fuzz_list)

    fuzz_replay_parser = fuzz_sub.add_parser(
        "replay",
        help="re-execute one fixture and print its canonical verdict "
        "payload (byte-stable)",
    )
    fuzz_replay_parser.add_argument(
        "fixture", help="path to a fuzz fixture JSON file"
    )
    fuzz_replay_parser.add_argument(
        "--trace", choices=("pulses", "full"), default="pulses",
        help="trace level for the replay (verdicts are identical)",
    )
    fuzz_replay_parser.set_defaults(handler=_command_fuzz_replay)

    fuzz_promote_parser = fuzz_sub.add_parser(
        "promote",
        help="persist a fixture under promoted/ and register it as a "
        "fuzz-kind scenario entry",
    )
    fuzz_promote_parser.add_argument(
        "fixture", help="path to a fuzz fixture JSON file"
    )
    fuzz_promote_parser.add_argument(
        "--dest", default=os.path.join("results", "fuzz", "promoted"),
        help="promoted-corpus directory "
        "(default results/fuzz/promoted)",
    )
    fuzz_promote_parser.set_defaults(handler=_command_fuzz_promote)

    perf_parser = sub.add_parser(
        "perf", help="benchmark tracking (probes, baselines, CI gate)"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)

    perf_sub.add_parser(
        "list", help="list registered perf cases"
    ).set_defaults(handler=_command_perf_list)

    perf_run_parser = perf_sub.add_parser(
        "run", help="measure perf cases and write BENCH_<name>.json",
        parents=[backend_parent],
    )
    perf_run_parser.add_argument(
        "--quick", action="store_true",
        help="CI-scale workloads (seconds, not minutes)",
    )
    perf_run_parser.add_argument(
        "--case", action="append",
        help="measure only this case (repeatable; default: all)",
    )
    perf_run_parser.add_argument(
        "--out", default=DEFAULT_BENCH_DIR,
        help=f"directory for BENCH_*.json (default {DEFAULT_BENCH_DIR})",
    )
    perf_run_parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per case, best run kept (default 3)",
    )
    perf_run_parser.set_defaults(handler=_command_perf_run)

    perf_compare_parser = perf_sub.add_parser(
        "compare",
        help="grade BENCH_*.json files against a baseline (CI gate)",
    )
    perf_compare_parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline JSON file (default {DEFAULT_BASELINE})",
    )
    perf_compare_parser.add_argument(
        "--current", default=DEFAULT_BENCH_DIR,
        help="directory of fresh BENCH_*.json files "
        f"(default {DEFAULT_BENCH_DIR})",
    )
    perf_compare_parser.add_argument(
        "--tolerance", type=float, default=0.35,
        help="accepted fractional throughput drop (default 0.35)",
    )
    perf_compare_parser.set_defaults(handler=_command_perf_compare)

    perf_baseline_parser = perf_sub.add_parser(
        "baseline",
        help="re-record the committed baseline from current results",
    )
    perf_baseline_parser.add_argument(
        "--current", default=DEFAULT_BENCH_DIR,
        help="directory of fresh BENCH_*.json files "
        f"(default {DEFAULT_BENCH_DIR})",
    )
    perf_baseline_parser.add_argument(
        "--out", default=DEFAULT_BASELINE,
        help=f"baseline file to write (default {DEFAULT_BASELINE})",
    )
    perf_baseline_parser.add_argument(
        "--notes", default="",
        help="free-form provenance note stored in the baseline",
    )
    perf_baseline_parser.set_defaults(handler=_command_perf_baseline)

    telemetry_parser = sub.add_parser(
        "telemetry",
        help="inspect campaign telemetry sidecars (counters, spans, "
        "histograms)",
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )

    telemetry_sub.add_parser(
        "list", help="list the metric catalog"
    ).set_defaults(handler=_command_telemetry_list)

    telemetry_show_parser = telemetry_sub.add_parser(
        "show", help="render one campaign's telemetry sidecar"
    )
    telemetry_show_parser.add_argument(
        "campaign",
        help="campaign id (e.g. E4) or a .telemetry.json path",
    )
    telemetry_show_parser.add_argument("--scale", default="quick")
    telemetry_show_parser.add_argument(
        "--store", help="result-store directory holding the sidecar"
    )
    telemetry_show_parser.add_argument(
        "--metric", action="append",
        help="restrict output to this metric (repeatable)",
    )
    telemetry_show_parser.set_defaults(handler=_command_telemetry_show)

    telemetry_aggregate_parser = telemetry_sub.add_parser(
        "aggregate",
        help="merge every sidecar in a store into one aggregate",
    )
    telemetry_aggregate_parser.add_argument(
        "--store", required=True,
        help="result-store directory to scan for *.telemetry.json",
    )
    telemetry_aggregate_parser.add_argument(
        "--out", help="also write the merged aggregate as JSON"
    )
    telemetry_aggregate_parser.set_defaults(
        handler=_command_telemetry_aggregate
    )

    telemetry_diff_parser = telemetry_sub.add_parser(
        "diff", help="counter/gauge deltas between two sidecars"
    )
    telemetry_diff_parser.add_argument(
        "a", help="campaign id or .telemetry.json path (left side)"
    )
    telemetry_diff_parser.add_argument(
        "b", help="campaign id or .telemetry.json path (right side)"
    )
    telemetry_diff_parser.add_argument("--scale", default="quick")
    telemetry_diff_parser.add_argument(
        "--store", help="result-store directory holding the sidecars"
    )
    telemetry_diff_parser.add_argument(
        "--metric", action="append",
        help="restrict output to this metric (repeatable)",
    )
    telemetry_diff_parser.add_argument(
        "--changed-only", action="store_true",
        help="hide metrics whose delta is zero",
    )
    telemetry_diff_parser.set_defaults(handler=_command_telemetry_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except scenarios.UnknownScenarioError as exc:
        # KeyError wraps its message in repr; unwrap for a clean line.
        raise SystemExit(exc.args[0] if exc.args else str(exc)) from None
    except UnknownBackendError as exc:
        raise SystemExit(str(exc)) from None
    except UnknownComponentError as exc:
        raise SystemExit(str(exc)) from None
    except MalformedScheduleError as exc:
        raise SystemExit(f"malformed fault schedule: {exc}") from None


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
