"""Conformance engine: streaming theorem-bound monitors.

The paper's value is its *guarantees*; this subsystem makes them
machine-checked over every scenario the engine can produce:

``monitors``
    :class:`Violation` / :class:`Monitor` / :class:`CheckSet` — the
    streaming invariant monitors (Theorem 17 skew and periods, liveness,
    Lemma 11 TCB consistency, Theorem 9 APA contraction, churn
    stabilization), fed online through the scheduler's ``checks=`` hook
    so they compose with the ``TraceLevel.PULSES`` fast path.
``conformance``
    :func:`check_scenario` / :func:`conformance_matrix` — drop every
    scenario-registry entry into a reference configuration and judge it
    against the closed-form bounds (``repro check run/matrix``).
``campaign``
    :func:`campaign_conformance` — verdicts for the scenarios a
    campaign references, persisted as ``<spec_key>.check.json``
    side-cars by ``repro campaign run --check``.
``fixtures``
    The deliberately-broken executions (E8's ``u_tilde >> u`` corner;
    the crash-without-recovery schedule) proving the monitors actually
    fire.

See ``docs/CONFORMANCE.md`` for the workflow.
"""

from repro.checks.campaign import (
    campaign_conformance,
    campaign_scenarios,
    render_campaign_conformance,
)
from repro.checks.conformance import (
    APA_MONITORS,
    CHURN_MONITORS,
    CPS_MONITORS,
    FUZZ_EXPECTATION_CLAIM,
    FUZZ_EXPECTATION_MONITOR,
    FUZZ_MONITORS,
    MODE_MONITORS,
    MONITOR_CATALOG,
    ScenarioReport,
    applicable_monitors,
    check_scenario,
    churn_check_set,
    conformance_matrix,
    cps_check_set,
    matrix_payload_bytes,
    render_matrix,
    render_report,
    run_apa_conformance,
    run_churn_conformance,
    run_cps_conformance,
    scenario_case,
    scenario_mode,
)
from repro.checks.fixtures import (
    build_broken_simulation,
    build_churn_fixture,
    run_broken_fixture,
    run_churn_fixture,
)
from repro.checks.monitors import (
    TOLERANCE,
    ApaContractionMonitor,
    CheckSet,
    Monitor,
    MonitorVerdict,
    PeriodWindowMonitor,
    ProgressMonitor,
    SkewBoundMonitor,
    StabilizationMonitor,
    TcbConsistencyMonitor,
    Violation,
)

__all__ = [
    "APA_MONITORS",
    "CHURN_MONITORS",
    "CPS_MONITORS",
    "FUZZ_EXPECTATION_CLAIM",
    "FUZZ_EXPECTATION_MONITOR",
    "FUZZ_MONITORS",
    "MODE_MONITORS",
    "MONITOR_CATALOG",
    "TOLERANCE",
    "ApaContractionMonitor",
    "CheckSet",
    "Monitor",
    "MonitorVerdict",
    "PeriodWindowMonitor",
    "ProgressMonitor",
    "ScenarioReport",
    "SkewBoundMonitor",
    "StabilizationMonitor",
    "TcbConsistencyMonitor",
    "Violation",
    "applicable_monitors",
    "build_broken_simulation",
    "build_churn_fixture",
    "campaign_conformance",
    "campaign_scenarios",
    "check_scenario",
    "churn_check_set",
    "conformance_matrix",
    "cps_check_set",
    "matrix_payload_bytes",
    "render_campaign_conformance",
    "render_matrix",
    "render_report",
    "run_apa_conformance",
    "run_broken_fixture",
    "run_churn_conformance",
    "run_churn_fixture",
    "run_cps_conformance",
    "scenario_case",
    "scenario_mode",
]
