"""Streaming theorem-bound monitors.

Each :class:`Monitor` watches one guarantee of the paper *online*: it is
fed pulses and protocol annotations as the simulation executes (through
the :class:`~repro.sim.runtime.SimulationChecks` hook) and emits
structured :class:`Violation` records the moment a bound is exceeded.
Monitors hold only the state a streaming evaluation needs — per-pulse
aggregates are discarded as soon as every honest node has contributed —
so they compose with arbitrarily long runs and with the
``TraceLevel.PULSES`` fast path (no full trace is ever allocated).

The six monitors and their claims:

===================== ===============================================
:class:`SkewBoundMonitor`        Theorem 17 — per-pulse skew ``<= S``
:class:`PeriodWindowMonitor`     Theorem 17 — periods in
                                 ``[P_min, P_max]``
:class:`ProgressMonitor`         Theorem 17 (liveness) — every honest
                                 node pulses each round, times strictly
                                 increase
:class:`TcbConsistencyMonitor`   Lemma 11 — honest acceptances of one
                                 dealer within the consistency window
:class:`ApaContractionMonitor`   Theorem 9 — honest range halves per
                                 APA iteration
:class:`StabilizationMonitor`    Churn — scheduled recoveries happen,
                                 disrupted nodes re-stabilize within a
                                 pulse budget, survivors stay live
===================== ===============================================

:class:`StabilizationMonitor` is the one monitor that stores full pulse
trains instead of streaming aggregates: re-synchronization is judged by
nearest-pulse alignment, which needs pulses *after* the one under test.
Churn runs are bounded (the conformance tiers cap pulses), so the state
stays small; the other monitors keep their streaming discipline.

All bounds come from :mod:`repro.analysis.theory` /
:class:`~repro.core.params.ProtocolParameters`; the shared numerical
tolerance matches the ``1e-9`` the experiment tables use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import stabilization_report
from repro.dynamics.schedule import FaultSchedule
from repro.sim.runtime import SimulationChecks
from repro.sync.crusader import BOT

#: Numerical slack applied to every bound comparison (matches the
#: experiment tables' tolerance).
TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One observed breach of a paper guarantee, with full context."""

    monitor: str
    message: str
    observed: float
    bound: float
    time: Optional[float] = None
    node: Optional[int] = None
    pulse: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "message": self.message,
            "observed": self.observed,
            "bound": self.bound,
            "time": self.time,
            "node": self.node,
            "pulse": self.pulse,
        }

    def describe(self) -> str:
        where = []
        if self.pulse is not None:
            where.append(f"pulse {self.pulse}")
        if self.node is not None:
            where.append(f"node {self.node}")
        if self.time is not None:
            where.append(f"t={self.time:.6g}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return (
            f"{self.monitor}: {self.message} "
            f"(observed {self.observed:.6g}, bound {self.bound:.6g})"
            f"{suffix}"
        )


@dataclass(frozen=True)
class MonitorVerdict:
    """A monitor's final judgement over one execution."""

    monitor: str
    claim: str
    ok: bool
    checked: int
    violations: Tuple[Violation, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "claim": self.claim,
            "ok": self.ok,
            "checked": self.checked,
            "violations": [v.as_dict() for v in self.violations],
        }


class Monitor(SimulationChecks):
    """Base class: a named guarantee evaluated online.

    Subclasses override the event hooks they need and may implement
    :meth:`on_finish` for end-of-run checks (partial aggregates, counts).
    ``checked`` counts the individual bound comparisons performed, so a
    "pass" verdict distinguishes *held N times* from *never evaluated*.
    """

    name: str = "monitor"
    claim: str = ""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.checked = 0
        self._finished = False

    # -- event hooks ----------------------------------------------------

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        """An honest node generated its ``index``-th pulse."""

    def on_annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        """A protocol annotation arrived (e.g. ``tcb-accept``)."""

    def on_finish(self) -> None:
        """Evaluate whatever must wait for the end of the run."""

    # -- verdicts -------------------------------------------------------

    def violate(self, message: str, observed: float, bound: float,
                **context: Any) -> None:
        self.violations.append(
            Violation(
                monitor=self.name,
                message=message,
                observed=observed,
                bound=bound,
                **context,
            )
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    def finish(self) -> MonitorVerdict:
        """Run the end-of-run checks (once) and return the verdict."""
        if not self._finished:
            self._finished = True
            self.on_finish()
        return MonitorVerdict(
            monitor=self.name,
            claim=self.claim,
            ok=self.ok,
            checked=self.checked,
            violations=tuple(self.violations),
        )


class _PulseAggregate:
    """Streaming (min, max, count) of one pulse index across nodes."""

    __slots__ = ("low", "high", "count")

    def __init__(self) -> None:
        self.low = float("inf")
        self.high = float("-inf")
        self.count = 0

    def add(self, time: float) -> None:
        if time < self.low:
            self.low = time
        if time > self.high:
            self.high = time
        self.count += 1

    @property
    def spread(self) -> float:
        return self.high - self.low


class SkewBoundMonitor(Monitor):
    """Theorem 17: every pulse's skew is at most ``S``.

    Checked incrementally — the spread of a *partial* set of honest
    pulse times only grows as more nodes contribute, so a breach can be
    flagged the instant the second offending pulse arrives.  One
    violation is recorded per pulse index.
    """

    name = "skew"
    claim = "Theorem 17: pulse skew <= S"

    def __init__(self, bound: float, honest_count: int) -> None:
        super().__init__()
        self.bound = bound
        self.honest_count = honest_count
        self._open: Dict[int, _PulseAggregate] = {}
        self._flagged: set = set()

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        entry = self._open.get(index)
        if entry is None:
            entry = self._open[index] = _PulseAggregate()
        entry.add(time)
        self.checked += 1
        if (
            entry.spread > self.bound + TOLERANCE
            and index not in self._flagged
        ):
            self._flagged.add(index)
            self.violate(
                "pulse skew exceeds the Theorem 17 bound S",
                observed=entry.spread,
                bound=self.bound,
                time=time,
                node=node,
                pulse=index,
            )
        if entry.count == self.honest_count:
            del self._open[index]


class PeriodWindowMonitor(Monitor):
    """Theorem 17: consecutive pulses satisfy ``P_min``/``P_max``.

    Definition 3's periods compare *global* extremes of consecutive
    pulse indices, so a pair is evaluated as soon as both indices have
    been completed by every honest node; earlier aggregates are then
    discarded.  Indices left incomplete when the run stops are skipped
    (matching how the experiment tables truncate to the common pulse
    count).
    """

    name = "period"
    claim = "Theorem 17: periods within [P_min, P_max]"

    def __init__(
        self, p_min: float, p_max: float, honest_count: int
    ) -> None:
        super().__init__()
        self.p_min = p_min
        self.p_max = p_max
        self.honest_count = honest_count
        self._open: Dict[int, _PulseAggregate] = {}
        self._completed: Dict[int, _PulseAggregate] = {}

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        entry = self._open.get(index)
        if entry is None:
            entry = self._open[index] = _PulseAggregate()
        entry.add(time)
        if entry.count < self.honest_count:
            return
        # Index complete: compare against its completed predecessor.
        del self._open[index]
        self._completed[index] = entry
        previous = self._completed.pop(index - 1, None)
        if previous is None:
            return
        self.checked += 1
        minimum = entry.low - previous.high
        maximum = entry.high - previous.low
        if minimum < self.p_min - TOLERANCE:
            self.violate(
                "period below the Theorem 17 minimum P_min",
                observed=minimum,
                bound=self.p_min,
                time=time,
                pulse=index,
            )
        if maximum > self.p_max + TOLERANCE:
            self.violate(
                "period above the Theorem 17 maximum P_max",
                observed=maximum,
                bound=self.p_max,
                time=time,
                pulse=index,
            )


class ProgressMonitor(Monitor):
    """Liveness: every honest node pulses each round, in strict order.

    Streaming checks per node — indices increment by one and pulse
    times strictly increase; at the end of the run every honest node
    must have generated at least ``expected`` pulses.
    """

    name = "progress"
    claim = "Theorem 17 (liveness): every honest node pulses each round"

    def __init__(self, honest: Sequence[int], expected: int) -> None:
        super().__init__()
        self.honest = tuple(honest)
        self.expected = expected
        self._counts: Dict[int, int] = {v: 0 for v in self.honest}
        self._last_time: Dict[int, float] = {}

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        self.checked += 1
        previous = self._counts.get(node, 0)
        if index != previous + 1:
            self.violate(
                f"pulse index jumped from {previous} to {index}",
                observed=float(index),
                bound=float(previous + 1),
                time=time,
                node=node,
                pulse=index,
            )
        self._counts[node] = index
        last = self._last_time.get(node)
        if last is not None and time <= last:
            self.violate(
                "pulse time did not strictly increase",
                observed=time,
                bound=last,
                time=time,
                node=node,
                pulse=index,
            )
        self._last_time[node] = time

    def on_finish(self) -> None:
        for node in self.honest:
            self.checked += 1
            count = self._counts.get(node, 0)
            if count < self.expected:
                self.violate(
                    f"node generated {count} of the expected "
                    f"{self.expected} pulses",
                    observed=float(count),
                    bound=float(self.expected),
                    node=node,
                )


class TcbConsistencyMonitor(Monitor):
    """Lemma 11: honest acceptances of one dealer land close together.

    Consumes the ``tcb-accept`` annotations the CPS node emits on
    acceptance and the per-round ``cps-round`` summaries that reveal
    which acceptances survived to a non-⊥ output.  For every
    ``(round, dealer)`` group the real-time spread of surviving
    acceptances must stay within the Lemma 11 consistency window
    ``(1 - 1/theta) d + 2u / theta``.  Groups are evaluated (and freed)
    once every honest node has reported its round summary; groups left
    partial at the end of the run are evaluated as-is — a partial
    spread only underestimates the true one, so this cannot
    false-positive.
    """

    name = "tcb-consistency"
    claim = "Lemma 11: acceptances of a dealer within the window"

    def __init__(self, window: float, honest_count: int) -> None:
        super().__init__()
        self.window = window
        self.honest_count = honest_count
        # round -> dealer -> node -> acceptance real time
        self._accepts: Dict[int, Dict[int, Dict[int, float]]] = {}
        # round -> dealer -> node -> survived (estimate was not ⊥)
        self._accepted: Dict[int, Dict[int, List[Tuple[int, bool]]]] = {}
        self._summaries: Dict[int, int] = {}

    def on_annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        if kind == "tcb-accept":
            pulse_round, dealer = details
            per_round = self._accepts.setdefault(pulse_round, {})
            per_round.setdefault(dealer, {})[node] = time
        elif kind == "cps-round":
            pulse_round = details.pulse_round
            survivors = self._accepted.setdefault(pulse_round, {})
            for dealer, estimate in details.estimates.items():
                if dealer == node:
                    continue
                survivors.setdefault(dealer, []).append(
                    (node, estimate is not BOT)
                )
            seen = self._summaries.get(pulse_round, 0) + 1
            self._summaries[pulse_round] = seen
            if seen == self.honest_count:
                self._evaluate_round(pulse_round)

    def _evaluate_round(self, pulse_round: int) -> None:
        accepts = self._accepts.pop(pulse_round, {})
        survivors = self._accepted.pop(pulse_round, {})
        self._summaries.pop(pulse_round, None)
        for dealer, reports in survivors.items():
            times = [
                accepts.get(dealer, {}).get(node)
                for node, survived in reports
                if survived
            ]
            times = [t for t in times if t is not None]
            if len(times) < 2:
                continue
            self.checked += 1
            spread = max(times) - min(times)
            if spread > self.window + TOLERANCE:
                self.violate(
                    f"acceptances of dealer {dealer} spread beyond the "
                    f"Lemma 11 window",
                    observed=spread,
                    bound=self.window,
                    time=max(times),
                    node=dealer,
                    pulse=pulse_round,
                )

    def on_finish(self) -> None:
        for pulse_round in sorted(self._accepted):
            self._evaluate_round(pulse_round)


class ApaContractionMonitor(Monitor):
    """Theorem 9: the honest range at most halves every APA iteration.

    Fed a range trajectory (index 0 = initial inputs) via
    :meth:`observe_ranges`; each consecutive pair must satisfy
    ``r_{i+1} <= r_i / 2`` and the final range must respect the
    cumulative bound ``r_0 / 2^k``.
    """

    name = "apa-contraction"
    claim = "Theorem 9: honest range halves per APA iteration"

    def observe_ranges(self, ranges: Sequence[float]) -> None:
        for index in range(len(ranges) - 1):
            self.checked += 1
            before, after = ranges[index], ranges[index + 1]
            if after > before / 2.0 + TOLERANCE:
                self.violate(
                    f"iteration {index + 1} contracted "
                    f"{before:.6g} -> {after:.6g} (needs halving)",
                    observed=after,
                    bound=before / 2.0,
                    pulse=index + 1,
                )
        if len(ranges) >= 2:
            self.checked += 1
            iterations = len(ranges) - 1
            cumulative = ranges[0] / (2.0 ** iterations)
            if ranges[-1] > cumulative + TOLERANCE:
                self.violate(
                    f"final range after {iterations} iterations exceeds "
                    f"the cumulative bound",
                    observed=ranges[-1],
                    bound=cumulative,
                    pulse=iterations,
                )


class StabilizationMonitor(Monitor):
    """Churn: disruptions heal — recoveries fire, rejoiners re-stabilize.

    Constructed from the *intended* :class:`FaultSchedule`, so the
    monitor knows which membership changes an execution promised.  It
    consumes the ``churn`` annotations the
    :class:`~repro.dynamics.injector.ChurnController` emits (trace-level
    independent, like every check) plus the honest pulse stream, and at
    the end of the run verifies:

    1. every scheduled activation (recover / join / restore) was
       actually applied — a node that silently stays down is exactly
       the failure mode the crash-without-recovery fixture proves
       detectable;
    2. each activated node re-stabilizes: within ``resync_budget`` of
       its post-activation pulses, its nearest-pulse alignment envelope
       against the stable cohort drops to ``envelope`` (the skew bound
       ``S`` by default) and stays there;
    3. tail liveness: every node the schedule expects to be active at
       the end pulsed within ``tail_window`` of the run's last pulse.
    """

    name = "stabilization"
    claim = (
        "Churn: scheduled recoveries occur and disrupted nodes "
        "re-stabilize to the cohort"
    )

    def __init__(
        self,
        schedule: FaultSchedule,
        n: int,
        envelope: float,
        resync_budget: int,
        tail_window: float,
    ) -> None:
        super().__init__()
        self.schedule = schedule
        self.n = n
        self.envelope = envelope
        self.resync_budget = resync_budget
        self.tail_window = tail_window
        self._pulses: Dict[int, List[float]] = {}
        self._applied: List[Tuple[float, str, int]] = []

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        self._pulses.setdefault(node, []).append(time)

    def on_annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        if kind == "churn":
            self._applied.append((time, details["action"], node))

    # -- end-of-run evaluation -----------------------------------------

    def on_finish(self) -> None:
        reference = [
            v
            for v in self.schedule.stable_nodes(self.n)
            if self._pulses.get(v)
        ]
        self._check_activations(reference)
        self._check_tail_liveness()

    def _observed_activation(
        self, kind: str, node: int, occurrence: int
    ) -> Optional[float]:
        """Time of the ``occurrence``-th applied ``(kind, node)``
        change."""
        seen = 0
        for time, applied_kind, applied_node in self._applied:
            if applied_kind == kind and applied_node == node:
                if seen == occurrence:
                    return time
                seen += 1
        return None

    def _check_activations(self, reference: Sequence[int]) -> None:
        occurrences: Dict[Tuple[str, int], int] = {}
        for event in self.schedule.activations():
            key = (event.kind, event.node)
            occurrence = occurrences.get(key, 0)
            occurrences[key] = occurrence + 1
            self.checked += 1
            time = self._observed_activation(
                event.kind, event.node, occurrence
            )
            if time is None:
                self.violate(
                    f"scheduled {event.kind} of node {event.node} at "
                    f"{event.trigger()} never occurred",
                    observed=0.0,
                    bound=1.0,
                    node=event.node,
                )
                continue
            report = stabilization_report(
                self._pulses,
                event.node,
                time,
                reference,
                self.envelope,
            )
            self.checked += 1
            if not report.resynced:
                worst = max(
                    (
                        value
                        for value in report.trajectory
                        if value == value  # drop NaNs
                    ),
                    default=float("inf"),
                )
                self.violate(
                    f"node {event.node} never re-stabilized after its "
                    f"{event.kind}",
                    observed=worst,
                    bound=self.envelope,
                    time=time,
                    node=event.node,
                )
            elif report.pulses_to_resync > self.resync_budget:
                self.violate(
                    f"node {event.node} took {report.pulses_to_resync} "
                    f"pulses to re-stabilize after its {event.kind}",
                    observed=float(report.pulses_to_resync),
                    bound=float(self.resync_budget),
                    time=time,
                    node=event.node,
                )

    def _check_tail_liveness(self) -> None:
        last_any = max(
            (times[-1] for times in self._pulses.values() if times),
            default=None,
        )
        if last_any is None:
            return
        horizon = last_any - self.tail_window
        for node in self.schedule.finally_active(self.n):
            self.checked += 1
            times = self._pulses.get(node, [])
            last = times[-1] if times else float("-inf")
            if last < horizon - TOLERANCE:
                self.violate(
                    f"node {node} fell silent: last pulse "
                    f"{last_any - last:.6g} before the end of the run "
                    f"(allowed {self.tail_window:.6g})",
                    observed=last,
                    bound=horizon,
                    node=node,
                )


class CheckSet(SimulationChecks):
    """A fan-out of monitors, attachable to a simulation as one hook."""

    __slots__ = ("monitors",)

    def __init__(self, monitors: Sequence[Monitor]) -> None:
        self.monitors = list(monitors)

    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        for monitor in self.monitors:
            monitor.on_pulse(time, node, index, local_time)

    def on_annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        for monitor in self.monitors:
            monitor.on_annotate(time, node, kind, details)

    def finish(self) -> List[MonitorVerdict]:
        """Finalize every monitor and collect the verdicts."""
        return [monitor.finish() for monitor in self.monitors]

    def violations(self) -> List[Violation]:
        return [
            violation
            for monitor in self.monitors
            for violation in monitor.violations
        ]

    @property
    def ok(self) -> bool:
        return all(monitor.ok for monitor in self.monitors)

    def names(self) -> List[str]:
        return [monitor.name for monitor in self.monitors]
