"""Deliberately-broken executions proving the monitors actually fire.

A conformance engine that always reports PASS is indistinguishable from
one that checks nothing, so this module wires corners where the
guarantees provably collapse:

* the **broken** fixture — faulty links undercutting the honest minimum
  delay (``u_tilde = 16 u``, experiment E8's setup): rushed echoes
  force honest-dealer rejections and the measured skew exceeds
  Theorem 17's ``S``, so the static monitors must emit violations;
* the **churn** fixture — a crash whose scheduled recovery silently
  never happens: the execution runs a crash-only schedule while the
  :class:`~repro.checks.monitors.StabilizationMonitor` is configured
  with the *intended* schedule (crash then recover), exactly the
  observability a real deployment needs when a node fails to come back.

Both the test suite and ``repro check fixture`` run these and demand at
least one :class:`~repro.checks.monitors.Violation`.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro import scenarios
from repro.checks.conformance import churn_check_set, cps_check_set
from repro.checks.monitors import MonitorVerdict
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.dynamics import ChurnController, FaultEvent, FaultSchedule

#: E8's model-violation regime: faulty links 16x faster than honest
#: uncertainty permits.  The table shows the measured skew exceeding S.
BROKEN_N = 6
BROKEN_THETA = 1.0005
BROKEN_D = 1.0
BROKEN_U = 0.01
BROKEN_U_TILDE = 0.16
BROKEN_PULSES = 12


def build_broken_simulation(seed: int = 2, trace: Any = "pulses"):
    """CPS under rushing echoes with ``u_tilde >> u`` plus monitors.

    Returns ``(simulation, check_set, params)``; running the simulation
    for :data:`BROKEN_PULSES` pulses makes the skew monitor fire.
    """
    params = derive_parameters(BROKEN_THETA, BROKEN_D, BROKEN_U, BROKEN_N)
    faulty = list(range(BROKEN_N - params.f, BROKEN_N))
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=scenarios.create("adversary", "rushing-echo", None),
        delay_policy=scenarios.create("delay", "fast-to-faulty", BROKEN_N),
        u_tilde=BROKEN_U_TILDE,
        seed=seed,
        clock_style="extreme",
        trace=trace,
    )
    checks = cps_check_set(params, simulation.honest, BROKEN_PULSES)
    simulation.attach_checks(checks)
    return simulation, checks, params


def run_broken_fixture(
    seed: int = 2,
) -> Tuple[List[MonitorVerdict], Any]:
    """Execute the broken fixture; returns ``(verdicts, result)``.

    At least one verdict carries a violation — asserted by the test
    suite and by ``repro check fixture``.
    """
    simulation, checks, _params = build_broken_simulation(seed=seed)
    result = simulation.run(max_pulses=BROKEN_PULSES)
    return checks.finish(), result


#: Churn fixture: the crash is real, the recovery never happens.
CHURN_FIXTURE_N = 6
CHURN_FIXTURE_THETA = 1.001
CHURN_FIXTURE_D = 1.0
CHURN_FIXTURE_U = 0.02
CHURN_FIXTURE_CRASH_PULSE = 3
CHURN_FIXTURE_RECOVER_PULSE = 6
CHURN_FIXTURE_PULSES = 14


def build_churn_fixture(seed: int = 3, trace: Any = "pulses"):
    """A crash-without-recovery execution plus its watchdog monitor.

    The *intended* schedule promises ``recover`` at pulse
    :data:`CHURN_FIXTURE_RECOVER_PULSE`; the *executed* schedule drops
    it, so the node stays down for good.  The stabilization monitor is
    parameterized with the intended schedule and must report both the
    missing recovery and the node's tail silence.

    Returns ``(simulation, check_set, params)``.
    """
    params = derive_parameters(
        CHURN_FIXTURE_THETA,
        CHURN_FIXTURE_D,
        CHURN_FIXTURE_U,
        CHURN_FIXTURE_N,
    )
    crash = FaultEvent("crash", 0, at_pulse=CHURN_FIXTURE_CRASH_PULSE)
    recover = FaultEvent(
        "recover", 0, at_pulse=CHURN_FIXTURE_RECOVER_PULSE
    )
    executed = FaultSchedule(
        events=(crash,),
        corruptions=1,
        description="crash only (the failure being detected)",
    )
    intended = FaultSchedule(
        events=(crash, recover),
        corruptions=1,
        description="crash with the promised recovery",
    )
    simulation = assemble_cps_simulation(
        params,
        faulty=executed.initially_corrupted(params.n),
        behavior=scenarios.create("adversary", "silent", params),
        seed=seed,
        clock_style="extreme",
        trace=trace,
        dynamics=ChurnController(executed, params),
    )
    checks = churn_check_set(intended, params)
    simulation.attach_checks(checks)
    return simulation, checks, params


def run_churn_fixture(
    seed: int = 3,
) -> Tuple[List[MonitorVerdict], Any]:
    """Execute the crash-without-recovery fixture.

    The stabilization monitor must fire (missing recovery + tail
    silence) — asserted by the test suite and by
    ``repro check fixture --fixture churn``.
    """
    simulation, checks, _params = build_churn_fixture(seed=seed)
    result = simulation.run(max_pulses=CHURN_FIXTURE_PULSES)
    return checks.finish(), result
