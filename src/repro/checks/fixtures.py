"""A deliberately-broken execution proving the monitors actually fire.

A conformance engine that always reports PASS is indistinguishable from
one that checks nothing, so this module wires the one corner of the
model where the paper *tells us* the guarantees collapse: faulty links
undercutting the honest minimum delay (``u_tilde > u``).  Under the
rushing-echo attack with ``u_tilde = 16 u`` (experiment E8's setup),
rushed echoes force honest-dealer rejections and the measured skew
provably exceeds Theorem 17's ``S`` — the monitors, parameterized for
the *honest* ``u``, must therefore emit violations.

Both the test suite and ``repro check fixture`` run this and demand at
least one :class:`~repro.checks.monitors.Violation`.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro import scenarios
from repro.checks.conformance import cps_check_set
from repro.checks.monitors import MonitorVerdict
from repro.core.cps import build_cps_simulation
from repro.core.params import derive_parameters

#: E8's model-violation regime: faulty links 16x faster than honest
#: uncertainty permits.  The table shows the measured skew exceeding S.
BROKEN_N = 6
BROKEN_THETA = 1.0005
BROKEN_D = 1.0
BROKEN_U = 0.01
BROKEN_U_TILDE = 0.16
BROKEN_PULSES = 12


def build_broken_simulation(seed: int = 2, trace: Any = "pulses"):
    """CPS under rushing echoes with ``u_tilde >> u`` plus monitors.

    Returns ``(simulation, check_set, params)``; running the simulation
    for :data:`BROKEN_PULSES` pulses makes the skew monitor fire.
    """
    params = derive_parameters(BROKEN_THETA, BROKEN_D, BROKEN_U, BROKEN_N)
    faulty = list(range(BROKEN_N - params.f, BROKEN_N))
    simulation = build_cps_simulation(
        params,
        faulty=faulty,
        behavior=scenarios.create("adversary", "rushing-echo", None),
        delay_policy=scenarios.create("delay", "fast-to-faulty", BROKEN_N),
        u_tilde=BROKEN_U_TILDE,
        seed=seed,
        clock_style="extreme",
        trace=trace,
    )
    checks = cps_check_set(params, simulation.honest, BROKEN_PULSES)
    simulation.attach_checks(checks)
    return simulation, checks, params


def run_broken_fixture(
    seed: int = 2,
) -> Tuple[List[MonitorVerdict], Any]:
    """Execute the broken fixture; returns ``(verdicts, result)``.

    At least one verdict carries a violation — asserted by the test
    suite and by ``repro check fixture``.
    """
    simulation, checks, _params = build_broken_simulation(seed=seed)
    result = simulation.run(max_pulses=BROKEN_PULSES)
    return checks.finish(), result
