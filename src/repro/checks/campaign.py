"""Per-campaign conformance: the ``--check`` flag's engine.

``repro campaign run <name> --check`` conformance-runs every scenario
the campaign's grid references (the registry-validated ``adversary`` /
``delay`` / ``topology`` / ``drift`` case values across all trial
plans) and, with ``--store``, persists the verdicts as a
``<spec_key>.check.json`` side-car next to the trial records —
mirroring how ``--perf`` persists throughput summaries.

The payload is derived purely from the spec (scenario set, campaign
seed) and the deterministic conformance engine, so two runs of the same
campaign at the same scale write byte-identical artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.campaigns.spec import SCENARIO_CASE_KEYS, CampaignSpec
from repro.checks.conformance import (
    MONITOR_CATALOG,
    check_scenario,
)
from repro.scenarios import REGISTRY


def campaign_scenarios(
    spec: CampaignSpec, scale: str
) -> List[Tuple[str, str]]:
    """The registry entries a campaign's grid references at ``scale``.

    Scans every trial plan's case dict for scenario-typed keys whose
    string values name registry entries (the same convention campaign
    plan-time validation uses).  Non-registry axes (e.g. E5's
    ``algorithm``) are ignored.
    """
    found = set()
    for plan in spec.trials_for(scale):
        if plan.case.get("ablate"):
            # Ablated trials switch protocol components *off*; their
            # bound violations are the expected result, not a
            # conformance failure (see repro.ablation), so they are
            # excluded from gating and tallied separately.
            continue
        for case_key, kind in SCENARIO_CASE_KEYS.items():
            value = plan.case.get(case_key)
            if isinstance(value, str) and REGISTRY.has(kind, value):
                found.add((kind, value))
    return sorted(found)


def ablated_trials(spec: CampaignSpec, scale: str) -> int:
    """Trials carrying an ``ablate`` key — expected-failure rows."""
    return sum(
        1
        for plan in spec.trials_for(scale)
        if plan.case.get("ablate")
    )


def campaign_conformance(
    spec: CampaignSpec, scale: str = "quick"
) -> Dict[str, Any]:
    """Conformance verdicts for every scenario a campaign references.

    Conformance always runs at quick scale (the verdict is about the
    *scenario*, not the campaign's measurement tier); the campaign's
    own seed keys the deterministic per-scenario seeds.
    """
    reports = [
        check_scenario(kind, key, scale="quick", seed=spec.seed)
        for kind, key in campaign_scenarios(spec, scale)
    ]
    failed = [report.qualified for report in reports if not report.ok]
    return {
        "campaign": spec.name,
        "scale": scale,
        "spec_key": spec.spec_key(scale),
        "seed": spec.seed,
        "monitors": list(MONITOR_CATALOG),
        "scenarios": [report.as_dict() for report in reports],
        "total": len(reports),
        "failed": failed,
        "ablated_expected_failures": ablated_trials(spec, scale),
        "pass": not failed,
    }


def render_campaign_conformance(payload: Dict[str, Any]) -> str:
    """One-line-per-scenario summary for the campaign CLI."""
    lines = [
        f"conformance [{payload['campaign']}]: "
        f"{payload['total']} referenced scenario(s)"
    ]
    ablated = payload.get("ablated_expected_failures", 0)
    if ablated:
        lines.append(
            f"  ({ablated} ablated trial(s) excluded: bound "
            f"violations there are expected — see repro.ablation)"
        )
    for entry in payload["scenarios"]:
        status = "PASS" if entry["ok"] else "FAIL"
        checked = sum(v["checked"] for v in entry["verdicts"])
        label = f"{entry['kind']}:{entry['key']}"
        lines.append(f"  {label:<32} {status}  ({checked} checks)")
        if entry["error"] is not None:
            lines.append(f"    ! {entry['error']}")
        for verdict in entry["verdicts"]:
            for violation in verdict["violations"]:
                lines.append(
                    f"    ! {verdict['monitor']}: "
                    f"{violation['message']} "
                    f"(observed {violation['observed']:.6g}, "
                    f"bound {violation['bound']:.6g})"
                )
    return "\n".join(lines)
