"""Conformance runs: every registry scenario against the paper bounds.

The conformance engine turns the scenario registry into a test matrix:
each entry is dropped into a fixed reference configuration, executed at
a CI-friendly scale with streaming monitors attached, and judged
against the closed-form bounds of :mod:`repro.analysis.theory`.  Two
execution modes cover the catalog:

``cps``
    Pulse-synchronization scenarios (``cps``-tagged adversaries, every
    delay policy, drift profile, and topology).  The simulation is
    assembled by the same registry-keyed facade the STRESS campaign
    uses (:func:`repro.build.build_simulation`) with the Theorem 17 /
    Lemma 11 monitors attached through the scheduler's ``checks=``
    hook; ``backend=`` selects the event or vectorized engine, which is
    how the cross-backend differential suite reuses this machinery as
    its oracle.
``apa``
    Round-model adversaries (``apa``-tagged) run iterated approximate
    agreement and are judged by :class:`ApaContractionMonitor`
    (Theorem 9).
``churn``
    Fault-schedule profiles (registry kind ``churn``) run CPS under
    membership dynamics and are judged by
    :class:`StabilizationMonitor`: scheduled recoveries must occur,
    rejoiners must re-stabilize within a pulse budget, and survivors
    must stay live.  The static Theorem 17 monitors do not apply — a
    recovering node legitimately pulses outside the skew bound while it
    contracts.
``fuzz``
    Promoted fuzz fixtures (registry kind ``fuzz``, see
    :mod:`repro.fuzz`) replay their stored case and are judged against
    their recorded *expectation*: a shrunk counterexample passes while
    the monitors still fire on it, an interesting corner passes while
    the bounds still hold.  The fixture carries its own seed, so the
    sweep seed does not perturb the replay.

Everything here is deterministic given ``seed`` — verdict payloads
contain no wall-clock data — which is what makes persisted conformance
artifacts byte-stable across runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import theory
from repro.build import build_simulation
from repro.campaigns.spec import derive_seed
from repro.checks.monitors import (
    ApaContractionMonitor,
    CheckSet,
    MonitorVerdict,
    PeriodWindowMonitor,
    ProgressMonitor,
    SkewBoundMonitor,
    StabilizationMonitor,
    TcbConsistencyMonitor,
)
from repro.core.params import ProtocolParameters, max_faults
from repro.scenarios import REGISTRY
from repro.sync.approx_agreement import run_apa

#: Promoted fuzz fixtures are judged by a single expectation check: a
#: counterexample fixture must still make the monitors fire, an
#: interesting corner must still pass (see :mod:`repro.fuzz`).
FUZZ_EXPECTATION_MONITOR = "fuzz-expectation"
FUZZ_EXPECTATION_CLAIM = (
    "Fuzz: a promoted fixture reproduces its recorded expectation"
)

#: Monitor catalog in display order: name -> claim (matrix columns).
MONITOR_CATALOG: Dict[str, str] = {
    SkewBoundMonitor.name: SkewBoundMonitor.claim,
    PeriodWindowMonitor.name: PeriodWindowMonitor.claim,
    ProgressMonitor.name: ProgressMonitor.claim,
    TcbConsistencyMonitor.name: TcbConsistencyMonitor.claim,
    ApaContractionMonitor.name: ApaContractionMonitor.claim,
    StabilizationMonitor.name: StabilizationMonitor.claim,
    FUZZ_EXPECTATION_MONITOR: FUZZ_EXPECTATION_CLAIM,
}

#: Monitors applicable to each execution mode.
CPS_MONITORS: Tuple[str, ...] = (
    SkewBoundMonitor.name,
    PeriodWindowMonitor.name,
    ProgressMonitor.name,
    TcbConsistencyMonitor.name,
)
APA_MONITORS: Tuple[str, ...] = (ApaContractionMonitor.name,)
CHURN_MONITORS: Tuple[str, ...] = (StabilizationMonitor.name,)
FUZZ_MONITORS: Tuple[str, ...] = (FUZZ_EXPECTATION_MONITOR,)

#: Monitors per execution mode (used by the matrix renderer too).
MODE_MONITORS: Dict[str, Tuple[str, ...]] = {
    "cps": CPS_MONITORS,
    "apa": APA_MONITORS,
    "churn": CHURN_MONITORS,
    "fuzz": FUZZ_MONITORS,
}

#: The reference configuration conformance runs drop scenarios into —
#: the STRESS campaign's base system in the typical regime.
CPS_BASE_CASE: Dict[str, Any] = {
    "n": 6,
    "theta": 1.001,
    "d": 1.0,
    "u": 0.02,
    "adversary": "silent",
    "delay": "maximum",
    "drift": "extreme",
}

#: Topology rows need a sparse-graph-friendly size (matches STRESS).
TOPOLOGY_N = 8

#: Pulses measured per scale (quick keeps the full matrix CI-friendly).
PULSES_BY_SCALE: Dict[str, int] = {"quick": 8, "full": 20}

#: Churn scenarios run longer: a rejoiner must catch up to the quota
#: after losing pulses to its outage, and every scheduled event has to
#: fire before the run ends.
CHURN_PULSES_BY_SCALE: Dict[str, int] = {"quick": 14, "full": 28}

#: Stabilization-monitor tolerances: a rejoiner may spend this many
#: pulses contracting (the listen-then-join estimate is O(S), so a few
#: Lemma 16 halvings suffice — the budget leaves headroom for adverse
#: delay/drift draws), and a finally-active node must have pulsed
#: within this many maximum periods of the run's end.
RESYNC_PULSE_BUDGET = 6
TAIL_WINDOW_PERIODS = 2.0

#: APA reference run (mirrors the E1 campaign's n=9 row).
APA_N = 9
APA_INITIAL_RANGE = 64.0
APA_TARGET = 1.0


def cps_check_set(
    params: ProtocolParameters,
    honest: Sequence[int],
    expected_pulses: int,
) -> CheckSet:
    """The Theorem 17 / Lemma 11 monitors for one CPS deployment."""
    honest = list(honest)
    return CheckSet(
        [
            SkewBoundMonitor(theory.cps_skew_bound(params), len(honest)),
            PeriodWindowMonitor(
                theory.cps_min_period_bound(params),
                theory.cps_max_period_bound(params),
                len(honest),
            ),
            ProgressMonitor(honest, expected_pulses),
            TcbConsistencyMonitor(
                theory.tcb_consistency_bound(params), len(honest)
            ),
        ]
    )


@dataclass(frozen=True)
class ScenarioReport:
    """Conformance verdicts of one scenario in one mode."""

    kind: str
    key: str
    mode: str
    seed: int
    verdicts: Tuple[MonitorVerdict, ...]
    error: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.kind}:{self.key}"

    @property
    def ok(self) -> bool:
        return self.error is None and all(v.ok for v in self.verdicts)

    def verdict_for(self, monitor: str) -> Optional[MonitorVerdict]:
        for verdict in self.verdicts:
            if verdict.monitor == monitor:
                return verdict
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "mode": self.mode,
            "seed": self.seed,
            "ok": self.ok,
            "error": self.error,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def scenario_mode(kind: str, key: str) -> str:
    """``"cps"``, ``"apa"``, ``"churn"``, or ``"fuzz"`` — how a
    registry entry is conformance-run."""
    entry = REGISTRY.get(kind, key)
    if entry.kind == "adversary" and "apa" in entry.tags:
        return "apa"
    if entry.kind == "churn":
        return "churn"
    if entry.kind == "fuzz":
        return "fuzz"
    return "cps"


def applicable_monitors(kind: str, key: str) -> Tuple[str, ...]:
    """Monitor names that apply to ``(kind, key)``."""
    return MODE_MONITORS[scenario_mode(kind, key)]


def scenario_case(
    kind: str,
    key: str,
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The reference case dict with ``(kind, key)`` plugged in.

    ``overrides`` become the entry's factory keyword arguments (the
    ``<kind>_params`` case key) — the CLI's ``--param`` plumbing.
    """
    case = dict(CPS_BASE_CASE)
    if kind == "topology":
        case["n"] = TOPOLOGY_N
    case[kind] = key
    if overrides:
        case[f"{kind}_params"] = dict(overrides)
    return case


def conformance_seed(seed: int, kind: str, key: str) -> int:
    """Deterministic per-scenario seed (independent of sweep order)."""
    return derive_seed(seed, "conformance", {"kind": kind, "key": key})


def run_cps_conformance(
    case: Dict[str, Any],
    pulses: int,
    seed: int,
    trace: Any = "pulses",
    backend: str = "event",
) -> Tuple[List[MonitorVerdict], Any]:
    """Run one registry-keyed CPS case with monitors attached.

    Returns ``(verdicts, simulation_result)``; the result is surfaced
    so differential tests can compare pulse streams across trace
    levels and across backends (the vectorized engine must produce a
    verdict-identical monitor matrix).
    """
    simulation, params, _f, _effective = build_simulation(
        case, backend=backend, seed=seed, trace=trace
    ).legacy_tuple()
    checks = cps_check_set(params, simulation.honest, pulses)
    simulation.attach_checks(checks)
    result = simulation.run(max_pulses=pulses)
    return checks.finish(), result


def churn_check_set(
    schedule: Any, params: ProtocolParameters
) -> CheckSet:
    """The stabilization monitor for one churn deployment."""
    return CheckSet(
        [
            StabilizationMonitor(
                schedule,
                params.n,
                envelope=params.S,
                resync_budget=RESYNC_PULSE_BUDGET,
                tail_window=TAIL_WINDOW_PERIODS * params.p_max_bound,
            )
        ]
    )


def run_churn_conformance(
    case: Dict[str, Any],
    pulses: int,
    seed: int,
    trace: Any = "pulses",
) -> Tuple[List[MonitorVerdict], Any]:
    """Run one churn-keyed CPS case with the stabilization monitor.

    Returns ``(verdicts, simulation_result)`` like
    :func:`run_cps_conformance`.
    """
    simulation, params, _f, _effective = build_simulation(
        case, seed=seed, trace=trace
    ).legacy_tuple()
    checks = churn_check_set(simulation.dynamics.schedule, params)
    simulation.attach_checks(checks)
    result = simulation.run(max_pulses=pulses)
    return checks.finish(), result


def run_apa_conformance(
    key: str,
    seed: int,
    overrides: Optional[Dict[str, Any]] = None,
) -> Tuple[List[MonitorVerdict], Any]:
    """Run iterated APA under one registry adversary with the Theorem 9
    monitor."""
    n = APA_N
    f = max_faults(n)
    faulty = list(range(n - f, n))
    iterations = math.ceil(math.log2(APA_INITIAL_RANGE / APA_TARGET))
    adversary = REGISTRY.create("adversary", key, None, **(overrides or {}))
    honest = [v for v in range(n) if v not in faulty]
    inputs = {
        v: APA_INITIAL_RANGE * index / max(len(honest) - 1, 1)
        for index, v in enumerate(honest)
    }
    outcome = run_apa(
        inputs, n, f, faulty, adversary, iterations=iterations, seed=seed
    )
    monitor = ApaContractionMonitor()
    monitor.observe_ranges(outcome.ranges())
    return [monitor.finish()], outcome


def check_scenario(
    kind: str,
    key: str,
    scale: str = "quick",
    seed: int = 0,
    trace: Any = "pulses",
    overrides: Optional[Dict[str, Any]] = None,
    backend: str = "event",
) -> ScenarioReport:
    """Conformance-run one registry scenario and report per-monitor
    verdicts.

    ``seed`` is the *sweep* seed; the scenario's own seed is derived
    from it deterministically.  ``overrides`` are forwarded to the
    scenario factory (the CLI's ``--param``).  Execution errors are
    tabulated (an errored scenario fails conformance but never aborts
    a matrix sweep).  ``backend`` selects the engine for ``cps``-mode
    scenarios; the other modes are event-only, so a non-default
    backend tabulates them as errors rather than silently falling
    back.
    """
    scenario_seed = conformance_seed(seed, kind, key)
    mode = "cps"
    try:
        mode = scenario_mode(kind, key)
        if mode != "cps" and backend != "event":
            from repro.sim.vectorized import UnsupportedScenarioError

            raise UnsupportedScenarioError(
                f"backend {backend!r} does not support mode {mode!r} "
                f"scenarios; use backend='event'"
            )
        if mode == "apa":
            verdicts, _outcome = run_apa_conformance(
                key, scenario_seed, overrides
            )
        elif mode == "fuzz":
            # Lazy import: repro.fuzz builds on this module.
            from repro.fuzz.oracle import (
                expectation_verdict,
                replay_fixture,
            )

            payload = REGISTRY.create("fuzz", key, None)
            run = replay_fixture(payload, trace=trace)
            verdicts = [expectation_verdict(payload, run)]
        elif mode == "churn":
            pulses = CHURN_PULSES_BY_SCALE.get(
                scale, CHURN_PULSES_BY_SCALE["quick"]
            )
            case = scenario_case(kind, key, overrides)
            verdicts, _result = run_churn_conformance(
                case, pulses, scenario_seed, trace=trace
            )
        else:
            pulses = PULSES_BY_SCALE.get(scale, PULSES_BY_SCALE["quick"])
            case = scenario_case(kind, key, overrides)
            verdicts, _result = run_cps_conformance(
                case, pulses, scenario_seed, trace=trace, backend=backend
            )
        error = None
    except Exception as exc:  # noqa: BLE001 - sweeps tabulate failures
        verdicts, error = [], f"{type(exc).__name__}: {exc}"
    return ScenarioReport(
        kind=kind,
        key=key,
        mode=mode,
        seed=scenario_seed,
        verdicts=tuple(verdicts),
        error=error,
    )


def conformance_matrix(
    scale: str = "quick",
    seed: int = 0,
    kinds: Optional[Sequence[str]] = None,
    backend: str = "event",
) -> Dict[str, Any]:
    """Sweep every applicable registry scenario; JSON-ready verdicts.

    The payload is deterministic given ``seed`` (no timestamps or
    durations), so writing it twice with the same inputs produces
    byte-identical files.  A non-default ``backend`` is recorded in
    the payload; the default is omitted so the committed
    ``results/conformance.json`` stays byte-identical to the
    pre-facade format.
    """
    reports: List[ScenarioReport] = []
    for entry in REGISTRY.entries():
        if kinds is not None and entry.kind not in kinds:
            continue
        reports.append(
            check_scenario(
                entry.kind, entry.key, scale, seed, backend=backend
            )
        )
    failed = [report.qualified for report in reports if not report.ok]
    payload = {
        "scale": scale,
        "seed": seed,
        "monitors": list(MONITOR_CATALOG),
        "scenarios": [report.as_dict() for report in reports],
        "total": len(reports),
        "failed": failed,
        "pass": not failed,
    }
    if backend != "event":
        payload["backend"] = backend
    return payload


def matrix_payload_bytes(payload: Dict[str, Any]) -> bytes:
    """The canonical on-disk serialization of a verdict payload.

    Byte-for-byte what :func:`~repro.campaigns.store.dump_json_summary`
    writes (indent 2, sorted keys, trailing LF) — the byte-identity
    regression test compares a freshly computed matrix against the
    committed ``results/conformance.json`` through this function, so it
    must stay in lockstep with the store's serializer.
    """
    import json

    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return text.encode("utf-8")


def render_matrix(payload: Dict[str, Any]) -> str:
    """The scenario x monitor pass/fail table for ``stdout``."""
    monitors = payload["monitors"]
    label_width = max(
        [len("scenario")]
        + [
            len(f"{entry['kind']}:{entry['key']}")
            for entry in payload["scenarios"]
        ]
    )
    widths = [max(len(name), 4) for name in monitors]
    lines = [
        f"conformance matrix [{payload['scale']}] — paper-bound "
        f"monitors over every registry scenario"
    ]
    header = "  ".join(
        [f"{'scenario':<{label_width}}"]
        + [f"{name:>{width}}" for name, width in zip(monitors, widths)]
    )
    lines.append(header)
    lines.append("-" * len(header))
    for entry in payload["scenarios"]:
        cells = []
        by_monitor = {
            verdict["monitor"]: verdict for verdict in entry["verdicts"]
        }
        for name, width in zip(monitors, widths):
            verdict = by_monitor.get(name)
            if entry["error"] is not None and name in MODE_MONITORS.get(
                entry["mode"], ()
            ):
                cell = "ERR"
            elif verdict is None:
                cell = "—"
            else:
                cell = "PASS" if verdict["ok"] else "FAIL"
            cells.append(f"{cell:>{width}}")
        label = f"{entry['kind']}:{entry['key']}"
        lines.append("  ".join([f"{label:<{label_width}}"] + cells))
    failed = payload["failed"]
    lines.append("")
    if failed:
        lines.append(
            f"{len(failed)}/{payload['total']} scenarios FAILED: "
            + ", ".join(failed)
        )
    else:
        lines.append(
            f"all {payload['total']} scenarios PASS every applicable "
            f"monitor"
        )
    return "\n".join(lines)


def render_report(report: ScenarioReport) -> str:
    """Human-readable verdicts for one scenario."""
    lines = [
        f"{report.qualified} [{report.mode}] seed={report.seed} — "
        + ("PASS" if report.ok else "FAIL")
    ]
    if report.error is not None:
        lines.append(f"  error      {report.error}")
    for verdict in report.verdicts:
        status = "PASS" if verdict.ok else "FAIL"
        lines.append(
            f"  {verdict.monitor:<16} {status}  "
            f"({verdict.checked} checks) — {verdict.claim}"
        )
        for violation in verdict.violations:
            lines.append(f"    ! {violation.describe()}")
    return "\n".join(lines)
