"""Drift-profile catalog: hardware-clock ensembles under registry keys.

Factories follow the ``drift`` convention of
:mod:`repro.scenarios.registry`: ``factory(params, seed, **overrides)``
returns one :class:`~repro.sim.clocks.HardwareClock` per node.  Every
ensemble honours the model assumptions the simulations validate at
start-up: initial offsets ``H_v(0) in [0, S]`` and rates in
``[1, theta]``.

``random`` and ``extreme`` are the two ensembles the pre-registry code
selected via ``assemble_cps_simulation(clock_style=...)``; ``mixed`` and
``staggered`` are stress ensembles that combine stable, fast, and
wandering hardware in one system.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.cps import default_clocks
from repro.scenarios.registry import register_scenario
from repro.sim.clocks import HardwareClock


@register_scenario(
    "drift",
    "random",
    description="Offsets uniform in [0, S]; rates re-drawn from "
    "[1, theta] as the run progresses",
    paper_ref="the benign wandering-oscillator ensemble (E10 floor "
    "measurements)",
    tags=("benign",),
)
def _random_profile(params, seed: int = 0) -> List[HardwareClock]:
    return default_clocks(params, seed=seed, style="random")


@register_scenario(
    "drift",
    "extreme",
    description="Half the nodes at rate 1 / offset 0, half at rate "
    "theta / offset S",
    paper_ref="the adversarial corner the Theorem 17 analysis is tight "
    "against (E4/E5)",
    tags=("adversarial",),
)
def _extreme_profile(params, seed: int = 0) -> List[HardwareClock]:
    return default_clocks(params, seed=seed, style="extreme")


@register_scenario(
    "drift",
    "mixed",
    description="One third stable (rate 1), one third fast (rate "
    "theta, offset S), one third wandering",
    paper_ref="mixed honest/faulty-grade hardware in one system; "
    "stresses the midpoint against heterogeneous drift",
    tags=("stress", "new"),
)
def _mixed_profile(params, seed: int = 0) -> List[HardwareClock]:
    rng = random.Random(seed)
    horizon = 200.0 * params.d
    clocks: List[HardwareClock] = []
    for node in range(params.n):
        style = node % 3
        if style == 0:
            clocks.append(
                HardwareClock.constant_rate(
                    1.0, offset=0.0, theta=params.theta
                )
            )
        elif style == 1:
            clocks.append(
                HardwareClock.constant_rate(
                    params.theta, offset=params.S, theta=params.theta
                )
            )
        else:
            clocks.append(
                HardwareClock.random_drift(
                    rng,
                    params.theta,
                    offset=rng.uniform(0.0, params.S),
                    horizon=horizon,
                    segment_length=max(horizon / 40.0, params.d),
                )
            )
    return clocks


@register_scenario(
    "drift",
    "staggered",
    description="Offsets spread linearly across the full allowed [0, S]"
    " band, rates alternating between 1 and theta",
    paper_ref="worst allowed initial spread (the E10 starting state) "
    "combined with maximal rate disagreement",
    tags=("stress", "new"),
)
def _staggered_profile(params, seed: int = 0) -> List[HardwareClock]:
    n = params.n
    clocks: List[HardwareClock] = []
    for node in range(n):
        offset = params.S * node / max(n - 1, 1)
        rate = 1.0 if node % 2 == 0 else params.theta
        clocks.append(
            HardwareClock.constant_rate(
                rate, offset=offset, theta=params.theta
            )
        )
    return clocks
