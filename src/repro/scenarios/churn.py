"""Churn-profile catalog: fault schedules under registry keys.

Factories follow the ``churn`` convention of
:mod:`repro.scenarios.registry`: ``factory(params, **overrides)``
returns a :class:`~repro.dynamics.schedule.FaultSchedule` sized from
``params.n`` / ``params.f``, so one profile composes with any
deployment the campaign grid names.

Budget convention (enforced by schedule validation): crashed, dormant,
and corrupted nodes all count against the resilience budget ``f`` — a
crash *is* a fault — so every profile declares how many nodes the
adversary corrupts from time 0 (``corruptions``, always the top ids)
and spends the remaining budget on churn.  Disturbed nodes are the low
ids; the middle of the id range stays untouched and forms the stable
reference cohort of the stabilization metrics.

Triggers are pulse-relative (``at_pulse``), so a profile means the same
thing across parameter regimes whose periods differ by orders of
magnitude.
"""

from __future__ import annotations

from repro.dynamics.schedule import (
    FaultEvent,
    FaultSchedule,
    MalformedScheduleError,
)
from repro.scenarios.registry import ParamSpec, register_scenario


def _budget(params, reserve: int) -> int:
    """Corruptions leaving ``reserve`` budget slots for churn."""
    corruptions = params.f - reserve
    if corruptions < 0:
        raise MalformedScheduleError(
            f"profile needs {reserve} free fault slots but the "
            f"deployment only has f={params.f}"
        )
    return corruptions


@register_scenario(
    "churn",
    "single-crash",
    description="One honest node fail-stops mid-run and never returns",
    paper_ref="a crash is a (benign) fault: the survivors must hold "
    "Theorem 17 with the crash charged against f",
    params=(
        ParamSpec("node", 0, "id of the node that crashes"),
        ParamSpec("at_pulse", 3, "pulse index triggering the crash"),
    ),
    tags=("churn", "cps"),
)
def _single_crash(params, node: int = 0, at_pulse: int = 3):
    return FaultSchedule(
        events=(FaultEvent("crash", node, at_pulse=at_pulse),),
        corruptions=_budget(params, 1),
        description="one permanent fail-stop",
    )


@register_scenario(
    "churn",
    "rolling-crashes",
    description="A sequence of single crashes, each healed before the "
    "next node goes down",
    paper_ref="sequential maintenance: at most one node down at a time, "
    "re-stabilization between outages (Lemma 16 dynamics)",
    params=(
        ParamSpec("gap", 4, "pulses between a recovery and the next "
                  "crash"),
    ),
    tags=("churn", "cps"),
)
def _rolling_crashes(params, gap: int = 4):
    events = []
    pulse = 2
    for node in (0, 1):
        events.append(FaultEvent("crash", node, at_pulse=pulse))
        events.append(FaultEvent("recover", node, at_pulse=pulse + 2))
        pulse += 2 + gap
    return FaultSchedule(
        events=tuple(events),
        corruptions=_budget(params, 1),
        description="two staggered crash/recover cycles",
    )


@register_scenario(
    "churn",
    "crash-recover-wave",
    description="Two nodes crash in a staggered wave, then both recover",
    paper_ref="the full budget spent on simultaneous benign faults, "
    "then returned — the rejoiners resync via the listen-then-join rule",
    params=(
        ParamSpec("at_pulse", 2, "pulse index of the first crash"),
    ),
    tags=("churn", "cps"),
)
def _crash_recover_wave(params, at_pulse: int = 2):
    return FaultSchedule(
        events=(
            FaultEvent("crash", 0, at_pulse=at_pulse),
            FaultEvent("crash", 1, at_pulse=at_pulse + 1),
            FaultEvent("recover", 0, at_pulse=at_pulse + 3),
            FaultEvent("recover", 1, at_pulse=at_pulse + 5),
        ),
        corruptions=_budget(params, 2),
        description="overlapping crash pair with staggered recovery",
    )


@register_scenario(
    "churn",
    "late-join-cohort",
    description="Two nodes are dormant at time 0 and join the running "
    "system one after the other",
    paper_ref="CPS has no join step; the resync wrapper supplies the "
    "minimal one (listen a round, median-vote the phase and round)",
    params=(
        ParamSpec("at_pulse", 2, "pulse index of the first join"),
    ),
    tags=("churn", "cps"),
)
def _late_join_cohort(params, at_pulse: int = 2):
    return FaultSchedule(
        events=(
            FaultEvent("join", 0, at_pulse=at_pulse),
            FaultEvent("join", 1, at_pulse=at_pulse + 2),
        ),
        corruptions=_budget(params, 2),
        description="two-node late-join cohort",
    )


@register_scenario(
    "churn",
    "flapping-node",
    description="One node crashes and recovers repeatedly (flapping "
    "hardware)",
    paper_ref="every recovery restarts the Lemma 16 contraction from "
    "the listen-then-join estimate",
    params=(
        ParamSpec("cycles", 2, "number of crash/recover cycles"),
        ParamSpec("node", 0, "id of the flapping node"),
    ),
    tags=("churn", "cps"),
)
def _flapping_node(params, cycles: int = 2, node: int = 0):
    if cycles < 1:
        raise MalformedScheduleError(
            f"flapping-node needs cycles >= 1, got {cycles}"
        )
    events = []
    pulse = 2
    for _ in range(cycles):
        events.append(FaultEvent("crash", node, at_pulse=pulse))
        events.append(FaultEvent("recover", node, at_pulse=pulse + 2))
        pulse += 5
    return FaultSchedule(
        events=tuple(events),
        corruptions=_budget(params, 1),
        description=f"{cycles} crash/recover cycles of one node",
    )


@register_scenario(
    "churn",
    "adversary-handoff",
    description="The adversary releases one corrupted identity (it "
    "rejoins honestly) and corrupts a fresh honest node instead",
    paper_ref="mobile-adversary corner: the corrupted *set* moves while "
    "its size stays within f at every instant",
    params=(
        ParamSpec("at_pulse", 3, "pulse index of the handoff"),
    ),
    tags=("churn", "cps"),
)
def _adversary_handoff(params, at_pulse: int = 3):
    if params.f < 1:
        raise MalformedScheduleError(
            "adversary-handoff needs f >= 1 (someone to release)"
        )
    released = params.n - 1  # the top id, corrupted from time 0
    return FaultSchedule(
        events=(
            # Release first, corrupt second: the budget never exceeds f.
            FaultEvent("restore", released, at_pulse=at_pulse),
            FaultEvent("corrupt", 0, at_pulse=at_pulse),
        ),
        corruptions=_budget(params, 0),
        description="corrupted set moves by one identity",
    )
