"""Topology catalog: physical networks for the Appendix A translation.

Factories follow the ``topology`` convention of
:mod:`repro.scenarios.registry`: ``factory(n, **overrides)`` returns a
``networkx.Graph`` on nodes ``0..n-1``.  Consumers (the ``cps-stress``
builder, :mod:`examples.general_network`) feed the graph through
:func:`~repro.core.topology.simulate_full_connectivity` to obtain the
effective ``(d_eff, u_eff)`` of the virtual clique and derive CPS
parameters from those.

The tolerable fault count of a topology entry is bounded by its node
connectivity: with signatures, ``f <= connectivity - 1`` (the paper's
"(f+1)-connectivity is trivially necessary and sufficient").
"""

from __future__ import annotations

import networkx as nx

from repro.core.topology import circulant, random_regular, small_world
from repro.scenarios.registry import ParamSpec, register_scenario


@register_scenario(
    "topology",
    "complete",
    description="The paper's base model: every pair of nodes directly "
    "linked",
    paper_ref="full connectivity — d_eff = d, u_eff = u, f = ceil(n/2)-1",
    tags=("dense",),
)
def _complete(n: int):
    return nx.complete_graph(n)


@register_scenario(
    "topology",
    "circulant",
    description="Ring with chord jumps — the canonical balanced sparse "
    "topology",
    paper_ref="Appendix A: 2|jumps|-regular with matching connectivity; "
    "balanced path lengths keep u_eff small",
    params=(
        ParamSpec("jumps", (1, 2), "chord offsets around the ring"),
    ),
    tags=("sparse",),
)
def _circulant(n: int, jumps=(1, 2)):
    return circulant(n, jumps)


@register_scenario(
    "topology",
    "random-regular",
    description="Connected random degree-regular graph — a typical "
    "balanced sparse network",
    paper_ref="degree-connected a.a.s., so f <= degree-1 with "
    "signatures at degree links per node",
    params=(
        ParamSpec("degree", 4, "links per node (n * degree must be even)"),
        ParamSpec("seed", 0, "sampling seed (deterministic retries)"),
    ),
    tags=("sparse", "new"),
)
def _random_regular(n: int, degree: int = 4, seed: int = 0):
    return random_regular(n, degree=degree, seed=seed)


@register_scenario(
    "topology",
    "small-world",
    description="Watts–Strogatz ring with rewired shortcuts — short "
    "paths but unbalanced lengths",
    paper_ref="the regime of the paper's closing warning: unbalanced "
    "paths inflate u_eff unless relays pad",
    params=(
        ParamSpec("k", 4, "nearest neighbours in the base ring"),
        ParamSpec("p", 0.25, "rewiring probability"),
        ParamSpec("seed", 0, "sampling seed"),
    ),
    tags=("sparse", "new"),
)
def _small_world(n: int, k: int = 4, p: float = 0.25, seed: int = 0):
    return small_world(n, k=k, p=p, seed=seed)
