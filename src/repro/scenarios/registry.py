"""The scenario registry: pluggable behaviours under stable string keys.

The campaign engine references everything by plain data — builder names,
case dicts — so that trial plans can be hashed, cached, and shipped to
pool workers.  The registry extends that principle to the *scenario*
axis: adversary behaviours, delay policies, topologies, and clock-drift
profiles register here under ``(kind, key)`` with metadata (one-line
description, paper reference, parameter schema), and campaign cases name
them by key instead of constructing objects.

Kinds and factory conventions
-----------------------------

Every kind fixes the positional context its factories receive, so a key
can be resolved uniformly from a case dict:

``adversary``
    ``factory(params, **overrides) -> ByzantineBehavior`` where
    ``params`` is the run's :class:`~repro.core.params.ProtocolParameters`
    (protocol-agnostic behaviours ignore it; it may be ``None``).
``delay``
    ``factory(n, **overrides) -> DelayPolicy`` where ``n`` is the system
    size (group-based policies derive their default groups from it).
``topology``
    ``factory(n, **overrides) -> networkx.Graph`` — the physical network
    the Appendix A translation turns into a virtual clique.
``drift``
    ``factory(params, seed, **overrides) -> list[HardwareClock]`` — one
    clock per node, honouring ``H_v(0) in [0, S]`` and rates in
    ``[1, theta]``.
``churn``
    ``factory(params, **overrides) -> FaultSchedule`` — the membership
    dynamics of a run (crashes, recoveries, late joins, Byzantine
    flips), sized from ``params.n`` / ``params.f`` so one profile
    composes with any deployment.
``fuzz``
    ``factory(params, **overrides) -> dict`` — a promoted fuzz
    fixture's replay payload (case, pulses, seed, expectation); the
    positional context is ignored (fixtures are self-contained).
    Entries of this kind are only registered by explicit promotion
    (:func:`repro.fuzz.corpus.register_fixture`), never at import
    time, so catalogs and conformance baselines stay stable.

Keyword ``overrides`` correspond to the entry's declared
:class:`ParamSpec` list; unknown keywords raise ``TypeError`` from the
factory itself, so schema drift is caught at call time.

Lookups of unknown keys raise :class:`UnknownScenarioError` carrying
close-match suggestions — campaign specs validate their scenario axes at
plan time (see :meth:`~repro.campaigns.spec.CampaignSpec.trials_for`),
so a typo fails before any trial runs.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: The scenario kinds the registry accepts, in display order.
KINDS: Tuple[str, ...] = (
    "adversary",
    "delay",
    "topology",
    "drift",
    "churn",
    "fuzz",
)


class UnknownScenarioError(KeyError):
    """Raised for lookups of unregistered ``(kind, key)`` pairs.

    The message lists registered keys of the kind and, when the unknown
    key is a near-miss, a "did you mean" suggestion.
    """


@dataclass(frozen=True)
class ParamSpec:
    """One tunable parameter of a scenario entry.

    ``default`` documents the value the factory uses when a case omits
    the parameter (factories own the actual defaulting; the spec is
    metadata for the CLI and the generated docs).
    """

    name: str
    default: Any = None
    doc: str = ""

    def render(self) -> str:
        """``name=default`` form used by ``repro scenarios show``."""
        return f"{self.name}={self.default!r}"


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: factory plus catalog metadata."""

    kind: str
    key: str
    factory: Callable[..., Any]
    description: str
    paper_ref: str = ""
    params: Tuple[ParamSpec, ...] = ()
    tags: frozenset = frozenset()

    @property
    def qualified(self) -> str:
        """The unambiguous ``kind:key`` name."""
        return f"{self.kind}:{self.key}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (used by docs generation)."""
        return {
            "kind": self.kind,
            "key": self.key,
            "description": self.description,
            "paper_ref": self.paper_ref,
            "params": {spec.name: spec.default for spec in self.params},
            "tags": sorted(self.tags),
        }


class ScenarioRegistry:
    """A catalog of :class:`ScenarioEntry` keyed by ``(kind, key)``.

    Registration order is preserved per kind (dict semantics), which is
    what keeps campaign grids — and therefore experiment tables — stable
    when entries are ported from hand-wired dicts.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], ScenarioEntry] = {}

    # ------------------------------------------------------------------
    # Registration

    def register(
        self,
        kind: str,
        key: str,
        *,
        description: str,
        paper_ref: str = "",
        params: Sequence[ParamSpec] = (),
        tags: Iterable[str] = (),
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``factory`` under ``(kind, key)``.

        Re-registering an existing key raises — scenario keys are part
        of the cache identity of stored campaign results, so silently
        replacing one would corrupt replay semantics.
        """
        if kind not in KINDS:
            raise ValueError(
                f"unknown scenario kind {kind!r}; kinds: {KINDS}"
            )
        if (kind, key) in self._entries:
            raise ValueError(
                f"scenario {kind}:{key} is already registered"
            )

        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            self._entries[(kind, key)] = ScenarioEntry(
                kind=kind,
                key=key,
                factory=factory,
                description=description,
                paper_ref=paper_ref,
                params=tuple(params),
                tags=frozenset(tags),
            )
            return factory

        return decorate

    # ------------------------------------------------------------------
    # Lookup

    def get(self, kind: str, key: str) -> ScenarioEntry:
        """The entry for ``(kind, key)``, or :class:`UnknownScenarioError`."""
        try:
            return self._entries[(kind, key)]
        except KeyError:
            pass
        known = self.keys(kind)
        hint = ""
        close = difflib.get_close_matches(key, known, n=1)
        if close:
            hint = f" — did you mean {close[0]!r}?"
        raise UnknownScenarioError(
            f"unknown {kind} scenario {key!r}{hint} "
            f"(registered: {known})"
        )

    def create(self, kind: str, key: str, *context: Any, **overrides: Any):
        """Instantiate ``(kind, key)`` with its kind's positional context."""
        return self.get(kind, key).factory(*context, **overrides)

    def has(self, kind: str, key: str) -> bool:
        return (kind, key) in self._entries

    def keys(self, kind: Optional[str] = None) -> List[str]:
        """Registered keys of ``kind`` (or every kind), in catalog order."""
        return [
            entry_key
            for (entry_kind, entry_key) in self._entries
            if kind is None or entry_kind == kind
        ]

    def entries(self, kind: Optional[str] = None) -> List[ScenarioEntry]:
        """Entries in display order: kind (catalog order), then key."""
        selected = [
            entry
            for entry in self._entries.values()
            if kind is None or entry.kind == kind
        ]
        return sorted(
            selected, key=lambda entry: (KINDS.index(entry.kind), entry.key)
        )

    def find(self, key: str) -> List[ScenarioEntry]:
        """Every entry registered under ``key``, across kinds.

        ``key`` may be qualified as ``kind:key`` to disambiguate.
        """
        if ":" in key:
            kind, _, bare = key.partition(":")
            if kind in KINDS and self.has(kind, bare):
                return [self.get(kind, bare)]
            return []
        return [
            entry for (_, entry_key), entry in self._entries.items()
            if entry_key == key
        ]

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide registry every catalog module registers into.
REGISTRY = ScenarioRegistry()

register_scenario = REGISTRY.register
