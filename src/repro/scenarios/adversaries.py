"""Adversary catalog: Byzantine behaviours under registry keys.

Factories follow the ``adversary`` convention of
:mod:`repro.scenarios.registry`: ``factory(params, **overrides)`` where
``params`` is the run's :class:`~repro.core.params.ProtocolParameters`
(``None`` for protocol-agnostic behaviours that ignore it).

Entries tagged ``cps`` drive the pulse-synchronization simulations;
entries tagged ``apa`` are round-model adversaries for the approximate
agreement experiments (E1) and ignore ``params`` entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.core.attacks import (
    CpsCoordinatedOffsetAttack,
    CpsEarlyExtremeAttack,
    CpsEquivocatingSubsetAttack,
    CpsForgingImpersonatorAttack,
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    timing_split_group,
)
from repro.scenarios.registry import ParamSpec, register_scenario
from repro.sim.adversary import ReplayAdversary, SilentAdversary
from repro.sync.approx_agreement import (
    ApaEquivocatingAdversary,
    ApaExtremeAdversary,
    ApaSplitAdversary,
)


@register_scenario(
    "adversary",
    "silent",
    description="Faulty nodes crash at time 0 and never send",
    paper_ref="maximizes ⊥ outputs (b = f); exercises the f-b discard "
    "rule (ablation A2)",
    tags=("cps", "generic"),
)
def _silent(params=None):
    return SilentAdversary()


@register_scenario(
    "adversary",
    "replay",
    description="Re-sends every learned honest signature to random "
    "recipients at adversarial delays",
    paper_ref="fuzz-style stressor; cannot forge (knowledge checker), "
    "only replay",
    params=(
        ParamSpec("seed", 0, "RNG seed for target/delay choices"),
        ParamSpec("copies", 1, "replayed copies per observed delivery"),
    ),
    tags=("cps", "generic"),
)
def _replay(params=None, seed: int = 0, copies: int = 1):
    return ReplayAdversary(seed=seed, copies=copies)


@register_scenario(
    "adversary",
    "mimic-split",
    description="Undetected faulty dealers skew their apparent pulse "
    "time differently for the two receiver groups",
    paper_ref="exploits the full slack Lemma 11 leaves an accepted "
    "dealer",
    params=(
        ParamSpec(
            "spread_fraction", 0.9,
            "fraction of the tolerated slack between the groups",
        ),
        ParamSpec(
            "stagger", 0.0,
            "extra real-time gap before the slow copies (ablation A1)",
        ),
    ),
    tags=("cps",),
)
def _mimic_split(params, spread_fraction: float = 0.9, stagger: float = 0.0):
    return CpsMimicDealerAttack(
        params,
        timing_split_group(params.n),
        spread_fraction=spread_fraction,
        stagger=stagger,
    )


@register_scenario(
    "adversary",
    "equivocating-subset",
    description="Faulty dealers address only half the honest nodes, "
    "maximizing ⊥ asymmetry",
    paper_ref="the scenario Lemmas 7/8 exist for (Figure 2 timeout/echo "
    "rules); with lateness > 0 the subset also sees a late extreme "
    "only the f-b discard absorbs",
    params=(
        ParamSpec(
            "lateness", 0.0,
            "extra real-time delay of the subset's copies",
        ),
    ),
    tags=("cps",),
)
def _equivocating_subset(params, lateness: float = 0.0):
    return CpsEquivocatingSubsetAttack(params, lateness=lateness)


@register_scenario(
    "adversary",
    "rushing-echo",
    description="Instantly re-echoes honest signatures over fast faulty "
    "links to force honest-dealer rejections",
    paper_ref="Section 1 warning / Theorem 5; harmful only when "
    "u_tilde > u (E8)",
    params=(
        ParamSpec("victims", None, "receiver ids to rush (None = all)"),
    ),
    tags=("cps",),
)
def _rushing_echo(params=None, victims: Optional[tuple] = None):
    return CpsRushingEchoAttack(victims=victims)


@register_scenario(
    "adversary",
    "coordinated-offset",
    description="All faulty dealers present one coordinated extreme "
    "apparent offset, optionally flipping direction each round",
    paper_ref="maximal coherent bias against the ⊥-aware midpoint "
    "(Figure 3); oscillating variant stresses Lemma 16",
    params=(
        ParamSpec(
            "offset_fraction", 1.0,
            "how far into the admissible window the offset sits",
        ),
        ParamSpec(
            "alternate", True, "flip the pushed direction every round"
        ),
    ),
    tags=("cps", "new"),
)
def _coordinated_offset(
    params, offset_fraction: float = 1.0, alternate: bool = True
):
    return CpsCoordinatedOffsetAttack(
        params, offset_fraction=offset_fraction, alternate=alternate
    )


@register_scenario(
    "adversary",
    "early-extreme",
    description="Predictively timed broadcasts arriving just after "
    "each pulse: consistent, accepted, extreme-negative estimates",
    paper_ref="the f coordinated extremes the ⊥-aware f-b discard of "
    "Figure 3 exists to absorb — the apa=off ablation's breaking case",
    params=(
        ParamSpec(
            "margin", None,
            "real-time arrival margin after the predicted first pulse "
            "(None = 2S)",
        ),
    ),
    tags=("cps", "new"),
)
def _early_extreme(params, margin: Optional[float] = None):
    return CpsEarlyExtremeAttack(params, margin=margin)


@register_scenario(
    "adversary",
    "forging-impersonator",
    description="Signs <r> with its own key but claims honest dealers "
    "as senders; harmless under real verification, fatal without it",
    paper_ref="Theorem 5's unforgeability assumption — the exact "
    "attack the signatures=off ablation re-enables",
    params=(
        ParamSpec(
            "rounds", None,
            "forge only the first this-many rounds (None = every "
            "round)",
        ),
    ),
    tags=("cps", "new"),
)
def _forging_impersonator(params, rounds: Optional[int] = None):
    return CpsForgingImpersonatorAttack(params, rounds=rounds)


# ----------------------------------------------------------------------
# Round-model adversaries for approximate agreement (E1)
# ----------------------------------------------------------------------

_APA_RANGE = (
    ParamSpec("low", -1000.0, "most extreme low value sent"),
    ParamSpec("high", 1000.0, "most extreme high value sent"),
)


@register_scenario(
    "adversary",
    "extreme-values",
    description="APA: faulty nodes send consistent extreme values to "
    "everyone",
    paper_ref="Theorem 9 resilience — discarded by the f-b trim",
    params=_APA_RANGE,
    tags=("apa",),
)
def _apa_extreme(params=None, low: float = -1000.0, high: float = 1000.0):
    return ApaExtremeAdversary(low, high)


@register_scenario(
    "adversary",
    "split-bot",
    description="APA: faulty nodes send extremes to one half and "
    "nothing to the other, producing asymmetric ⊥ patterns",
    paper_ref="the b-dependent discard rule's worst case (Lemmas 7/8)",
    params=_APA_RANGE,
    tags=("apa",),
)
def _apa_split(params=None, low: float = -1000.0, high: float = 1000.0):
    return ApaSplitAdversary(low, high)


@register_scenario(
    "adversary",
    "equivocating",
    description="APA: faulty nodes send different extremes to "
    "different honest nodes",
    paper_ref="full equivocation — what signatures make detectable in "
    "the broadcast layer",
    params=_APA_RANGE,
    tags=("apa",),
)
def _apa_equivocating(
    params=None, low: float = -1000.0, high: float = 1000.0
):
    return ApaEquivocatingAdversary(low, high)
