"""Delay-policy catalog: the adversary's delay control under registry keys.

Factories follow the ``delay`` convention of
:mod:`repro.scenarios.registry`: ``factory(n, **overrides)`` where ``n``
is the system size — group-based policies default their groups to the
canonical even-id split (:func:`~repro.core.attacks.timing_split_group`)
so a bare key is always runnable.

Every policy returns delays inside the model bounds ``[d - u, d]``
(``[d - u_tilde, d]`` on faulty links); the scheduler validates each
returned delay and raises :class:`~repro.sim.errors.ModelViolation`
otherwise.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.attacks import FastToFaultyDelayPolicy, timing_split_group
from repro.scenarios.registry import ParamSpec, register_scenario
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    ConstantFractionDelayPolicy,
    EclipseDelayPolicy,
    FlickeringPartitionDelayPolicy,
    MaximumDelayPolicy,
    MinimumDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)


def _group(n: int, group: Optional[Sequence[int]]) -> Sequence[int]:
    return timing_split_group(n) if group is None else group


@register_scenario(
    "delay",
    "maximum",
    description="Every message takes exactly the delay bound d",
    paper_ref="always admissible; the synchronous-looking benign case",
    tags=("benign",),
)
def _maximum(n=None):
    return MaximumDelayPolicy()


@register_scenario(
    "delay",
    "minimum",
    description="Every message takes the minimum admissible delay for "
    "its link",
    paper_ref="d - u on honest links, d - u_tilde on faulty ones",
    tags=("benign",),
)
def _minimum(n=None):
    return MinimumDelayPolicy()


@register_scenario(
    "delay",
    "constant-fraction",
    description="Every message takes d - fraction * uncertainty",
    paper_ref="interpolates between the maximum (0) and minimum (1) "
    "policies",
    params=(
        ParamSpec("fraction", 0.5, "position inside the delay window"),
    ),
    tags=("benign",),
)
def _constant_fraction(n=None, fraction: float = 0.5):
    return ConstantFractionDelayPolicy(fraction)


@register_scenario(
    "delay",
    "random",
    description="Delays drawn uniformly from the admissible interval, "
    "per message",
    paper_ref="benign jitter — the floor measurements of E10 use this",
    params=(ParamSpec("seed", 0, "RNG seed for the delay draws"),),
    tags=("benign",),
)
def _random(n=None, seed: int = 0):
    return RandomDelayPolicy(seed=seed)


@register_scenario(
    "delay",
    "biased-partition",
    description="Fast within each group, slow across groups — pulls "
    "two halves apart",
    paper_ref="classic worst case against averaging synchronizers; "
    "sustains skew ~ uncertainty",
    params=(
        ParamSpec("group", None, "ids of group A (None = even half)"),
    ),
    tags=("adversarial",),
)
def _biased_partition(n, group: Optional[Sequence[int]] = None):
    return BiasedPartitionDelayPolicy(_group(n, group))


@register_scenario(
    "delay",
    "skewing",
    description="Group A's messages maximally slow, group B's maximally "
    "fast — drags corrections in opposite directions",
    paper_ref="the timing-split attack delay of E4/E5",
    params=(
        ParamSpec("slow", None, "ids delivered slowly (None = even half)"),
    ),
    tags=("adversarial",),
)
def _skewing(n, slow: Optional[Sequence[int]] = None):
    return SkewingDelayPolicy(_group(n, slow))


@register_scenario(
    "delay",
    "fast-to-faulty",
    description="Honest-to-honest traffic maximally slow, anything "
    "touching a faulty node minimally delayed",
    paper_ref="partners the rushing-echo attack (E8 / Theorem 5 regime)",
    tags=("adversarial",),
)
def _fast_to_faulty(n=None):
    return FastToFaultyDelayPolicy()


@register_scenario(
    "delay",
    "eclipse",
    description="Messages to or from a victim set maximally slow, all "
    "other traffic maximally fast",
    paper_ref="delay-model eclipse: victims see the network as stale "
    "as the model permits",
    params=(
        ParamSpec("victims", None, "starved ids (None = node 0)"),
    ),
    tags=("adversarial", "new"),
)
def _eclipse(n, victims: Optional[Sequence[int]] = None):
    return EclipseDelayPolicy((0,) if victims is None else victims)


@register_scenario(
    "delay",
    "flicker-partition",
    description="Partition whose fast/slow orientation flips every "
    "period — a time-varying adversary",
    paper_ref="probes correction-loop stability rather than the static "
    "worst case",
    params=(
        ParamSpec("group", None, "ids of group A (None = even half)"),
        ParamSpec("period", 10.0, "real-time length of each phase"),
    ),
    tags=("adversarial", "new"),
)
def _flicker_partition(
    n, group: Optional[Sequence[int]] = None, period: float = 10.0
):
    return FlickeringPartitionDelayPolicy(_group(n, group), period)
