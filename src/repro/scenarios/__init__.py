"""Scenario registry: adversaries, delay policies, topologies, drift.

Every behaviour a campaign can throw at a protocol — *who misbehaves*
(adversary), *how the network delays messages* (delay), *what the
physical network looks like* (topology), and *how hardware clocks
drift* (drift) — registers here under a stable string key with metadata
(description, paper reference, parameter schema).  Campaign cases name
entries by key, which is what lets ``ScenarioSpec`` grids, the result
store, the ``repro scenarios`` CLI, and the generated experiment docs
all share one catalog:

>>> from repro import scenarios
>>> [e.key for e in scenarios.entries("topology")]
['circulant', 'complete', 'random-regular', 'small-world']
>>> policy = scenarios.create("delay", "eclipse", 6, victims=(0, 1))

Importing this package imports the catalog modules, so the registry is
fully populated as a side effect — the same pattern the campaign
catalog uses.  Register your own entries with
:func:`register_scenario`; unknown keys raise
:class:`UnknownScenarioError` (with a did-you-mean hint) at campaign
*plan* time, before any trial runs.
"""

from __future__ import annotations

# Importing the catalog modules populates the process-wide registry.
from repro.scenarios import (  # noqa: F401
    adversaries,
    churn,
    delays,
    drift,
    topologies,
)
from repro.scenarios.registry import (
    KINDS,
    REGISTRY,
    ParamSpec,
    ScenarioEntry,
    ScenarioRegistry,
    UnknownScenarioError,
    register_scenario,
)

#: Module-level conveniences bound to the process-wide registry.
get = REGISTRY.get
create = REGISTRY.create
has = REGISTRY.has
keys = REGISTRY.keys
entries = REGISTRY.entries
find = REGISTRY.find

__all__ = [
    "KINDS",
    "REGISTRY",
    "ParamSpec",
    "ScenarioEntry",
    "ScenarioRegistry",
    "UnknownScenarioError",
    "create",
    "entries",
    "find",
    "get",
    "has",
    "keys",
    "register_scenario",
]
