"""Churn subsystem: declarative fault schedules and membership dynamics.

The first subsystem that mutates the node set *mid-run*:

``schedule``
    :class:`FaultEvent` / :class:`FaultSchedule` — crash, crash-recover,
    late-join, and Byzantine-flip events at absolute or pulse-relative
    times, validated against the resilience budget (crashed + dormant +
    corrupted nodes never exceed ``f``).
``injector``
    :class:`ChurnController` — the scheduler-facing
    :class:`~repro.sim.runtime.DynamicsHook` that seeds churn events,
    resolves pulse-relative triggers, and applies membership changes.
``resync``
    :class:`ResyncProtocol` — the listen-then-join wrapper recovering
    nodes restart behind (CPS itself has no join step).

Churn *profiles* (named schedules parameterized by the deployment)
register in the scenario registry under kind ``churn``
(:mod:`repro.scenarios.churn`), so any campaign case composes a churn
axis with the existing adversary/delay/topology/drift axes; the
stabilization metrics live in :mod:`repro.analysis.metrics` and the
conformance monitor in :mod:`repro.checks.monitors`.  See
``docs/DYNAMICS.md``.
"""

from repro.dynamics.injector import ChurnController
from repro.dynamics.resync import ResyncProtocol
from repro.dynamics.schedule import (
    ACTIVATION_KINDS,
    DEACTIVATION_KINDS,
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    MalformedScheduleError,
)

__all__ = [
    "ACTIVATION_KINDS",
    "ChurnController",
    "DEACTIVATION_KINDS",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "MalformedScheduleError",
    "ResyncProtocol",
]
