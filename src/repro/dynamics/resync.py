"""Passive-resynchronization wrapper for recovering / late-joining nodes.

Algorithm CPS has no join step: a node restarted cold would pulse at an
arbitrary phase, its TCB windows would never overlap the cohort's, and —
with periods nominally equal across nodes — the offset would persist
forever.  :class:`ResyncProtocol` adds the minimal join rule the model
admits:

1. **Listen** for one full round (slightly more than ``P_max`` plus the
   dealer send offset and the maximum delay), collecting the *direct*
   dealer messages of other nodes.  A dealer ``w`` sends ``<r>_w`` at
   local time ``H_w(p_w) + theta S``, so an arrival at local time ``a``
   implies ``w``'s *next* pulse is near ``a + T - theta S - d`` (up to
   the delay uncertainty ``u``, drift over one round, and ``w``'s own
   midpoint correction — each ``O(S)``).
2. **Vote**: take the median of the per-dealer estimates (each rolled
   forward by whole nominal periods until it clears the listen
   deadline).  At most ``f`` of the senders are Byzantine and honest
   senders form a majority among dealers heard, so the median lands
   inside the honest envelope.  The vote carries the *round number*
   along with the phase: TCB instances are tagged ``<r>_w``, so a
   rejoiner must adopt the cohort's numbering or every message would be
   discarded as a round mismatch.
3. **Hand off** to a fresh inner protocol instance whose first pulse is
   scheduled at the voted local time; from then on the wrapper is a
   transparent proxy and ordinary CPS midpoint corrections contract the
   residual offset per Lemma 16.

The wrapper is engine-agnostic (a :class:`~repro.sim.runtime
.TimedProtocol`), fully deterministic, and never sends before handoff —
a recovering node cannot perturb the cohort while it is still blind.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.messages import TcbMessage
from repro.core.params import ProtocolParameters
from repro.sim.runtime import NodeAPI, TimedProtocol

#: Timer tag of the listen-phase deadline.
LISTEN_TAG = "resync-listen"


class ResyncProtocol(TimedProtocol):
    """Listen-then-join wrapper around a cold protocol instance.

    Parameters
    ----------
    params:
        The deployment's :class:`ProtocolParameters` (timing constants
        of the phase estimate).
    inner_factory:
        Builds the protocol instance to hand off to.  If the instance
        exposes a ``start_local`` attribute (as
        :class:`~repro.core.cps.CpsNode` does) the voted pulse time is
        injected before ``on_start``; otherwise the inner protocol
        starts with its own default phase.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        inner_factory: Callable[[], TimedProtocol],
    ) -> None:
        self.params = params
        self.inner_factory = inner_factory
        self.inner: Optional[TimedProtocol] = None
        #: dealer id -> (next-pulse estimate in local time, its round).
        self._estimates: Dict[int, Tuple[float, int]] = {}
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # Phase arithmetic

    def _listen_window(self) -> float:
        """Local-time budget guaranteeing one dealer message per active
        dealer: a full maximum period plus the send offset and delay."""
        p = self.params
        return p.theta * (p.p_max_bound + p.dealer_send_offset + p.d)

    def _phase_shift(self) -> float:
        """Arrival-to-next-pulse offset: ``T - theta S - d``."""
        p = self.params
        return p.T - p.dealer_send_offset - p.d

    # ------------------------------------------------------------------
    # TimedProtocol interface

    def on_start(self, api: NodeAPI) -> None:
        self._deadline = api.local_time() + self._listen_window()
        # The deadline doubles as an incarnation nonce: a listen timer
        # set by an earlier wrapper (set before a crash that preceded
        # this restart) carries a strictly smaller deadline and is
        # ignored — without it, a node flapping faster than one listen
        # window would hand off early on the stale timer with a
        # truncated estimate set and never re-stabilize.
        api.set_timer(self._deadline, (LISTEN_TAG, self._deadline))

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if self.inner is not None:
            self.inner.on_message(api, sender, payload)
            return
        if (
            isinstance(payload, TcbMessage)
            and sender == payload.dealer
            and payload.is_valid()
        ):
            # Direct dealer message for round r: the sender's next pulse
            # (round r + 1) is one phase shift away.  The freshest round
            # wins per dealer.
            self._estimates[sender] = (
                api.local_time() + self._phase_shift(),
                payload.pulse_round + 1,
            )

    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        if self.inner is not None:
            self.inner.on_timer(api, tag)
            return
        if not (isinstance(tag, tuple) and tag and tag[0] == LISTEN_TAG):
            return  # stale pre-crash timer from an earlier incarnation
        if len(tag) < 2 or tag[1] != self._deadline:
            return  # an earlier incarnation's listen deadline
        self._hand_off(api)

    # ------------------------------------------------------------------
    # Handoff

    def _hand_off(self, api: NodeAPI) -> None:
        now = api.local_time()
        # Clear the dealer-send offset so the inner node's first round
        # has room to schedule its own dealer broadcast.
        margin = self.params.dealer_send_offset
        targets = []
        for estimate, pulse_round in self._estimates.values():
            while estimate <= now + margin:
                estimate += self.params.T
                pulse_round += 1
            targets.append((estimate, pulse_round))
        if targets:
            targets.sort()
            target, target_round = targets[len(targets) // 2]
        else:
            # Nobody audible (cohort down?): start blind one round out.
            target, target_round = now + self.params.T, None
        inner = self.inner_factory()
        if hasattr(inner, "start_local"):
            inner.start_local = target
        if target_round is not None and hasattr(inner, "start_round"):
            inner.start_round = target_round
        self.inner = inner
        inner.on_start(api)

    def describe(self) -> str:
        return "resync-wrapper"
