"""Declarative fault schedules: membership change as plain data.

A :class:`FaultSchedule` describes *when the node set changes* during an
execution — crashes, crash-recoveries, late joins, and Byzantine flips —
without naming a protocol or a simulator.  Schedules are validated up
front (:meth:`FaultSchedule.validate`), hashable into campaign case
keys via :meth:`as_dict`, and executed by the
:class:`~repro.dynamics.injector.ChurnController` through the
scheduler's :class:`~repro.sim.runtime.DynamicsHook`.

Event kinds and the fault budget
--------------------------------

``crash``
    An active honest node stops executing (fail-stop).
``recover``
    A previously crashed node restarts (via the resynchronization
    wrapper of :mod:`repro.dynamics.resync`).
``join``
    A node that was dormant from time 0 starts for the first time.  Any
    node with a ``join`` event is dormant until that event fires.
``corrupt``
    A Byzantine flip: the adversary takes over an active honest node.
``restore``
    The inverse handoff: a Byzantine identity returns to the honest
    side and restarts.

Crashed, dormant, and corrupted nodes all count against the declared
resilience budget ``f`` — a crash *is* a fault in the paper's model, so
a schedule is only admissible if, at every instant, ``crashed + dormant
+ corrupted <= f``.  Validation additionally requires at least one
*stable* node (active and honest throughout): the stabilization metrics
and monitor use the stable cohort as the synchronization reference.

Events trigger either at an absolute real time (``at``) or when the
system-wide pulse progress first reaches a pulse index (``at_pulse``) —
the latter keeps schedules meaningful across parameter regimes whose
periods differ.  Events are applied in declared order when their
triggers coincide, and validation simulates the declared order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sim.errors import ConfigurationError

#: The admissible event kinds, in documentation order.
EVENT_KINDS: Tuple[str, ...] = (
    "crash",
    "recover",
    "join",
    "corrupt",
    "restore",
)

#: Kinds that (re)activate a node — the ones the stabilization monitor
#: derives re-synchronization expectations from.
ACTIVATION_KINDS: FrozenSet[str] = frozenset(
    {"recover", "join", "restore"}
)

#: Kinds that deactivate a node.
DEACTIVATION_KINDS: FrozenSet[str] = frozenset({"crash", "corrupt"})


class MalformedScheduleError(ConfigurationError):
    """A fault schedule is inconsistent with the model or the system.

    Raised by :meth:`FaultSchedule.validate` (and by event construction)
    for out-of-range nodes, impossible state transitions (recovering a
    node that never crashed), or budget violations (more simultaneous
    crashed + dormant + corrupted nodes than the declared ``f``).
    """


@dataclass(frozen=True)
class FaultEvent:
    """One membership change: what happens, to whom, and when.

    Exactly one of ``at`` (absolute real time) and ``at_pulse``
    (fires when any honest node first generates that pulse index) must
    be given.
    """

    kind: str
    node: int
    at: Optional[float] = None
    at_pulse: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise MalformedScheduleError(
                f"unknown fault-event kind {self.kind!r}; "
                f"kinds: {EVENT_KINDS}"
            )
        if (self.at is None) == (self.at_pulse is None):
            raise MalformedScheduleError(
                f"{self.kind} event for node {self.node}: give exactly "
                f"one of at= (real time) or at_pulse= (pulse index)"
            )
        if self.at is not None and self.at < 0:
            raise MalformedScheduleError(
                f"{self.kind} event for node {self.node}: "
                f"at={self.at} is negative"
            )
        if self.at_pulse is not None and self.at_pulse < 1:
            raise MalformedScheduleError(
                f"{self.kind} event for node {self.node}: "
                f"at_pulse={self.at_pulse} must be >= 1"
            )

    def trigger(self) -> str:
        """``"t=12.5"`` or ``"pulse 3"`` — for rendering."""
        if self.at is not None:
            return f"t={self.at:g}"
        return f"pulse {self.at_pulse}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "node": self.node,
            "at": self.at,
            "at_pulse": self.at_pulse,
        }


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered tuple of fault events plus the initial Byzantine set.

    ``corruptions`` is the number of nodes the adversary controls from
    time 0 (the builders corrupt the top ids, matching the static
    scenarios); churn events then spend whatever remains of the ``f``
    budget.
    """

    events: Tuple[FaultEvent, ...] = ()
    corruptions: int = 0
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.corruptions < 0:
            raise MalformedScheduleError(
                f"corruptions={self.corruptions} is negative"
            )

    # ------------------------------------------------------------------
    # Derived sets

    def initially_dormant(self) -> List[int]:
        """Nodes that must start inactive (their first event is a join)."""
        dormant = []
        seen: Set[int] = set()
        for event in self.events:
            if event.node in seen:
                continue
            seen.add(event.node)
            if event.kind == "join":
                dormant.append(event.node)
        return dormant

    def initially_corrupted(self, n: int) -> List[int]:
        """The top-id nodes the adversary controls from time 0."""
        return list(range(n - self.corruptions, n))

    def activations(self) -> List[FaultEvent]:
        """The recover/join/restore events, in declared order."""
        return [e for e in self.events if e.kind in ACTIVATION_KINDS]

    def stable_nodes(self, n: int) -> List[int]:
        """Nodes untouched by the schedule: honest and active throughout.

        These form the synchronization reference for stabilization
        metrics; validation guarantees at least one exists.
        """
        touched = {event.node for event in self.events}
        touched.update(self.initially_corrupted(n))
        return [v for v in range(n) if v not in touched]

    def finally_active(self, n: int) -> List[int]:
        """Honest nodes expected to be executing when the run ends."""
        state = self._initial_state(n)
        for event in self.events:
            state[event.node] = _TRANSITIONS[event.kind][1]
        return [v for v in range(n) if state.get(v) == "active"]

    # ------------------------------------------------------------------
    # Validation

    def _initial_state(self, n: int) -> Dict[int, str]:
        state = {v: "active" for v in range(n)}
        for v in self.initially_corrupted(n):
            state[v] = "corrupted"
        for v in self.initially_dormant():
            state[v] = "dormant"
        return state

    def validate(self, n: int, f: int) -> None:
        """Check the schedule against an ``(n, f)`` system.

        Raises :class:`MalformedScheduleError` on out-of-range nodes,
        impossible transitions (in declared order), budget violations
        (``crashed + dormant + corrupted > f`` at any step), a
        declared order contradicting the trigger order (validation
        simulates the declared order, so the runtime must apply events
        in the same order — pulse triggers and time triggers must each
        be non-decreasing), or an empty stable cohort.
        """
        self._validate_trigger_order()
        if self.corruptions > f:
            raise MalformedScheduleError(
                f"schedule corrupts {self.corruptions} nodes from the "
                f"start but the budget is f={f}"
            )
        for event in self.events:
            if not 0 <= event.node < n:
                raise MalformedScheduleError(
                    f"{event.kind} event names node {event.node}, "
                    f"outside the system 0..{n - 1}"
                )
        corrupted = set(self.initially_corrupted(n))
        dormant = self.initially_dormant()
        for v in dormant:
            if v in corrupted:
                raise MalformedScheduleError(
                    f"node {v} cannot both late-join and start corrupted"
                )
        state = self._initial_state(n)
        down = self.corruptions + len(dormant)
        if down > f:
            raise MalformedScheduleError(
                f"{down} nodes are faulty at time 0 "
                f"({self.corruptions} corrupted + {len(dormant)} "
                f"dormant) but the budget is f={f}"
            )
        for event in self.events:
            expected, target = _TRANSITIONS[event.kind]
            current = state[event.node]
            if current != expected:
                raise MalformedScheduleError(
                    f"cannot {event.kind} node {event.node} at "
                    f"{event.trigger()}: it is {current}, not {expected}"
                )
            state[event.node] = target
            if event.kind in DEACTIVATION_KINDS:
                down += 1
            elif event.kind in ACTIVATION_KINDS:
                down -= 1
            if down > f:
                raise MalformedScheduleError(
                    f"after the {event.kind} of node {event.node} at "
                    f"{event.trigger()}, {down} nodes are down/corrupted "
                    f"— beyond the budget f={f}"
                )
        if not self.stable_nodes(n):
            raise MalformedScheduleError(
                "schedule leaves no stable node: at least one node must "
                "stay honest and active throughout (the stabilization "
                "reference)"
            )

    def _validate_trigger_order(self) -> None:
        """Declared order must be consistent with trigger order.

        The runtime fires events by trigger; validation simulates the
        declared order.  The two agree when the pulse-relative triggers
        and the absolute-time triggers are each non-decreasing along
        the declared list (coinciding triggers keep declared order by
        queue insertion).  Mixed pulse/time interleavings cannot be
        ordered statically; an inconsistent one surfaces at runtime as
        a tabulated ``SimulationError``.
        """
        last_pulse: Optional[int] = None
        last_time: Optional[float] = None
        for event in self.events:
            if event.at_pulse is not None:
                if last_pulse is not None and event.at_pulse < last_pulse:
                    raise MalformedScheduleError(
                        f"declared order contradicts trigger order: the "
                        f"{event.kind} of node {event.node} at "
                        f"{event.trigger()} is listed after an event "
                        f"triggering at pulse {last_pulse}"
                    )
                last_pulse = event.at_pulse
            else:
                if last_time is not None and event.at < last_time:
                    raise MalformedScheduleError(
                        f"declared order contradicts trigger order: the "
                        f"{event.kind} of node {event.node} at "
                        f"{event.trigger()} is listed after an event "
                        f"triggering at t={last_time:g}"
                    )
                last_time = event.at

    # ------------------------------------------------------------------
    # Rendering / identity

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (campaign case hashing, docs, CLI)."""
        return {
            "corruptions": self.corruptions,
            "events": [event.as_dict() for event in self.events],
        }

    def describe(self) -> str:
        """One line per event, for ``repro scenarios show``-style output."""
        lines = [
            f"corruptions at t=0: {self.corruptions}",
        ]
        for event in self.events:
            lines.append(
                f"{event.trigger():>10}  {event.kind} node {event.node}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


#: State machine per kind: (required current state, resulting state).
_TRANSITIONS: Dict[str, Tuple[str, str]] = {
    "crash": ("active", "crashed"),
    "recover": ("crashed", "active"),
    "join": ("dormant", "active"),
    "corrupt": ("active", "corrupted"),
    "restore": ("corrupted", "active"),
}
