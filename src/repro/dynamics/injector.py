"""The churn controller: executes a fault schedule inside a simulation.

:class:`ChurnController` implements the scheduler's
:class:`~repro.sim.runtime.DynamicsHook`.  At install time it validates
the schedule against the simulation's ``(n, f)``, deactivates late
joiners, and seeds absolute-time churn events into the event queue; at
run time it resolves pulse-relative triggers (``at_pulse``) from the
pulse-recording path and applies membership changes through the
scheduler's mutation surface (``deactivate_node`` / ``activate_node`` /
``corrupt_node`` / ``restore_node``).

Every applied change is recorded (``applied``) and announced through
*both* observation channels: the streaming-checks hook (``checks
.on_annotate(..., "churn", ...)``, trace-level independent — this is
what the :class:`~repro.checks.monitors.StabilizationMonitor` consumes)
and the trace (a ``ProtocolRecord`` of kind ``"churn"`` at ``FULL``
level).

Churn events carry :data:`~repro.sim.events.PRIORITY_CHURN`, the lowest
dispatch priority, so a membership change "at t" happens after every
timer, delivery, and adversary wakeup due at ``t`` — crashes never
retroactively swallow same-instant deliveries, which is what keeps
executions with and without a schedule comparable up to the first
event.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.params import ProtocolParameters
from repro.dynamics.resync import ResyncProtocol
from repro.dynamics.schedule import (
    ACTIVATION_KINDS,
    FaultEvent,
    FaultSchedule,
    MalformedScheduleError,
)
from repro.sim.events import PRIORITY_CHURN, ChurnEvent
from repro.sim.runtime import DynamicsHook


class ChurnController(DynamicsHook):
    """Drives one :class:`FaultSchedule` through a simulation.

    Parameters
    ----------
    schedule:
        The validated (or to-be-validated) fault schedule.
    params:
        The deployment's protocol parameters.  When given, recovering
        and joining nodes restart behind a
        :class:`~repro.dynamics.resync.ResyncProtocol` (the listen-
        then-join wrapper); when ``None`` they restart cold.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        params: Optional[ProtocolParameters] = None,
    ) -> None:
        self.schedule = schedule
        self.params = params
        #: ``(time, kind, node)`` for every change actually applied.
        self.applied: List[Tuple[float, str, int]] = []
        self._by_pulse: Dict[int, List[FaultEvent]] = {}
        self._horizon = 0  # highest pulse index already triggered

    # ------------------------------------------------------------------
    # DynamicsHook interface

    def install(self, sim: Any) -> None:
        self.schedule.validate(sim.config.n, sim.f)
        corrupted = set(self.schedule.initially_corrupted(sim.config.n))
        if corrupted != sim.faulty:
            # The builder owns the initial Byzantine set; refuse to run
            # a schedule whose budget accounting assumed a different one.
            raise MalformedScheduleError(
                f"schedule expects the initially corrupted set "
                f"{sorted(corrupted)} but the simulation corrupted "
                f"{sorted(sim.faulty)}"
            )
        for node in self.schedule.initially_dormant():
            sim.deactivate_node(node)
        for event in self.schedule.events:
            if event.at is not None:
                sim.queue.push(event.at, PRIORITY_CHURN, ChurnEvent(event))
            else:
                self._by_pulse.setdefault(event.at_pulse, []).append(event)

    def on_pulse(self, sim: Any, time: float, node: int, index: int) -> None:
        if index <= self._horizon or not self._by_pulse:
            return
        # Global pulse progress advanced: release every pending trigger
        # at or below the new horizon (indices normally advance by one,
        # but a recovering node's catch-up must not re-fire old ones).
        for threshold in sorted(self._by_pulse):
            if threshold > index:
                break
            if threshold <= self._horizon:
                continue
            for event in self._by_pulse.pop(threshold):
                sim.queue.push(time, PRIORITY_CHURN, ChurnEvent(event))
        self._horizon = index

    def apply(self, sim: Any, action: FaultEvent) -> None:
        kind = action.kind
        node = action.node
        if kind == "crash":
            sim.deactivate_node(node)
        elif kind in ("recover", "join"):
            sim.activate_node(node, self._restart_protocol(sim, node))
        elif kind == "corrupt":
            sim.corrupt_node(node)
        elif kind == "restore":
            sim.restore_node(node, self._restart_protocol(sim, node))
        else:  # pragma: no cover - schedule validation rejects these
            raise ValueError(f"unknown churn action {kind!r}")
        self.applied.append((sim.now, kind, node))
        if sim.telemetry is not None:
            # Schedule-level granularity: distinguishes a "recover" from
            # a "join" where the scheduler's dynamics.activate counter
            # cannot.
            sim.telemetry.incr(f"dynamics.applied.{kind}")
        details = {"action": kind, "node": node}
        if sim.checks is not None:
            sim.checks.on_annotate(sim.now, node, "churn", details)
        sim.trace.protocol(
            time=sim.now, node=node, kind="churn", details=details
        )

    # ------------------------------------------------------------------
    # Helpers

    def _restart_protocol(self, sim: Any, node: int) -> Any:
        if self.params is not None:
            return ResyncProtocol(
                self.params, lambda: sim._protocol_factory(node)
            )
        return sim._protocol_factory(node)

    def activations_applied(self) -> List[Tuple[float, str, int]]:
        """The applied recover/join/restore changes, in order."""
        return [
            entry
            for entry in self.applied
            if entry[1] in ACTIVATION_KINDS
        ]
