"""Content-addressed, shard-aware JSONL result store for campaign trials.

One *base* file per (campaign, scale) spec key — ``<spec_key>.jsonl`` —
plus, when independent workers write concurrently, one shard file per
writer under ``<spec_key>/<shard>.jsonl``.  One JSON line per trial
record, appended as trials complete.  Because both the file name
(:meth:`~repro.campaigns.spec.CampaignSpec.spec_key`) and the per-record
``case_key`` are stable hashes of code-relevant parameters, the store
gives four things for free:

* **cache hits** — re-running a completed campaign finds every case key
  and executes zero new trials (pure replay);
* **resume** — an interrupted campaign re-runs only the missing cases
  (each append is a single ``write`` of the full line, so a crash loses
  at most the trial in flight);
* **comparison** — records from different runs of the same spec land in
  the same file and can be diffed or aggregated across runs;
* **sharding** — elastic queue workers (:mod:`repro.campaigns.queue`)
  write disjoint shards; :meth:`ResultStore.load` reads base + shards
  and dedups by case key, so duplicated re-execution after a lease
  reclaim is idempotent (records are deterministic per case key).

Serial executions (``workers=1``, no shard) keep writing the flat base
file, byte-identical to the pre-sharding layout.  ``merge`` folds the
shards back into the base file; ``compact`` drops superseded duplicate
lines within a file.

Corruption policy: a *trailing* line that fails to decode is tolerated
(the torn tail of an interrupted writer); any *interior* undecodable
line raises :class:`CorruptStoreError` naming the file and line, since
silently skipping it would make resume re-run — or worse, trust — a
store that lost data mid-file.

Changing any code-relevant parameter (a case value, the measurement,
the seed) changes the case key and is a cache miss by construction.
The JSON layer uses Python's ``Infinity``/``NaN`` extensions so skew
metrics of dead runs round-trip exactly.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.campaigns.executor import TrialRecord

#: Shard names become file names; keep them portable and unambiguous.
_SHARD_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class CorruptStoreError(RuntimeError):
    """An interior store line failed to decode (mid-file corruption).

    Carries ``path`` and ``line`` (1-based) so operators can inspect
    the damage; ``repro store compact --drop-corrupt`` salvages the
    decodable remainder.
    """

    def __init__(self, path: str, line: int, reason: str) -> None:
        super().__init__(
            f"corrupt result store record at {path}:{line}: {reason} "
            f"(only a torn final line is tolerated; "
            f"'repro store compact --drop-corrupt' salvages the rest)"
        )
        self.path = path
        self.line = line


def dump_json_summary(path: str, payload: Dict) -> str:
    """Canonical side-car serialization: indent 2, sorted keys, LF.

    Shared by :meth:`ResultStore.write_summary` and
    ``repro check matrix --out`` so every persisted verdict artifact is
    byte-stable in exactly the same format — the round-trip stability
    tests depend on both call sites staying identical.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def record_line(record: TrialRecord) -> str:
    """The store's one-line serialization of a record (with newline)."""
    return json.dumps(record.to_json_dict()) + "\n"


class ResultStore:
    """A directory of ``<spec_key>.jsonl`` files plus per-writer shards.

    ``shard`` (constructor or per-``append``) routes writes to
    ``<spec_key>/<shard>.jsonl`` instead of the flat base file — the
    write path of elastic queue workers, which must never interleave
    lines in one file.  Reads always see base + every shard.
    """

    def __init__(self, root: str, shard: Optional[str] = None) -> None:
        # Created lazily on first write so read-only consumers (e.g.
        # ``repro campaign show --store``) have no filesystem effect.
        self.root = str(root)
        if shard is not None:
            _check_shard_name(shard)
        self.shard = shard

    def path_for(self, key: str, shard: Optional[str] = None) -> str:
        if shard is None:
            return os.path.join(self.root, f"{key}.jsonl")
        _check_shard_name(shard)
        return os.path.join(self.root, key, f"{shard}.jsonl")

    def shard_dir(self, key: str) -> str:
        return os.path.join(self.root, key)

    def shards(self, key: str) -> List[str]:
        """Shard names present for ``key`` (sorted; base excluded)."""
        directory = self.shard_dir(key)
        if not os.path.isdir(directory):
            return []
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(directory)
            if name.endswith(".jsonl")
        )

    def append(
        self,
        key: str,
        record: TrialRecord,
        shard: Optional[str] = None,
    ) -> None:
        """Append one record as a single ``write`` (crash-resumable).

        The full line — payload plus newline — goes through one
        ``write()`` call on an ``O_APPEND`` descriptor, so concurrent
        appenders to the same file cannot interleave partial lines and
        a crash can only lose the line in flight, never tear an
        earlier one.
        """
        shard = shard if shard is not None else self.shard
        path = self.path_for(key, shard)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        line = record_line(record)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)

    # ------------------------------------------------------------------
    # Reading

    def _files_for(self, key: str) -> List[str]:
        """Base file first, then shards in sorted order (last wins)."""
        paths = []
        base = self.path_for(key)
        if os.path.exists(base):
            paths.append(base)
        paths.extend(
            self.path_for(key, shard) for shard in self.shards(key)
        )
        return paths

    def iter_records(
        self, key: str, drop_corrupt: bool = False
    ) -> Iterator[TrialRecord]:
        """Every record of ``key``: base file, then each shard.

        Raises :class:`CorruptStoreError` on an undecodable interior
        line (unless ``drop_corrupt``); the torn final line of a file
        is tolerated as the tail of an interrupted writer.
        """
        for path in self._files_for(key):
            for _line_number, record in _iter_file(path, drop_corrupt):
                yield record

    def load(self, key: str) -> Dict[str, TrialRecord]:
        """All records for ``key``, by case key (last write wins).

        Cross-shard duplicates — e.g. a chunk re-run after a stale
        lease reclaim — collapse here; records are deterministic per
        case key, so which copy survives is immaterial.
        """
        records: Dict[str, TrialRecord] = {}
        for record in self.iter_records(key):
            records[record.case_key] = record
        return records

    def count(self, key: str) -> int:
        return len(self.load(key))

    def keys(self) -> List[str]:
        """Every spec key present in the store (flat or sharded)."""
        if not os.path.isdir(self.root):
            return []
        found = set()
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.endswith(".jsonl") and os.path.isfile(path):
                found.add(name[: -len(".jsonl")])
            elif os.path.isdir(path) and any(
                entry.endswith(".jsonl") for entry in os.listdir(path)
            ):
                found.add(name)
        return sorted(found)

    # ------------------------------------------------------------------
    # Maintenance: merge shards into the base file, compact duplicates

    def merge(self, key: str) -> Dict[str, int]:
        """Fold every shard of ``key`` into the base file, deduped.

        Records keep first-seen case-key order with last-write-wins
        content (the same semantics as :meth:`load`), so merging is
        idempotent: re-merging a merged store is byte-identical.  The
        shard directory is removed afterwards.
        """
        shards = self.shards(key)
        merged: Dict[str, TrialRecord] = {}
        total = 0
        for record in self.iter_records(key):
            merged[record.case_key] = record
            total += 1
        self._rewrite(self.path_for(key), merged.values())
        for shard in shards:
            os.remove(self.path_for(key, shard))
        directory = self.shard_dir(key)
        if os.path.isdir(directory) and not os.listdir(directory):
            os.rmdir(directory)
        return {
            "records": len(merged),
            "dropped": total - len(merged),
            "shards": len(shards),
        }

    def compact(
        self, key: str, drop_corrupt: bool = False
    ) -> Dict[str, int]:
        """Rewrite each of ``key``'s files without superseded lines.

        Dedup is per file (cross-file precedence is ``merge``'s job):
        within a file the last line per case key survives, in
        first-seen order.  With ``drop_corrupt``, undecodable interior
        lines are discarded instead of raising — the recovery path for
        a store damaged by pre-sharding interleaved writers.
        """
        kept = 0
        dropped = 0
        for path in self._files_for(key):
            records: Dict[str, TrialRecord] = {}
            total = 0
            for _line_number, record in _iter_file(path, drop_corrupt):
                records[record.case_key] = record
                total += 1
            self._rewrite(path, records.values())
            kept += len(records)
            dropped += total - len(records)
        return {"records": kept, "dropped": dropped}

    def _rewrite(self, path: str, records) -> None:
        """Atomically replace ``path`` with the given records."""
        os.makedirs(os.path.dirname(path), exist_ok=True)
        staging = f"{path}.tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record_line(record))
        os.replace(staging, path)

    # ------------------------------------------------------------------
    # Side-car summaries (e.g. --perf throughput reports)

    def summary_path(self, key: str, kind: str = "perf") -> str:
        return os.path.join(self.root, f"{key}.{kind}.json")

    def write_summary(
        self, key: str, payload: Dict, kind: str = "perf"
    ) -> str:
        """Write a JSON side-car next to the spec's trial records."""
        os.makedirs(self.root, exist_ok=True)
        return dump_json_summary(self.summary_path(key, kind), payload)

    def load_summary(self, key: str, kind: str = "perf") -> Optional[Dict]:
        path = self.summary_path(key, kind)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def clear(self, key: Optional[str] = None) -> None:
        """Drop one spec's records, or every record when ``key`` is None."""
        targets = [key] if key is not None else self.keys()
        for target in targets:
            for shard in self.shards(target):
                os.remove(self.path_for(target, shard))
            directory = self.shard_dir(target)
            if os.path.isdir(directory) and not os.listdir(directory):
                os.rmdir(directory)
            path = self.path_for(target)
            if os.path.exists(path):
                os.remove(path)


def _check_shard_name(shard: str) -> None:
    if not _SHARD_NAME.match(shard):
        raise ValueError(
            f"invalid shard name {shard!r} (want letters, digits, "
            f"'.', '_', '-'; no leading separator)"
        )


def _iter_file(
    path: str, drop_corrupt: bool = False
) -> Iterator[Tuple[int, TrialRecord]]:
    """Yield ``(line_number, record)`` pairs of one JSONL file.

    Only the final line may fail to decode (torn tail of an
    interrupted append); an interior failure raises
    :class:`CorruptStoreError` unless ``drop_corrupt``.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                continue  # torn final line from an interrupted run
            if drop_corrupt:
                continue
            raise CorruptStoreError(path, number, str(exc)) from None
        yield number, TrialRecord.from_json_dict(payload)
