"""Content-addressed JSONL result store for campaign trials.

One file per (campaign, scale) spec key; one JSON line per trial
record, appended as trials complete.  Because both the file name
(:meth:`~repro.campaigns.spec.CampaignSpec.spec_key`) and the per-record
``case_key`` are stable hashes of code-relevant parameters, the store
gives three things for free:

* **cache hits** — re-running a completed campaign finds every case key
  and executes zero new trials (pure replay);
* **resume** — an interrupted campaign re-runs only the missing cases
  (appends are flushed per record, so a crash loses at most the trial
  in flight);
* **comparison** — records from different runs of the same spec land in
  the same file and can be diffed or aggregated across runs.

Changing any code-relevant parameter (a case value, the measurement,
the seed) changes the case key and is a cache miss by construction.
The JSON layer uses Python's ``Infinity``/``NaN`` extensions so skew
metrics of dead runs round-trip exactly.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.campaigns.executor import TrialRecord


def dump_json_summary(path: str, payload: Dict) -> str:
    """Canonical side-car serialization: indent 2, sorted keys, LF.

    Shared by :meth:`ResultStore.write_summary` and
    ``repro check matrix --out`` so every persisted verdict artifact is
    byte-stable in exactly the same format — the round-trip stability
    tests depend on both call sites staying identical.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


class ResultStore:
    """A directory of ``<spec_key>.jsonl`` trial-record files."""

    def __init__(self, root: str) -> None:
        # Created lazily on first write so read-only consumers (e.g.
        # ``repro campaign show --store``) have no filesystem effect.
        self.root = str(root)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.jsonl")

    def append(self, key: str, record: TrialRecord) -> None:
        """Append one record, flushed immediately (crash-resumable)."""
        os.makedirs(self.root, exist_ok=True)
        with open(self.path_for(key), "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_json_dict()) + "\n")

    def iter_records(self, key: str) -> Iterator[TrialRecord]:
        path = self.path_for(key)
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from an interrupted run
                yield TrialRecord.from_json_dict(payload)

    def load(self, key: str) -> Dict[str, TrialRecord]:
        """All records for ``key``, by case key (last write wins)."""
        records: Dict[str, TrialRecord] = {}
        for record in self.iter_records(key):
            records[record.case_key] = record
        return records

    def count(self, key: str) -> int:
        return len(self.load(key))

    def keys(self) -> List[str]:
        """Every spec key present in the store."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(self.root)
            if name.endswith(".jsonl")
        )

    # ------------------------------------------------------------------
    # Side-car summaries (e.g. --perf throughput reports)

    def summary_path(self, key: str, kind: str = "perf") -> str:
        return os.path.join(self.root, f"{key}.{kind}.json")

    def write_summary(
        self, key: str, payload: Dict, kind: str = "perf"
    ) -> str:
        """Write a JSON side-car next to the spec's trial records."""
        os.makedirs(self.root, exist_ok=True)
        return dump_json_summary(self.summary_path(key, kind), payload)

    def load_summary(self, key: str, kind: str = "perf") -> Optional[Dict]:
        path = self.summary_path(key, kind)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def clear(self, key: Optional[str] = None) -> None:
        """Drop one spec's records, or every record when ``key`` is None."""
        targets = [key] if key is not None else self.keys()
        for target in targets:
            path = self.path_for(target)
            if os.path.exists(path):
                os.remove(path)
