"""Campaign engine: declarative sweeps, parallel execution, cached results.

The subsystem splits a sweep into four orthogonal layers:

``spec``
    :class:`ScenarioSpec`/:class:`CampaignSpec` — data-driven grids with
    per-scale tiers, deterministic per-case seeds, content hashes.
``executor``
    :func:`execute_campaign` — serial or process-pool execution with
    chunking, per-trial timeouts, and failure tabulation.
``store``
    :class:`ResultStore` — content-addressed, shard-aware JSONL
    records enabling cache replay, resume, and multi-writer merges.
``queue``
    :class:`WorkQueue`/:func:`run_worker` — elastic execution: N
    independent worker processes claim chunk leases from a shared
    directory and write disjoint store shards.
``adaptive``
    :class:`AdaptivePolicy`/:func:`execute_adaptive_campaign` —
    per-cell replication until a confidence-interval width target.
``aggregate``
    group-by/statistics helpers reducing trial records into
    :class:`~repro.analysis.reporting.Table` rows.

Scenario-typed case values (``adversary``/``delay``/``topology``/
``drift``) name entries of the scenario registry
(:mod:`repro.scenarios`) and are validated at plan time — see
:data:`~repro.campaigns.spec.SCENARIO_CASE_KEYS`.

Named campaigns (the ported experiments E1/E4/E5/E6 plus the
registry-driven STRESS campaign) register here via
:func:`register_campaign`; ``repro campaign run E4 --workers 8`` then
executes the same grid that ``repro run E4`` renders, across all cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.reporting import Table
from repro.campaigns.aggregate import (
    failure_counts,
    group_by,
    records_to_table,
    run_summary_table,
    summary_stats,
    value_of,
)
from repro.campaigns.adaptive import (
    AdaptivePolicy,
    execute_adaptive_campaign,
)
from repro.campaigns.builders import (
    BUILDERS,
    TrialFailure,
    register_builder,
    resolve_builder,
)
from repro.campaigns.executor import (
    CampaignRun,
    ExecutionPolicy,
    TrialRecord,
    execute_campaign,
    map_trials,
    run_trial,
)
from repro.campaigns.spec import (
    SCENARIO_CASE_KEYS,
    CampaignSpec,
    MeasurementSpec,
    ScenarioSpec,
    TrialPlan,
    canonical_json,
    derive_seed,
    scales_of,
    stable_hash,
    validate_scenario_names,
)
from repro.campaigns.queue import (
    QueueError,
    WorkQueue,
    default_worker_id,
    execute_campaign_queued,
    run_worker,
)
from repro.campaigns.store import CorruptStoreError, ResultStore


@dataclass(frozen=True)
class CampaignDefinition:
    """A named campaign: a spec factory plus its table assembler."""

    name: str
    spec: Callable[[], CampaignSpec]
    tabulate: Callable[[CampaignRun], Table]
    description: str = ""


CATALOG: Dict[str, CampaignDefinition] = {}


def register_campaign(definition: CampaignDefinition) -> CampaignDefinition:
    """Add a named campaign to the catalog (last registration wins)."""
    CATALOG[definition.name.upper()] = definition
    return definition


def _ensure_builtin_campaigns() -> None:
    # The experiment ports live in analysis.experiments (which imports
    # this package); import lazily so `repro.campaigns` works standalone.
    import repro.analysis.experiments  # noqa: F401


def available_campaigns() -> List[str]:
    _ensure_builtin_campaigns()
    return sorted(CATALOG)


def campaign_definition(name: str) -> CampaignDefinition:
    _ensure_builtin_campaigns()
    try:
        return CATALOG[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; choose from "
            f"{sorted(CATALOG)}"
        ) from None


__all__ = [
    "BUILDERS",
    "CATALOG",
    "SCENARIO_CASE_KEYS",
    "AdaptivePolicy",
    "CampaignDefinition",
    "CampaignRun",
    "CampaignSpec",
    "CorruptStoreError",
    "ExecutionPolicy",
    "MeasurementSpec",
    "QueueError",
    "ResultStore",
    "ScenarioSpec",
    "TrialFailure",
    "TrialPlan",
    "TrialRecord",
    "WorkQueue",
    "available_campaigns",
    "campaign_definition",
    "canonical_json",
    "default_worker_id",
    "derive_seed",
    "execute_adaptive_campaign",
    "execute_campaign",
    "execute_campaign_queued",
    "failure_counts",
    "group_by",
    "map_trials",
    "records_to_table",
    "register_builder",
    "register_campaign",
    "resolve_builder",
    "run_summary_table",
    "run_trial",
    "run_worker",
    "scales_of",
    "stable_hash",
    "summary_stats",
    "validate_scenario_names",
    "value_of",
]
