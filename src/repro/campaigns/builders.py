"""Trial builders: named functions that run one campaign case.

A builder takes ``(case, measurement, seed)`` and returns a flat dict of
JSON-serializable metrics; the executor wraps it in failure tabulation
(any exception becomes an ``error`` record, mirroring ``TrialOutcome``
semantics) so sweeps never die on a protocol-level error.

Builders are referenced *by name* in specs so that trial plans stay
plain data.  The campaign executor resolves the name in the parent
process and ships the function to pool workers by pickle reference, so
any *module-level* builder works with ``workers > 1`` regardless of the
multiprocessing start method.  Register your own with
:func:`register_builder`, or pass a fully-qualified
``"package.module:function"`` name, which is imported on demand.

The built-in builders carry the measurement logic of experiments E1
(APA convergence), E4 (CPS skew), E5 (resilience range), E6 (baseline
comparison), the registry-driven stress tier (``cps-stress``), and the
sharded property-based fuzz budgets (``fuzz-probe``);
``analysis/experiments.py`` declares the grids and assembles the
tables.

Scenario-typed case keys (``adversary``, ``delay``, ``topology``,
``drift``) are resolved through the scenario registry
(:mod:`repro.scenarios`), so a case names behaviours by stable string
key instead of constructing objects — and a typo fails at plan time
with a did-you-mean hint.
"""

from __future__ import annotations

import importlib
import math
import warnings
from typing import Any, Callable, Dict, List, Tuple

from repro import scenarios
from repro.analysis import metrics, theory
from repro.analysis.runner import TrialOutcome, run_pulse_trial
from repro.baselines.chain_relay import (
    ChainStretchAttack,
    build_chain_simulation,
    derive_chain_parameters,
)
from repro.baselines.lynch_welch import (
    LwTimingAttack,
    build_lw_simulation,
    derive_lw_parameters,
    lw_max_faults,
)
from repro.baselines.srikanth_toueg import (
    StRushAttack,
    build_st_simulation,
    derive_st_parameters,
)
from repro.campaigns.spec import MeasurementSpec
from repro.core.attacks import timing_split_group
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters, max_faults
from repro.sim.clocks import HardwareClock
from repro.sync.approx_agreement import run_apa

TrialBuilder = Callable[[Dict[str, Any], MeasurementSpec, int], Dict[str, Any]]

BUILDERS: Dict[str, TrialBuilder] = {}


class TrialFailure(RuntimeError):
    """Raised by builders for per-trial failures the executor tabulates."""


def register_builder(name: str) -> Callable[[TrialBuilder], TrialBuilder]:
    """Decorator registering a builder under ``name``."""

    def decorate(function: TrialBuilder) -> TrialBuilder:
        BUILDERS[name] = function
        return function

    return decorate


def resolve_builder(name: str) -> TrialBuilder:
    """Look up a registered builder, or import a ``module:function`` one."""
    if name in BUILDERS:
        return BUILDERS[name]
    if ":" in name:
        module_name, _, attribute = name.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attribute)
    raise KeyError(
        f"unknown builder {name!r}; registered: {sorted(BUILDERS)}"
    )


# ----------------------------------------------------------------------
# Shared scenario plumbing
# ----------------------------------------------------------------------


def cps_group_a(n: int) -> List[int]:
    """The even-id half used as "group A" by the timing-split attacks."""
    return timing_split_group(n)


#: Adversary factories for CPS sweeps, keyed by the names used in the
#: E4/E9 tables.  Each takes the derived protocol parameters.  Backed
#: by the scenario registry; the explicit key order preserves the
#: historical table row order.
CPS_ADVERSARIES: Dict[str, Callable[[Any], Any]] = {
    key: (
        lambda params, _key=key: scenarios.create(
            "adversary", _key, params
        )
    )
    for key in ("silent", "mimic-split", "equivocating-subset")
}

#: Round-model adversary factories for the APA sweeps (E1), keyed by
#: the names used in the tables.  Registry-backed like the above.
APA_ADVERSARIES: Dict[str, Callable[[], Any]] = {
    key: (
        lambda _key=key: scenarios.create("adversary", _key, None)
    )
    for key in ("extreme-values", "split-bot", "equivocating")
}


def measured_pulse_trial(
    simulation: Any, measurement: MeasurementSpec
) -> TrialOutcome:
    """Run a pulse trial under the measurement's liveness policy."""
    outcome = run_pulse_trial(
        simulation, measurement.pulses, warmup=measurement.warmup
    )
    if measurement.liveness == "require" and not outcome.live:
        raise TrialFailure(outcome.error or "liveness violated")
    return outcome


def _skew_metrics(outcome: TrialOutcome) -> Tuple[float, float]:
    """(max skew, steady skew), inf when the run died."""
    if outcome.report is None:
        return float("inf"), float("inf")
    return outcome.report.max_skew, outcome.report.steady_skew


def _events_of(outcome: TrialOutcome) -> int:
    """Events the simulator processed (0 when the run died at build time).

    Recorded in every pulse-trial builder's metrics so ``--perf`` campaign
    runs can compute per-case throughput (events / trial duration).
    """
    return outcome.result.events_processed if outcome.result else 0


def case_delay_policy(case: Dict[str, Any], n: int, default: str = "skewing"):
    """Resolve the case's ``delay`` key through the scenario registry."""
    return scenarios.create(
        "delay", case.get("delay", default), n,
        **case.get("delay_params", {})
    )


# ----------------------------------------------------------------------
# E1 — APA convergence (Theorem 9 / Corollary 2)
# ----------------------------------------------------------------------


@register_builder("apa-convergence")
def apa_convergence_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """Iterated APA from a spread of honest inputs under one adversary."""
    n = case["n"]
    initial_range = case.get("initial_range", 64.0)
    target = case.get("target", 1.0)
    iterations = math.ceil(math.log2(initial_range / target))
    f = max_faults(n)
    faulty = list(range(n - f, n))
    adversary = APA_ADVERSARIES[case["adversary"]]()
    honest = [v for v in range(n) if v not in faulty]
    inputs = {
        v: initial_range * index / max(len(honest) - 1, 1)
        for index, v in enumerate(honest)
    }
    low, high = min(inputs.values()), max(inputs.values())
    outcome = run_apa(inputs, n, f, faulty, adversary, iterations=iterations)
    ranges = outcome.ranges()
    halved = all(
        ranges[i + 1] <= ranges[i] / 2.0 + 1e-9
        for i in range(len(ranges) - 1)
    )
    validity = all(
        low - 1e-9 <= value <= high + 1e-9
        for value in outcome.outputs.values()
    )
    return {
        "f": f,
        "iterations": iterations,
        "rounds": 2 * iterations,
        "initial_range": ranges[0],
        "final_range": ranges[-1],
        "halving_bound": theory.apa_halving_bound(ranges[0], iterations),
        "halved": halved,
        "validity": validity,
    }


# ----------------------------------------------------------------------
# E4 — CPS skew vs the Theorem 17 bound
# ----------------------------------------------------------------------


@register_builder("cps-skew")
def cps_skew_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """One CPS system under one adversary, skew measured against S."""
    n, u, theta = case["n"], case["u"], case["theta"]
    params = derive_parameters(theta, case.get("d", 1.0), u, n)
    faulty = list(range(n - params.f, n))
    behavior = CPS_ADVERSARIES[case["adversary"]](params)
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=behavior,
        delay_policy=case_delay_policy(case, n),
        seed=seed,
        clock_style=case.get("clock_style", "extreme"),
        trace=measurement.trace,
    )
    outcome = measured_pulse_trial(simulation, measurement)
    if outcome.report is None:
        return {
            "f": params.f,
            "max_skew": float("nan"),
            "steady_skew": float("nan"),
            "bound_S": params.S,
            "within": False,
            "live": False,
            "events": _events_of(outcome),
        }
    measured = outcome.report.max_skew
    return {
        "f": params.f,
        "max_skew": measured,
        "steady_skew": outcome.report.steady_skew,
        "bound_S": params.S,
        "within": measured <= params.S + 1e-9,
        "live": outcome.live,
        "events": _events_of(outcome),
    }


# ----------------------------------------------------------------------
# E5 — resilience range: CPS vs Lynch-Welch across f
# ----------------------------------------------------------------------


def _extreme_clocks(params: Any, n: int, theta: float) -> List[HardwareClock]:
    return [
        HardwareClock.constant_rate(
            1.0 if v % 2 == 0 else theta,
            offset=0.0 if v % 2 == 0 else params.S,
            theta=theta,
        )
        for v in range(n)
    ]


@register_builder("cps-vs-lw-resilience")
def resilience_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """The same timing attack against one algorithm at one fault count."""
    n, theta, d, u = case["n"], case["theta"], case["d"], case["u"]
    f = case["f"]
    algorithm = case["algorithm"]
    faulty = list(range(n - f, n)) if f else []
    delay_policy = case_delay_policy(case, n)
    if algorithm == "CPS":
        params = derive_parameters(theta, d, u, n, f=max_faults(n))
        behavior = (
            scenarios.create("adversary", "mimic-split", params)
            if f
            else None
        )
        simulation = assemble_cps_simulation(
            params,
            clocks=_extreme_clocks(params, n, theta),
            faulty=faulty,
            behavior=behavior,
            delay_policy=delay_policy,
            seed=seed,
            trace=measurement.trace,
        )
        tolerated = f <= max_faults(n)
    elif algorithm == "Lynch-Welch":
        # The protocol is told the true f so it can discard.
        params = derive_lw_parameters(theta, d, u, n, f=max(f, 1))
        behavior = LwTimingAttack(params, cps_group_a(n)) if f else None
        simulation = build_lw_simulation(
            params,
            clocks=_extreme_clocks(params, n, theta),
            faulty=faulty,
            behavior=behavior,
            delay_policy=delay_policy,
            seed=seed,
            trace=measurement.trace,
        )
        tolerated = f <= lw_max_faults(n)
    else:
        raise TrialFailure(f"unknown algorithm {algorithm!r}")
    outcome = measured_pulse_trial(simulation, measurement)
    measured, steady = _skew_metrics(outcome)
    return {
        "tolerated": tolerated,
        "max_skew": measured,
        "steady_skew": steady,
        "bound": params.S,
        "steady_within": steady <= params.S + 1e-9,
        "events": _events_of(outcome),
    }


# ----------------------------------------------------------------------
# E6 — introduction comparison: CPS vs the three baselines
# ----------------------------------------------------------------------

E6_ALGORITHMS: Tuple[str, ...] = (
    "CPS (this paper)",
    "Lynch-Welch [25]",
    "Signed relay [28]/[21]",
    "Chain relay [2]-style",
)


@register_builder("algorithm-comparison")
def algorithm_comparison_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """Steady skew of one algorithm at one size in the typical regime."""
    n, theta, d, u = case["n"], case["theta"], case["d"], case["u"]
    algorithm = case["algorithm"]
    f = max_faults(n)
    faulty = list(range(n - f, n))
    if algorithm == "CPS (this paper)":
        params = derive_parameters(theta, d, u, n)
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=scenarios.create("adversary", "mimic-split", params),
            delay_policy=case_delay_policy(case, n),
            seed=seed,
            clock_style="extreme",
            trace=measurement.trace,
        )
        theory_skew = params.S
    elif algorithm == "Lynch-Welch [25]":
        # Lynch-Welch runs at its own maximum resilience.
        f = lw_max_faults(n)
        params = derive_lw_parameters(theta, d, u, n, f=f)
        simulation = build_lw_simulation(
            params,
            faulty=list(range(n - f, n)) if f else [],
            behavior=(
                LwTimingAttack(params, cps_group_a(n)) if f else None
            ),
            delay_policy=case_delay_policy(case, n),
            seed=seed,
            trace=measurement.trace,
        )
        theory_skew = params.S
    elif algorithm == "Signed relay [28]/[21]":
        params = derive_st_parameters(theta, d, u, n)
        simulation = build_st_simulation(
            params,
            faulty=faulty,
            behavior=StRushAttack(params),
            seed=seed,
            trace=measurement.trace,
        )
        theory_skew = theory.st_skew_bound(params)
    elif algorithm == "Chain relay [2]-style":
        params = derive_chain_parameters(theta, d, u, n)
        simulation = build_chain_simulation(
            params,
            faulty=faulty,
            behavior=ChainStretchAttack(params),
            seed=seed,
            trace=measurement.trace,
        )
        theory_skew = theory.chain_skew_bound(params)
    else:
        raise TrialFailure(f"unknown algorithm {algorithm!r}")
    outcome = measured_pulse_trial(simulation, measurement)
    steady = (
        outcome.report.steady_skew if outcome.report else float("inf")
    )
    return {
        "f": f,
        "theory_skew": theory_skew,
        "steady_skew": steady,
        "skew_over_d": steady / d,
        "events": _events_of(outcome),
    }


# ----------------------------------------------------------------------
# Registry-driven stress trials: any adversary x delay x drift x topology
# ----------------------------------------------------------------------


def build_registry_simulation(
    case: Dict[str, Any],
    seed: int,
    trace: Any = "pulses",
    checks: Any = None,
) -> Tuple[Any, Any, int, Dict[str, float]]:
    """Deprecated alias of :func:`repro.build.build_simulation`.

    The registry-keyed assembly moved to the unified facade (which also
    selects the execution backend); this shim forwards verbatim on the
    event backend and keeps the historical
    ``(simulation, params, f, effective)`` return shape.
    """
    from repro.build import build_simulation

    warnings.warn(
        "build_registry_simulation is deprecated; use "
        "repro.build.build_simulation(case, backend=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_simulation(
        case, seed=seed, trace=trace, checks=checks
    ).legacy_tuple()


@register_builder("cps-churn")
def cps_churn_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """One CPS run under a fault schedule, judged on re-stabilization.

    The case follows :func:`repro.build.build_simulation` conventions
    plus a mandatory ``churn`` registry key.  Static pulse-index
    metrics do not apply to disrupted nodes, so the row reports the
    *stable cohort's* skew (never-disturbed nodes stay index-aligned)
    and the time-aligned stabilization metrics of
    :mod:`repro.analysis.metrics` for every applied activation.
    """
    from repro.build import build_simulation

    simulation, params, f, effective = build_simulation(
        case,
        backend=measurement.backend,
        seed=seed,
        trace=measurement.trace,
    ).legacy_tuple()
    controller = simulation.dynamics
    if controller is None:
        raise TrialFailure("cps-churn cases must name a 'churn' profile")
    result = simulation.run(max_pulses=measurement.pulses)
    schedule = controller.schedule
    stable = [
        v
        for v in schedule.stable_nodes(params.n)
        if result.pulses[v]
    ]
    cohort = {v: result.pulses[v] for v in stable}
    cohort_skew = (
        metrics.max_skew(cohort, skip=measurement.warmup)
        if stable
        else float("inf")
    )
    reports = [
        metrics.stabilization_report(
            result.pulses, node, time, stable, params.S
        )
        for time, _kind, node in controller.activations_applied()
    ]
    resynced = [report for report in reports if report.resynced]
    envelopes = [
        report.envelope
        for report in resynced
        if report.envelope == report.envelope  # drop NaNs
    ]
    # "resynced" demands every *scheduled* activation was applied and
    # healed — an activation whose trigger never fired (run too short)
    # must not report vacuous success.
    scheduled = len(schedule.activations())
    return {
        "f": f,
        "corruptions": schedule.corruptions,
        "disruptions": len(controller.applied),
        "activations": scheduled,
        "resynced": len(resynced) == len(reports) == scheduled,
        "resync_pulses": max(
            (report.pulses_to_resync for report in resynced), default=0
        ),
        "envelope": max(envelopes, default=0.0),
        "cohort_skew": cohort_skew,
        "bound_S": params.S,
        "cohort_within": cohort_skew <= params.S + 1e-9,
        "events": result.events_processed,
        **effective,
    }


@register_builder("fuzz-probe")
def fuzz_probe_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """One sharded fuzz budget through the property-based search loop.

    The case names a strategy space (``strategy``), an example budget
    (``budget``), and a ``shard`` index whose only job is to vary the
    derived per-trial seed — so ``repro campaign run FUZZ --workers 8``
    fans independent search shards across the process pool.  The row is
    the :class:`~repro.fuzz.driver.FuzzReport` flattened to metrics;
    any counterexample is reported by content hash and is exactly
    reproducible via ``repro fuzz run --strategy S --budget B --seed
    <fuzz_seed>`` (the search loop is deterministic in that triple).

    The import is deferred so pool workers only pay for Hypothesis when
    a fuzz campaign actually runs.
    """
    from repro.fuzz import search

    report = search(
        strategy=case.get("strategy", "valid"),
        budget=int(case.get("budget", 50)),
        seed=seed,
        max_interesting=int(case.get("max_interesting", 1)),
        trace=measurement.trace,
    )
    counterexample = report.counterexample
    return {
        "fuzz_seed": report.seed,
        "executions": report.executions,
        "found": report.found,
        "ok": report.ok,
        "counterexample_id": (
            f"fuzz-{counterexample['fixture_id']}" if counterexample else ""
        ),
        "violations": (
            len(counterexample["summary"].get("violations", []))
            if counterexample
            else 0
        ),
        "interesting": len(report.interesting),
    }


@register_builder("cps-stress")
def cps_stress_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """One CPS run fully assembled from scenario-registry keys.

    See :func:`repro.build.build_simulation` for the case conventions;
    ``measurement.backend`` selects the engine, which is how the
    E9-SCALE campaign reaches n = 10,000 on the vectorized backend.
    """
    from repro.build import build_simulation

    simulation, params, f, effective = build_simulation(
        case,
        backend=measurement.backend,
        seed=seed,
        trace=measurement.trace,
    ).legacy_tuple()
    outcome = measured_pulse_trial(simulation, measurement)
    measured, steady = _skew_metrics(outcome)
    return {
        "f": f,
        "max_skew": measured,
        "steady_skew": steady,
        "bound_S": params.S,
        "within": steady <= params.S + 1e-9,
        "live": outcome.live,
        "events": _events_of(outcome),
        **effective,
    }


@register_builder("cps-ablation")
def cps_ablation_trial(
    case: Dict[str, Any], measurement: MeasurementSpec, seed: int
) -> Dict[str, Any]:
    """One ablation-matrix cell: a challenge run judged by monitors.

    The case follows :func:`repro.build.build_simulation` conventions
    plus the optional ``ablate`` key (components switched off) and an
    optional ``pulses`` override (churn challenges need the longer
    conformance-tier run regardless of the measurement tier).  The row
    is the per-monitor verdict map of the applicable conformance check
    set (:func:`~repro.checks.conformance.cps_check_set`, or the
    stabilization set for churn-keyed cases) plus skew metrics — what
    the importance reporter diffs between baseline and ablated cells.

    Ablated runs are *expected* to violate bounds; a failing monitor is
    a metric here, never a trial error.  A deadlocked run (the
    ``tcb-filter`` ablation stalls every round on a silent dealer) also
    tabulates: the event queue drains, progress fails, and skews over
    the too-few pulses come back as ``inf``.
    """
    from repro.build import build_simulation
    from repro.checks.conformance import (
        cps_check_set,
        churn_check_set,
    )
    from repro.sim.errors import ConfigurationError

    pulses = int(case.get("pulses", measurement.pulses))
    simulation, params, f, effective = build_simulation(
        case,
        backend=measurement.backend,
        seed=seed,
        trace=measurement.trace,
    ).legacy_tuple()
    if case.get("churn") is not None:
        checks = churn_check_set(
            simulation.dynamics.schedule, params
        )
    else:
        checks = cps_check_set(params, simulation.honest, pulses)
    simulation.attach_checks(checks)
    result = simulation.run(max_pulses=pulses)
    verdicts = checks.finish()
    honest_pulses = {
        v: result.pulses[v]
        for v in simulation.honest
        if result.pulses[v]
    }
    try:
        measured = metrics.max_skew(
            honest_pulses, skip=measurement.warmup
        )
    except ConfigurationError:
        measured = float("inf")
    return {
        "f": f,
        "pulses": pulses,
        "live": all(
            len(result.pulses[v]) >= pulses for v in simulation.honest
        ),
        "max_skew": measured,
        "bound_S": params.S,
        "monitors": {v.monitor: v.ok for v in verdicts},
        "violations": {
            v.monitor: len(v.violations) for v in verdicts
        },
        "events": result.events_processed,
        **effective,
    }
