"""Declarative campaign specifications.

A *campaign* is a data-driven description of a sweep: one or more
:class:`ScenarioSpec` entries (a builder name plus a parameter grid) and
per-scale :class:`MeasurementSpec` settings.  The spec layer owns three
jobs that used to be scattered through ``analysis/experiments.py``:

1. **Grids** — each scenario holds per-scale axes (cartesian product)
   and explicit case lists; :meth:`ScenarioSpec.grid_for` materializes
   the concrete case dicts for a scale.  Adding a new tier (say
   ``scale="stress"``) is one ``axes["stress"] = {...}`` entry per
   experiment — unknown scales fall back to ``"*"`` and then ``"full"``,
   matching the historical "anything but quick is full" convention.
2. **Seeds** — every trial gets a deterministic seed.  A case may pin
   its own ``seed``; otherwise one is derived from the campaign seed,
   the builder name, and the *canonical* form of the case, so the seed
   is independent of dict-key ordering and of execution order.
3. **Identity** — :func:`stable_hash` over canonical JSON gives every
   trial a ``case_key`` and every (campaign, scale) a ``spec_key``; the
   result store is content-addressed by these, enabling cache hits and
   resume.  The spec key deliberately excludes the grid itself so that
   *extending* a grid resumes into the same store file and only the
   missing cases run.

Scenario axes (``adversary``, ``delay``, ``topology``, ``drift``) name
entries of the scenario registry (:mod:`repro.scenarios`); their string
values are validated at plan time (:data:`SCENARIO_CASE_KEYS`), so a
grid can reference any registered behaviour and a typo fails before a
single trial runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

CaseDict = Dict[str, Any]

#: Fallback chain for per-scale lookups: exact scale, wildcard, "full".
SCALE_FALLBACK: Tuple[str, ...] = ("*", "full")

#: Case keys whose string values name scenario-registry entries; each
#: maps to the registry kind it resolves against.  ``trials_for``
#: validates these at plan time, so a misspelled scenario key fails
#: with a did-you-mean hint before any trial executes.
SCENARIO_CASE_KEYS: Dict[str, str] = {
    "adversary": "adversary",
    "delay": "delay",
    "topology": "topology",
    "drift": "drift",
    "churn": "churn",
}


def validate_scenario_names(case: Mapping[str, Any]) -> None:
    """Check every scenario-typed case value against the registry.

    Only string values are checked (non-registry experiment axes such
    as E5's ``algorithm`` use their own names and other types pass
    through untouched).  Raises
    :class:`~repro.scenarios.registry.UnknownScenarioError` on the
    first unknown key.
    """
    # Imported lazily: the spec layer is plain data and the registry
    # pulls in protocol modules; only plan-time validation needs it.
    from repro.scenarios import REGISTRY

    for case_key, kind in SCENARIO_CASE_KEYS.items():
        value = case.get(case_key)
        if isinstance(value, str):
            REGISTRY.get(kind, value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if hasattr(value, "as_dict"):
        return value.as_dict()
    raise TypeError(f"not canonicalizable: {value!r}")


def stable_hash(*parts: Any) -> str:
    """Hex digest of the canonical JSON of ``parts`` (stable across runs,
    unlike the salted builtin ``hash``)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_json(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def derive_seed(campaign_seed: int, builder: str, case: Mapping[str, Any]) -> int:
    """Deterministic 32-bit per-case seed.

    Depends only on canonical content — reordering the case dict's keys
    or the execution schedule cannot change it, which is what makes
    serial and parallel campaign runs produce identical records.
    """
    return int(stable_hash(campaign_seed, builder, dict(case))[:8], 16)


def _for_scale(mapping: Mapping[str, Any], scale: str) -> Any:
    for key in (scale, *SCALE_FALLBACK):
        if key in mapping:
            return mapping[key]
    return None


@dataclass(frozen=True)
class MeasurementSpec:
    """How each trial is measured.

    ``liveness`` selects the policy applied by pulse-trial builders:
    ``"tabulate"`` records dead runs as rows (NaN/inf skews, ``live``
    False) while ``"require"`` turns them into error records.

    ``trace`` names the :class:`~repro.sim.trace.TraceLevel` simulations
    run at.  Campaign builders only tabulate pulse-derived metrics, so
    the default is ``"pulses"`` — per-message trace records are never
    allocated, which is a large share of simulator runtime.  Pulse
    outputs (and therefore every table) are identical across levels;
    set ``"full"`` only for a campaign whose builder inspects the trace.

    ``backend`` selects the execution engine
    (:data:`repro.build.BACKENDS`); ``"event"`` is the historical
    default and is omitted from :meth:`as_dict` so that every
    pre-existing case key and spec key hashes unchanged.
    """

    pulses: int = 10
    warmup: int = 2
    liveness: str = "tabulate"  # "tabulate" | "require"
    trace: str = "pulses"  # "none" | "pulses" | "full"
    backend: str = "event"  # see repro.build.BACKENDS

    def __post_init__(self) -> None:
        if self.liveness not in ("tabulate", "require"):
            raise ValueError(
                f"liveness must be 'tabulate' or 'require', "
                f"got {self.liveness!r}"
            )
        if self.trace not in ("none", "pulses", "full"):
            raise ValueError(
                f"trace must be 'none', 'pulses', or 'full', "
                f"got {self.trace!r}"
            )
        from repro.build import resolve_backend

        resolve_backend(self.backend)

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "pulses": self.pulses,
            "warmup": self.warmup,
            "liveness": self.liveness,
            "trace": self.trace,
        }
        # Hash compatibility: the default backend stays implicit so
        # that committed case/spec keys predating the facade are
        # byte-identical.
        if self.backend != "event":
            payload["backend"] = self.backend
        return payload


@dataclass(frozen=True)
class ScenarioSpec:
    """One builder plus its per-scale parameter grid.

    ``base`` holds parameters common to every case.  ``axes`` maps a
    scale to ``{axis_name: values}``; the grid is the cartesian product
    of the axes in insertion order (later axes vary fastest).  ``cases``
    maps a scale to an explicit case list; when both are present the
    grid is ``cases x axes`` (cases outermost), which is how paired
    parameters like ``(n, u, theta)`` systems combine with an adversary
    axis without a full product.
    """

    builder: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Mapping[str, Sequence[Any]]] = field(
        default_factory=dict
    )
    cases: Mapping[str, Sequence[Mapping[str, Any]]] = field(
        default_factory=dict
    )

    def axes_for(self, scale: str) -> Mapping[str, Sequence[Any]]:
        return _for_scale(self.axes, scale) or {}

    def cases_for(self, scale: str) -> Sequence[Mapping[str, Any]]:
        return _for_scale(self.cases, scale) or ({},)

    def grid_for(self, scale: str) -> List[CaseDict]:
        """Materialize the concrete case dicts for ``scale``."""
        axes = self.axes_for(scale)
        names = list(axes)
        grid: List[CaseDict] = []
        for explicit in self.cases_for(scale):
            for combo in itertools.product(*(axes[k] for k in names)):
                case = dict(self.base)
                case.update(explicit)
                case.update(zip(names, combo))
                grid.append(case)
        return grid


@dataclass(frozen=True)
class TrialPlan:
    """One fully-resolved trial: what to run, with what, keyed how."""

    campaign: str
    scenario: int
    builder: str
    case: CaseDict
    measurement: MeasurementSpec
    seed: int
    case_key: str
    index: int


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded collection of scenarios plus measurement tiers."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    measurements: Mapping[str, MeasurementSpec] = field(
        default_factory=lambda: {"*": MeasurementSpec()}
    )
    seed: int = 0
    description: str = ""

    def measurement_for(self, scale: str) -> MeasurementSpec:
        found = _for_scale(self.measurements, scale)
        if found is None:
            raise KeyError(
                f"campaign {self.name!r} has no measurement for scale "
                f"{scale!r} (and no '*'/'full' fallback)"
            )
        return found

    def trials_for(self, scale: str) -> List[TrialPlan]:
        """Flatten every scenario grid into an ordered trial list."""
        measurement = self.measurement_for(scale)
        plans: List[TrialPlan] = []
        for scenario_index, scenario in enumerate(self.scenarios):
            for case in scenario.grid_for(scale):
                validate_scenario_names(case)
                seed = (
                    int(case["seed"])
                    if "seed" in case
                    else derive_seed(self.seed, scenario.builder, case)
                )
                case_key = stable_hash(
                    scenario.builder, case, measurement.as_dict(), seed
                )
                plans.append(
                    TrialPlan(
                        campaign=self.name,
                        scenario=scenario_index,
                        builder=scenario.builder,
                        case=case,
                        measurement=measurement,
                        seed=seed,
                        case_key=case_key,
                        index=len(plans),
                    )
                )
        return plans

    def replicate_plan(
        self, plan: TrialPlan, replicate: int
    ) -> TrialPlan:
        """Derive the ``replicate``-th re-sample of ``plan``'s cell.

        Replicate 0 is the plan itself (the tier's own trial).  Later
        replicates add a ``replicate`` axis to the case — giving each a
        distinct derived seed and case key, so adaptive sampling's
        extra draws are cached, resumed, and deduped like any other
        trial — while leaving the base case untouched, so a fixed-tier
        store stays a cache hit for replicate 0.  A pinned ``seed``
        steps by the replicate index (derivation would collapse every
        replicate onto the pinned value).
        """
        if replicate == 0:
            return plan
        case = dict(plan.case)
        case["replicate"] = replicate
        if "seed" in plan.case:
            seed = int(plan.case["seed"]) + replicate
        else:
            seed = derive_seed(self.seed, plan.builder, case)
        case_key = stable_hash(
            plan.builder, case, plan.measurement.as_dict(), seed
        )
        return TrialPlan(
            campaign=plan.campaign,
            scenario=plan.scenario,
            builder=plan.builder,
            case=case,
            measurement=plan.measurement,
            seed=seed,
            case_key=case_key,
            index=plan.index,
        )

    def spec_key(self, scale: str) -> str:
        """Content address of this (campaign, scale) in a result store.

        Excludes the grid on purpose: extending an axis keeps the same
        store file, so ``--resume`` only runs the missing cases.
        Per-case identity lives in each trial's ``case_key``.
        """
        return stable_hash(
            {
                "name": self.name,
                "scale": scale,
                "seed": self.seed,
                "measurement": self.measurement_for(scale).as_dict(),
                "builders": [s.builder for s in self.scenarios],
            }
        )

    def describe(self, scale: str) -> Dict[str, Any]:
        """Human-oriented summary used by ``repro campaign show``."""
        return {
            "name": self.name,
            "description": self.description,
            "scale": scale,
            "seed": self.seed,
            "measurement": self.measurement_for(scale).as_dict(),
            "spec_key": self.spec_key(scale),
            "scenarios": [
                {
                    "builder": scenario.builder,
                    "cases": len(scenario.grid_for(scale)),
                }
                for scenario in self.scenarios
            ],
            "trials": len(self.trials_for(scale)),
        }


def scales_of(spec: CampaignSpec) -> List[str]:
    """Every scale named anywhere in the spec (wildcards excluded)."""
    names = set(spec.measurements)
    for scenario in spec.scenarios:
        names.update(scenario.axes)
        names.update(scenario.cases)
    return sorted(n for n in names if n != "*")
