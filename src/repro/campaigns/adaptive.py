"""Adaptive sampling: per-cell stopping on a confidence-interval target.

A fixed campaign tier runs every grid cell exactly once; estimating a
cell's headline metric (``max_skew``) with error bars means replicating
each cell N times — and a fixed N pays the worst-case price for every
cell, including the ones whose estimate converged after three draws.
This module implements the alternative from the ROADMAP: *run trials
per cell until a confidence-interval width target is hit*, bounded by a
per-cell trial cap.

Mechanics
---------
Each tier plan is a *cell*.  Replicate ``r`` of a cell is derived by
:meth:`~repro.campaigns.spec.CampaignSpec.replicate_plan` — the case
gains a ``replicate`` axis (its own seed and case key, so replicates
cache and resume like any trial; replicate 0 is the tier's own plan and
stays a cache hit against fixed-tier stores).  Execution proceeds in
rounds: every cell first gets ``min_trials`` replicates, then each
round adds one replicate to every unconverged cell, until the cell's
normal-approximation CI width

    ``width = 2 * z * stdev / sqrt(n)``  (z from ``confidence``)

drops to ``ci_width`` or the cell reaches ``max_trials``.  Cells whose
records error out or produce non-finite metrics (dead runs tabulated
as ``inf`` skew) never converge and run to the cap — a noisy cell is
exactly the one that needs the draws.

Rounds are barriers: which trials run next is decided only from
completed, deterministic records, so the surviving trial set is
identical for ``workers=1`` and ``workers=N`` (the same property the
fixed executor has, lifted to the stopping rule).

The run's :class:`~repro.campaigns.executor.CampaignRun` carries an
``adaptive`` summary (cells, converged/exhausted counts, trials
executed vs. the fixed ``cells x max_trials`` design, per-cell stats)
that feeds ``repro campaign run --adaptive`` output and the telemetry
sidecar.  See ``docs/SCALING.md``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaigns.executor import (
    CampaignRun,
    ExecutionPolicy,
    TrialRecord,
    _run_prepared,
    _timeout_record,
    map_trials,
)
from repro.campaigns.spec import CampaignSpec, TrialPlan


@dataclass(frozen=True)
class AdaptivePolicy:
    """The stopping rule: target CI width on one headline metric.

    ``ci_width`` is the full width (upper minus lower bound) of the
    ``confidence``-level normal-approximation interval on the cell's
    mean ``metric``.  ``min_trials`` draws are taken before the first
    width check (a width from fewer than two points is meaningless);
    ``max_trials`` caps every cell, converged or not.
    """

    ci_width: float
    metric: str = "max_skew"
    confidence: float = 0.95
    min_trials: int = 3
    max_trials: int = 8

    def __post_init__(self) -> None:
        if not (self.ci_width > 0):
            raise ValueError(
                f"ci_width must be positive, got {self.ci_width!r}"
            )
        if not (0 < self.confidence < 1):
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        if self.min_trials < 2:
            raise ValueError(
                f"min_trials must be >= 2 (a CI needs variance), "
                f"got {self.min_trials}"
            )
        if self.max_trials < self.min_trials:
            raise ValueError(
                f"max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )

    @property
    def z_value(self) -> float:
        """Two-sided normal critical value for ``confidence``."""
        return statistics.NormalDist().inv_cdf(
            (1 + self.confidence) / 2
        )


def _metric_value(
    record: TrialRecord, metric: str
) -> Optional[float]:
    """The record's finite metric value, or None (never converges)."""
    if not record.ok:
        return None
    value = record.metrics.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def _cell_width(
    records: List[TrialRecord], metric: str, z: float
) -> float:
    """CI width of a cell's metric; inf while unbounded or too small."""
    values = []
    for record in records:
        value = _metric_value(record, metric)
        if value is None:
            return math.inf
        values.append(value)
    if len(values) < 2:
        return math.inf
    spread = statistics.stdev(values)
    return 2 * z * spread / math.sqrt(len(values))


def execute_adaptive_campaign(
    spec: CampaignSpec,
    scale: str = "quick",
    adaptive: Optional[AdaptivePolicy] = None,
    policy: Optional[ExecutionPolicy] = None,
    store: Optional[Any] = None,
    reuse: bool = True,
    progress: Optional[Callable[[int, int, TrialRecord], None]] = None,
) -> CampaignRun:
    """Run ``spec`` at ``scale`` under the adaptive stopping rule.

    Execution, caching, and failure tabulation follow
    :func:`~repro.campaigns.executor.execute_campaign` conventions —
    replicates persist to the store as they finish (pool-level failures
    excluded), cached replicates replay without execution, and the
    returned records are ordered cell-major (every replicate of plan 0,
    then plan 1, ...) with sequential indices.
    """
    if adaptive is None:
        raise ValueError(
            "execute_adaptive_campaign needs an AdaptivePolicy"
        )
    policy = policy or ExecutionPolicy()
    if policy.queue is not None:
        raise ValueError(
            "adaptive sampling is incompatible with queue mode: the "
            "stopping rule needs round barriers a detached worker "
            "fleet cannot provide"
        )

    plans = spec.trials_for(scale)
    key = spec.spec_key(scale) if store is not None else None
    known: Dict[str, TrialRecord] = (
        store.load(key) if store is not None and reuse else {}
    )
    z = adaptive.z_value

    cell_records: Dict[int, List[TrialRecord]] = {
        cell: [] for cell in range(len(plans))
    }
    # Replicates wanted per cell; grows one per round for unconverged
    # cells until ci_width is met or max_trials is hit.
    wanted = {cell: adaptive.min_trials for cell in range(len(plans))}
    executed = 0
    cached = 0
    done = 0
    transient: set = set()

    def pool_failure(task: Any, exc: BaseException) -> TrialRecord:
        plan = task[0]
        transient.add(plan.case_key)
        return _timeout_record(plan, exc)

    while True:
        batch: List[Tuple[int, TrialPlan]] = []
        for cell, plan in enumerate(plans):
            for r in range(len(cell_records[cell]), wanted[cell]):
                batch.append((cell, spec.replicate_plan(plan, r)))
        if not batch:
            break

        fresh: List[Tuple[int, TrialPlan]] = []
        for cell, rp in batch:
            hit = known.get(rp.case_key)
            if hit is not None:
                cell_records[cell].append(
                    replace(hit, index=rp.index, cached=True)
                )
                cached += 1
                done += 1
            else:
                fresh.append((cell, rp))

        if fresh:
            def persist(record: TrialRecord) -> None:
                nonlocal done
                if (
                    store is not None
                    and record.case_key not in transient
                ):
                    store.append(key, record)
                done += 1
                if progress is not None:
                    progress(done, sum(wanted.values()), record)

            from repro.campaigns.builders import resolve_builder

            prepared = []
            for _cell, rp in fresh:
                try:
                    builder = resolve_builder(rp.builder)
                except Exception:  # noqa: BLE001 - tabulated in-place
                    builder = None
                prepared.append((rp, builder))
            results = map_trials(
                _run_prepared,
                prepared,
                policy,
                on_error=pool_failure,
                on_result=persist,
            )
            for (cell, _rp), record in zip(fresh, results):
                cell_records[cell].append(record)
                # New records enter the replay map so a later round
                # (or replicate-0 sharing with the fixed tier) hits.
                if record.case_key not in transient:
                    known[record.case_key] = record
            executed += len(fresh)

        # Round barrier: grow only cells that are unconverged at their
        # current draw count and still under the cap.
        for cell in range(len(plans)):
            if wanted[cell] > len(cell_records[cell]):
                continue  # still owed draws (shouldn't happen)
            if wanted[cell] >= adaptive.max_trials:
                continue
            width = _cell_width(
                cell_records[cell], adaptive.metric, z
            )
            if width > adaptive.ci_width:
                wanted[cell] += 1

    per_cell = []
    converged = 0
    total_trials = 0
    for cell, plan in enumerate(plans):
        records = cell_records[cell]
        total_trials += len(records)
        width = _cell_width(records, adaptive.metric, z)
        values = [
            v
            for v in (
                _metric_value(r, adaptive.metric) for r in records
            )
            if v is not None
        ]
        ok = width <= adaptive.ci_width
        converged += 1 if ok else 0
        per_cell.append(
            {
                "case_key": plan.case_key,
                "n": len(records),
                "mean": (
                    statistics.fmean(values) if values else None
                ),
                "width": width,
                "converged": ok,
            }
        )

    fixed_trials = len(plans) * adaptive.max_trials
    summary = {
        "metric": adaptive.metric,
        "ci_width": adaptive.ci_width,
        "confidence": adaptive.confidence,
        "min_trials": adaptive.min_trials,
        "max_trials": adaptive.max_trials,
        "cells": len(plans),
        "converged": converged,
        "exhausted": len(plans) - converged,
        "trials": total_trials,
        "fixed_trials": fixed_trials,
        "saved": fixed_trials - total_trials,
    }

    ordered: List[TrialRecord] = []
    for cell in range(len(plans)):
        for record in cell_records[cell]:
            ordered.append(replace(record, index=len(ordered)))
    return CampaignRun(
        spec=spec,
        scale=scale,
        records=ordered,
        executed=executed,
        cached=cached,
        adaptive={**summary, "per_cell": per_cell},
    )
