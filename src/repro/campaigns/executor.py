"""Campaign execution: serial or process-pool, never dying mid-sweep.

The executor consumes the ordered :class:`~repro.campaigns.spec.TrialPlan`
list of a campaign and produces one :class:`TrialRecord` per plan, in
plan order, regardless of how the work was scheduled.  Three properties
make parallel sweeps safe drop-in replacements for the old in-process
loops:

* **Determinism** — every plan carries its own derived seed and records
  are re-ordered by plan index, so ``workers=1`` and ``workers=N`` yield
  identical aggregated rows.
* **Failure tabulation** — a builder exception becomes an ``error``
  record (the :class:`~repro.analysis.runner.TrialOutcome` convention),
  it never aborts the campaign.
* **Caching** — with a :class:`~repro.campaigns.store.ResultStore`,
  already-recorded case keys are replayed without execution and new
  records are appended as soon as their chunk completes, so an
  interrupted campaign resumes where it stopped.

Per-trial timeouts are enforced in pool mode only (a chunk is given
``timeout * len(chunk)``, measured from the moment a worker actually
*starts* the chunk, and tabulated as timeout errors if exceeded);
serial mode cannot preempt a running trial, so a requested timeout is
dropped with a warning.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaigns.spec import CampaignSpec, TrialPlan

#: How often the parent re-checks chunk start stamps while waiting on a
#: budgeted future.  Bounds timeout-detection latency, not throughput.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign is scheduled.

    ``workers == 1`` runs in-process; larger values use a
    ``ProcessPoolExecutor`` with ``chunk_size`` plans per task.
    ``timeout`` is the per-trial budget in seconds (pool mode only) —
    it is enforced per *chunk* (``timeout * len(chunk)``) against the
    chunk's own execution time (stamped by the worker when it starts,
    so queue-wait behind a slow sibling is never charged), and one slow
    trial can still tabulate its whole chunk as timed out; pair
    ``timeout`` with ``chunk_size=1`` when per-trial precision matters.
    Workers hung past their budget are terminated so the pool shutdown
    cannot block indefinitely.

    ``queue`` switches to elastic queue execution: the campaign's
    chunks are published as leases under the given directory and run by
    any number of queue workers — the in-process coordinator plus every
    ``repro campaign worker`` pointed at the same directory (see
    :mod:`repro.campaigns.queue`).  ``worker_id`` names this process's
    store shard (defaults to a host/pid-derived name) and ``lease_ttl``
    is the heartbeat age after which another worker may reclaim a
    chunk.
    """

    workers: int = 1
    chunk_size: int = 4
    timeout: Optional[float] = None
    queue: Optional[str] = None
    worker_id: Optional[str] = None
    lease_ttl: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers} "
                f"(1 = in-process serial)"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")


@dataclass
class TrialRecord:
    """One executed (or cached / failed) trial."""

    campaign: str
    builder: str
    case: Dict[str, Any]
    seed: int
    case_key: str
    index: int
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    duration: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "builder": self.builder,
            "case": self.case,
            "seed": self.seed,
            "case_key": self.case_key,
            "index": self.index,
            "metrics": self.metrics,
            "error": self.error,
            "duration": self.duration,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "TrialRecord":
        return cls(
            campaign=payload["campaign"],
            builder=payload["builder"],
            case=payload["case"],
            seed=payload["seed"],
            case_key=payload["case_key"],
            index=payload["index"],
            metrics=payload.get("metrics") or {},
            error=payload.get("error"),
            duration=payload.get("duration", 0.0),
        )


def run_trial(
    plan: TrialPlan, builder: Optional[Callable[..., Any]] = None
) -> TrialRecord:
    """Execute one plan, tabulating any exception as an error record.

    ``builder`` may be supplied pre-resolved; the campaign executor does
    so in the parent process and ships the function by pickle reference,
    which keeps pool mode working for any module-level builder even
    under spawn/forkserver start methods (where worker processes do not
    inherit registrations made outside :mod:`repro.campaigns.builders`).
    """
    from repro.campaigns.builders import resolve_builder

    start = time.perf_counter()
    metrics: Dict[str, Any] = {}
    error: Optional[str] = None
    try:
        if builder is None:
            builder = resolve_builder(plan.builder)
        metrics = builder(dict(plan.case), plan.measurement, plan.seed)
    except Exception as exc:  # noqa: BLE001 - sweeps tabulate failures
        metrics, error = {}, f"{type(exc).__name__}: {exc}"
    return TrialRecord(
        campaign=plan.campaign,
        builder=plan.builder,
        case=dict(plan.case),
        seed=plan.seed,
        case_key=plan.case_key,
        index=plan.index,
        metrics=metrics,
        error=error,
        duration=time.perf_counter() - start,
    )


def _run_prepared(task: Any) -> TrialRecord:
    """Top-level runner for (plan, pre-resolved builder) pairs."""
    plan, builder = task
    return run_trial(plan, builder=builder)


def _run_batch(function: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
    """Top-level pool task (must be picklable by reference)."""
    return [function(item) for item in items]


def _run_stamped_batch(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    stamps: Any,
    index: int,
) -> List[Any]:
    """Pool task that stamps its own start time before running.

    ``stamps`` is a manager-dict proxy shared with the parent; the
    stamp is what lets the parent charge the chunk's budget against
    *execution* time instead of time-in-queue — a chunk stuck behind a
    hung sibling has no stamp and is never tabulated as timed out.
    ``time.monotonic`` is a system-wide clock on the platforms we
    support, so parent and worker readings are comparable.
    """
    stamps[index] = time.monotonic()
    return [function(item) for item in items]


def map_trials(
    function: Callable[[Any], Any],
    items: Sequence[Any],
    policy: Optional[ExecutionPolicy] = None,
    on_error: Optional[Callable[[Any, BaseException], Any]] = None,
    on_result: Optional[Callable[[Any], None]] = None,
) -> List[Any]:
    """Order-preserving serial/pool map with pool-level failure hooks.

    ``on_error(item, exc)`` supplies a substitute result when an item (or
    its whole chunk, for timeouts and broken pools) fails; the default
    re-raises.  ``on_result`` is invoked for each result as soon as it is
    available (the hook behind incremental store writes).  In pool mode
    ``function`` and ``items`` must be picklable — module-level functions
    and plain-data items.
    """
    policy = policy or ExecutionPolicy()
    if on_error is None:
        def on_error(_item: Any, exc: BaseException) -> Any:
            raise exc

    results: List[Any] = []

    def emit(result: Any) -> None:
        results.append(result)
        if on_result is not None:
            on_result(result)

    # The serial shortcut must not *silently* swallow a requested
    # timeout: a single-item pool run is still the only way to preempt
    # a hung trial, so workers >= 2 with one item keeps the pool.
    if policy.workers <= 1 or (len(items) <= 1 and policy.timeout is None):
        if policy.timeout is not None and policy.workers <= 1:
            warnings.warn(
                "ExecutionPolicy.timeout is ignored in serial mode "
                "(workers=1): an in-process trial cannot be "
                "preempted — use workers >= 2 to enforce the budget",
                RuntimeWarning,
                stacklevel=2,
            )
        for item in items:
            try:
                result = function(item)
            except Exception as exc:  # noqa: BLE001
                result = on_error(item, exc)
            # emit outside the try: an on_result failure (say, the
            # store's disk filling up) must propagate, not masquerade
            # as a failure of the trial itself.
            emit(result)
        return results

    chunks = [
        list(items[start:start + policy.chunk_size])
        for start in range(0, len(items), policy.chunk_size)
    ]
    if policy.timeout is None:
        pool = ProcessPoolExecutor(max_workers=policy.workers)
        try:
            futures = [
                pool.submit(_run_batch, function, chunk)
                for chunk in chunks
            ]
            for chunk, future in zip(chunks, futures):
                try:
                    batch = future.result()
                except Exception as exc:  # noqa: BLE001 - broken pool
                    batch = [on_error(item, exc) for item in chunk]
                for result in batch:
                    emit(result)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return results

    _map_chunks_budgeted(function, chunks, policy, on_error, emit)
    return results


def _map_chunks_budgeted(
    function: Callable[[Any], Any],
    chunks: List[List[Any]],
    policy: ExecutionPolicy,
    on_error: Callable[[Any, BaseException], Any],
    emit: Callable[[Any], None],
) -> None:
    """Pool rounds with per-chunk budgets charged from worker start.

    Workers stamp each chunk's start into a shared manager dict; the
    parent tabulates a chunk as timed out only once ``now - start``
    exceeds ``timeout * len(chunk)``.  A chunk still waiting for a
    worker carries no stamp and is never charged — when a hung chunk
    forces the pool to be torn down, every started-but-unfinished and
    never-started chunk is resubmitted to a fresh pool, so innocent
    work queued behind the hang runs instead of being billed for it.
    Each torn-down round tabulates at least one chunk, so the loop
    terminates.  Batches are emitted in chunk order, each as soon as
    every earlier chunk has settled (the incremental-store-write hook).
    """
    batches: Dict[int, List[Any]] = {}
    settled: set = set()
    pending = list(range(len(chunks)))
    next_emit = 0

    def settle(index: int, batch: List[Any]) -> None:
        nonlocal next_emit
        batches[index] = batch
        settled.add(index)
        while next_emit in batches:
            for result in batches.pop(next_emit):
                emit(result)
            next_emit += 1

    with multiprocessing.Manager() as manager:
        stamps = manager.dict()
        while pending:
            # Stale stamps from a killed round would bill a resubmitted
            # chunk for its previous, terminated attempt.
            for index in pending:
                stamps.pop(index, None)
            _budgeted_round(
                function, chunks, pending, policy, stamps, settle,
                on_error,
            )
            pending = [
                index for index in pending if index not in settled
            ]


def _budgeted_round(
    function: Callable[[Any], Any],
    chunks: List[List[Any]],
    pending: List[int],
    policy: ExecutionPolicy,
    stamps: Any,
    settle: Callable[[int, List[Any]], None],
    on_error: Callable[[Any, BaseException], Any],
) -> None:
    """One pool generation; settles every chunk it finishes or bills."""
    assert policy.timeout is not None
    pool = ProcessPoolExecutor(max_workers=policy.workers)
    timed_out = False
    try:
        futures = {
            index: pool.submit(
                _run_stamped_batch, function, chunks[index], stamps,
                index,
            )
            for index in pending
        }
        waiting = list(pending)
        while waiting:
            head = waiting[0]
            try:
                batch = futures[head].result(timeout=_POLL_SECONDS)
            except FutureTimeoutError:
                now = time.monotonic()
                overdue = [
                    index
                    for index in waiting
                    if not futures[index].done()
                    and stamps.get(index) is not None
                    and now - stamps[index]
                    > policy.timeout * len(chunks[index])
                ]
                if not overdue:
                    continue
                timed_out = True
                for index in overdue:
                    settle(index, [
                        on_error(
                            item,
                            TimeoutError(
                                f"trial chunk exceeded "
                                f"{policy.timeout}s per trial"
                            ),
                        )
                        for item in chunks[index]
                    ])
                # Harvest whatever completed before the teardown; the
                # rest is resubmitted in the next round.
                for index in waiting:
                    if index in overdue or not futures[index].done():
                        continue
                    try:
                        settle(index, futures[index].result())
                    except Exception as exc:  # noqa: BLE001
                        settle(index, [
                            on_error(item, exc)
                            for item in chunks[index]
                        ])
                break
            except Exception as exc:  # noqa: BLE001 - broken pool
                settle(head, [
                    on_error(item, exc) for item in chunks[head]
                ])
                waiting.pop(0)
            else:
                settle(head, batch)
                waiting.pop(0)
    finally:
        if timed_out:
            # shutdown(wait=True) would block on the hung worker until
            # its trial returns — possibly forever.  Every outstanding
            # chunk is either settled or resubmitted, so kill the
            # workers.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)


@dataclass
class CampaignRun:
    """The outcome of executing one campaign at one scale.

    ``adaptive`` is populated only by
    :func:`repro.campaigns.adaptive.execute_adaptive_campaign` — a
    summary of the per-cell stopping rule (trials run vs. the fixed
    tier, converged cells, saved trials) that feeds the run summary
    table and the telemetry sidecar.
    """

    spec: CampaignSpec
    scale: str
    records: List[TrialRecord]
    executed: int
    cached: int
    adaptive: Optional[Dict[str, Any]] = None

    @property
    def failed(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    def failures(self) -> List[TrialRecord]:
        return [record for record in self.records if not record.ok]

    def summary(self) -> str:
        return (
            f"campaign {self.spec.name} [{self.scale}]: "
            f"{len(self.records)} trials — {self.executed} executed, "
            f"{self.cached} cached, {self.failed} failed"
        )


def _timeout_record(plan: TrialPlan, exc: BaseException) -> TrialRecord:
    return TrialRecord(
        campaign=plan.campaign,
        builder=plan.builder,
        case=dict(plan.case),
        seed=plan.seed,
        case_key=plan.case_key,
        index=plan.index,
        error=f"{type(exc).__name__}: {exc}",
    )


def execute_campaign(
    spec: CampaignSpec,
    scale: str = "quick",
    policy: Optional[ExecutionPolicy] = None,
    store: Optional[Any] = None,
    reuse: bool = True,
    instrumentation: Optional[Any] = None,
    progress: Optional[Callable[[int, int, TrialRecord], None]] = None,
) -> CampaignRun:
    """Run (or replay) every trial of ``spec`` at ``scale``.

    With ``store`` set, cached case keys are replayed without execution
    (unless ``reuse=False``) and fresh records are appended incrementally
    under the campaign's :meth:`~CampaignSpec.spec_key`, so re-running a
    completed campaign executes zero new trials and an interrupted one
    resumes with only the missing cases.  Builder failures are
    deterministic and are cached like successes; pool-level failures
    (timeouts, broken pools) are environment artifacts and are *not*
    persisted, so a later run retries them.

    ``instrumentation`` (a :class:`~repro.telemetry.campaign.
    InstrumentationPlan`) routes executed trials through the telemetry
    wrapper — an execution-time option that deliberately does not enter
    ``case_key``/``spec_key`` hashing, since instrumented trials produce
    identical metrics.  ``progress(done, total, record)`` is invoked for
    every executed trial as soon as its record is available (after the
    incremental store write); ``done`` counts cache replays as already
    complete.
    """
    policy = policy or ExecutionPolicy()
    if policy.queue is not None:
        # Elastic mode: publish chunk leases under the queue directory
        # and run an in-process worker alongside any external
        # ``repro campaign worker`` processes, then assemble the run
        # from the shared store.
        from repro.campaigns.queue import execute_campaign_queued

        return execute_campaign_queued(
            spec,
            scale=scale,
            policy=policy,
            store=store,
            reuse=reuse,
            instrumentation=instrumentation,
            progress=progress,
        )
    plans = spec.trials_for(scale)
    key = spec.spec_key(scale) if store is not None else None
    known: Dict[str, TrialRecord] = (
        store.load(key) if store is not None and reuse else {}
    )

    records: List[Optional[TrialRecord]] = [None] * len(plans)
    pending: List[TrialPlan] = []
    cached = 0
    for plan in plans:
        hit = known.get(plan.case_key)
        if hit is not None:
            records[plan.index] = replace(
                hit, index=plan.index, cached=True
            )
            cached += 1
        else:
            pending.append(plan)

    transient: set = set()
    done = cached
    total = len(plans)

    def pool_failure(task: Any, exc: BaseException) -> TrialRecord:
        plan = task[0]
        transient.add(plan.case_key)
        return _timeout_record(plan, exc)

    def persist(record: TrialRecord) -> None:
        nonlocal done
        records[record.index] = record
        if store is not None and record.case_key not in transient:
            store.append(key, record)
        done += 1
        if progress is not None:
            progress(done, total, record)

    # Resolve builders up front: unknown names are tabulated in-place
    # by run_trial, and resolved functions travel to pool workers by
    # pickle reference (spawn-safe for module-level builders).
    from repro.campaigns.builders import resolve_builder

    instrumented = instrumentation is not None and instrumentation.active
    if instrumented:
        # Imported lazily: the telemetry campaign layer imports this
        # module, and bare runs must not pay for it.
        from repro.telemetry.campaign import run_instrumented

        function: Callable[[Any], TrialRecord] = run_instrumented
    else:
        function = _run_prepared

    prepared = []
    for plan in pending:
        try:
            builder = resolve_builder(plan.builder)
        except Exception:  # noqa: BLE001 - run_trial tabulates it
            builder = None
        if instrumented:
            prepared.append((plan, builder, instrumentation))
        else:
            prepared.append((plan, builder))

    executed = map_trials(
        function,
        prepared,
        policy,
        on_error=pool_failure,
        on_result=persist,
    )

    assert all(record is not None for record in records)
    return CampaignRun(
        spec=spec,
        scale=scale,
        records=[record for record in records if record is not None],
        executed=len(executed),
        cached=cached,
    )
