"""Elastic campaign execution over a directory-based work queue.

The pool executor scales to one machine; this module scales a campaign
to *N independent worker processes* — started by hand, by CI, or on
other machines — coordinating through nothing but a shared directory
(local disk for same-host workers, a network mount for a fleet):

* ``WorkQueue.enqueue`` publishes a campaign's pending trials as chunk
  files under the queue directory, plus a ``manifest.json`` naming the
  campaign, scale, and spec key (written last, atomically, so a worker
  that sees the manifest sees every chunk).
* Workers (:func:`run_worker`, CLI ``repro campaign worker``) loop:
  **claim** a chunk by exclusively creating its ``.claim`` file
  (``O_CREAT | O_EXCL`` — the filesystem is the lock manager), run its
  trials, **heartbeat** by touching the claim's mtime between trials,
  and **complete** by writing a ``.done`` marker.  A claim whose
  heartbeat is older than the lease TTL is presumed dead and
  **reclaimed** (removed and re-claimed) by any live worker.
* Every worker writes records to its *own shard* of the shared
  :class:`~repro.campaigns.store.ResultStore`
  (``<spec_key>/<worker_id>.jsonl``) — appends never interleave across
  writers, and :meth:`~repro.campaigns.store.ResultStore.load` dedups
  across shards by case key, so the rare double-execution after a
  reclaim race (a zombie worker finishing a chunk someone else
  re-claimed) is idempotent: records are deterministic per case key.
* The coordinator (:func:`execute_campaign_queued`, reached via
  ``ExecutionPolicy(queue=...)``) enqueues, joins the queue as one more
  worker, and — once every chunk carries a ``.done`` marker — assembles
  the :class:`~repro.campaigns.executor.CampaignRun` from the store in
  plan order, exactly like the pool path.

Crash recovery falls out of the store contract: a worker killed
mid-chunk leaves a stale claim and a partial shard; the reclaiming
worker re-runs only the trials of that chunk not already in the store
(each chunk starts with a cache check), so lost work is bounded by one
trial per crash.

Queue directory layout::

    <queue>/manifest.json        campaign, scale, spec_key, chunk count
    <queue>/chunk-00000.json     {"chunk": 0, "indices": [plan indices]}
    <queue>/chunk-00000.claim    held lease; mtime = last heartbeat
    <queue>/chunk-00000.done     completion marker

See ``docs/SCALING.md`` for the full protocol.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.campaigns.executor import (
    CampaignRun,
    ExecutionPolicy,
    TrialRecord,
    run_trial,
)
from repro.campaigns.spec import CampaignSpec, TrialPlan

_CHUNK_FILE = re.compile(r"^chunk-\d{5}\.json$")


class QueueError(RuntimeError):
    """A work-queue protocol violation (missing/mismatched manifest)."""


def default_worker_id() -> str:
    """Host+pid derived shard name, unique per worker process."""
    host = re.sub(r"[^A-Za-z0-9._-]+", "-", socket.gethostname())
    host = host.lstrip("._-") or "host"
    return f"{host}-{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """One claimed chunk: which plan indices, held by which worker."""

    chunk: str
    indices: List[int]
    worker: str
    reclaimed: bool = False


class WorkQueue:
    """A campaign's chunk queue in one shared directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    # ------------------------------------------------------------------
    # Paths

    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def chunk_path(self, chunk: str) -> str:
        return os.path.join(self.root, f"{chunk}.json")

    def claim_path(self, chunk: str) -> str:
        return os.path.join(self.root, f"{chunk}.claim")

    def done_path(self, chunk: str) -> str:
        return os.path.join(self.root, f"{chunk}.done")

    # ------------------------------------------------------------------
    # Publishing

    def manifest(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.manifest_path(), encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def enqueue(
        self,
        spec: CampaignSpec,
        scale: str,
        plans: Optional[List[TrialPlan]] = None,
        chunk_size: int = 4,
    ) -> Dict[str, Any]:
        """Publish ``plans`` (default: the full tier) as chunk files.

        Chunk files land first and the manifest last (atomic rename),
        so a worker that can read the manifest can rely on every chunk
        file existing.  Re-enqueueing a populated queue directory is an
        error — one directory holds one campaign run.
        """
        if self.manifest() is not None:
            raise QueueError(
                f"queue at {self.root} already has a campaign "
                f"enqueued; use a fresh directory per run"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if plans is None:
            plans = spec.trials_for(scale)
        os.makedirs(self.root, exist_ok=True)
        chunks = [
            plans[start:start + chunk_size]
            for start in range(0, len(plans), chunk_size)
        ]
        for number, chunk in enumerate(chunks):
            payload = {
                "chunk": number,
                "indices": [plan.index for plan in chunk],
            }
            with open(
                self.chunk_path(f"chunk-{number:05d}"),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(payload, handle)
                handle.write("\n")
        manifest = {
            "campaign": spec.name,
            "scale": scale,
            "spec_key": spec.spec_key(scale),
            "chunk_size": chunk_size,
            "chunks": len(chunks),
            "trials": len(plans),
        }
        staging = self.manifest_path() + ".tmp"
        with open(staging, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, self.manifest_path())
        return manifest

    # ------------------------------------------------------------------
    # Leases

    def chunk_ids(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if _CHUNK_FILE.match(name)
        )

    def claim(
        self, worker_id: str, lease_ttl: float = 60.0
    ) -> Optional[Lease]:
        """Claim the first open chunk, reclaiming stale leases.

        Exclusive claim-file creation is the mutual exclusion; a claim
        whose mtime (the heartbeat) is older than ``lease_ttl`` is
        removed and re-claimed.  Every race loses gracefully: a
        contested reclaim moves on to the next chunk, and a chunk
        completed between our existence check and our claim is
        released immediately.
        """
        now = time.time()
        for chunk in self.chunk_ids():
            if os.path.exists(self.done_path(chunk)):
                continue
            claim_path = self.claim_path(chunk)
            reclaimed = False
            try:
                fd = os.open(
                    claim_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                try:
                    heartbeat = os.path.getmtime(claim_path)
                except OSError:
                    continue  # released under us; next pass retries
                if now - heartbeat <= lease_ttl:
                    continue  # live lease held elsewhere
                try:
                    os.remove(claim_path)
                except FileNotFoundError:
                    continue  # another worker reclaimed first
                try:
                    fd = os.open(
                        claim_path,
                        os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    )
                except FileExistsError:
                    continue  # lost the reclaim race
                reclaimed = True
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"worker": worker_id}, handle)
            if os.path.exists(self.done_path(chunk)):
                # Completed while we were claiming; release.
                self._release(chunk)
                continue
            with open(
                self.chunk_path(chunk), encoding="utf-8"
            ) as handle:
                indices = json.load(handle)["indices"]
            return Lease(
                chunk=chunk,
                indices=list(indices),
                worker=worker_id,
                reclaimed=reclaimed,
            )
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the lease's liveness stamp (claim-file mtime)."""
        try:
            os.utime(self.claim_path(lease.chunk), None)
        except FileNotFoundError:
            # Reclaimed from under us (we looked dead).  Keep going:
            # store dedup makes the double execution idempotent.
            pass

    def complete(self, lease: Lease) -> None:
        """Mark the chunk done and release the claim."""
        try:
            with open(
                self.done_path(lease.chunk), "x", encoding="utf-8"
            ) as handle:
                json.dump({"worker": lease.worker}, handle)
        except FileExistsError:
            pass  # a reclaimer finished it first
        self._release(lease.chunk)

    def _release(self, chunk: str) -> None:
        try:
            os.remove(self.claim_path(chunk))
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Introspection

    def all_done(self) -> bool:
        return all(
            os.path.exists(self.done_path(chunk))
            for chunk in self.chunk_ids()
        )

    def status(self) -> Dict[str, int]:
        """Chunk counts by state (done / claimed / open)."""
        done = claimed = opened = 0
        for chunk in self.chunk_ids():
            if os.path.exists(self.done_path(chunk)):
                done += 1
            elif os.path.exists(self.claim_path(chunk)):
                claimed += 1
            else:
                opened += 1
        return {
            "chunks": done + claimed + opened,
            "done": done,
            "claimed": claimed,
            "open": opened,
        }


def run_worker(
    queue_dir: str,
    store: Any,
    spec: Optional[CampaignSpec] = None,
    worker_id: Optional[str] = None,
    lease_ttl: float = 60.0,
    poll: float = 0.5,
    max_chunks: Optional[int] = None,
    on_record: Optional[Callable[[TrialRecord], None]] = None,
) -> Dict[str, Any]:
    """Drain the queue: claim chunks, run trials, write our shard.

    Runs until every chunk is done (waiting out — and eventually
    reclaiming — other workers' leases), or until ``max_chunks`` of our
    own are finished.  ``spec`` defaults to the catalog campaign named
    by the queue manifest; passing it explicitly supports ad-hoc specs
    whose builders are registered in this process.  Each chunk starts
    with a store cache check, so trials another worker (or a previous
    life of this chunk's lease) already persisted are skipped — crash
    recovery re-executes at most the one trial that was in flight.
    """
    queue = WorkQueue(queue_dir)
    manifest = queue.manifest()
    if manifest is None:
        raise QueueError(
            f"no campaign enqueued at {queue.root} "
            f"(run 'repro campaign enqueue' first)"
        )
    if spec is None:
        from repro.campaigns import campaign_definition

        spec = campaign_definition(manifest["campaign"]).spec()
    scale = manifest["scale"]
    key = spec.spec_key(scale)
    if key != manifest["spec_key"]:
        raise QueueError(
            f"spec key mismatch for campaign "
            f"{manifest['campaign']!r} [{scale}]: queue has "
            f"{manifest['spec_key'][:12]}…, this process computes "
            f"{key[:12]}… — worker and enqueuer disagree about the "
            f"campaign definition"
        )
    by_index = {plan.index: plan for plan in spec.trials_for(scale)}
    worker = worker_id or default_worker_id()
    stats: Dict[str, Any] = {
        "worker": worker,
        "chunks": 0,
        "trials": 0,
        "skipped": 0,
        "reclaimed": 0,
    }
    while True:
        lease = queue.claim(worker, lease_ttl=lease_ttl)
        if lease is None:
            if queue.all_done():
                break
            time.sleep(poll)
            continue
        if lease.reclaimed:
            stats["reclaimed"] += 1
        known = store.load(key)
        for index in lease.indices:
            plan = by_index[index]
            if plan.case_key in known:
                stats["skipped"] += 1
                continue
            record = run_trial(plan)
            store.append(key, record, shard=worker)
            stats["trials"] += 1
            if on_record is not None:
                on_record(record)
            queue.heartbeat(lease)
        queue.complete(lease)
        stats["chunks"] += 1
        if max_chunks is not None and stats["chunks"] >= max_chunks:
            break
    return stats


def execute_campaign_queued(
    spec: CampaignSpec,
    scale: str = "quick",
    policy: Optional[ExecutionPolicy] = None,
    store: Optional[Any] = None,
    reuse: bool = True,
    instrumentation: Optional[Any] = None,
    progress: Optional[Callable[[int, int, TrialRecord], None]] = None,
) -> CampaignRun:
    """Run ``spec`` through the work queue named by ``policy.queue``.

    Enqueues the tier's pending (cache-missing) trials — unless the
    queue already holds this campaign, e.g. pre-published with
    ``repro campaign enqueue`` — then joins the queue as an in-process
    worker alongside any external ``repro campaign worker`` processes,
    and assembles the run from the shared store once every chunk is
    done.  The record list, ordering, and cache accounting match the
    pool path exactly.
    """
    policy = policy or ExecutionPolicy()
    if policy.queue is None:
        raise ValueError("execute_campaign_queued needs policy.queue")
    if store is None:
        raise ValueError(
            "queue execution requires a result store: elastic workers "
            "coordinate through it (pass store=/--store)"
        )
    if not reuse:
        raise ValueError(
            "queue execution always reuses the store (workers skip "
            "persisted case keys); clear the store to force re-runs"
        )
    if instrumentation is not None and getattr(
        instrumentation, "active", False
    ):
        raise ValueError(
            "telemetry instrumentation is not supported in queue mode"
        )
    if policy.timeout is not None:
        raise ValueError(
            "per-trial timeouts are not supported in queue mode "
            "(stale-lease reclaim bounds lost work instead)"
        )

    plans = spec.trials_for(scale)
    key = spec.spec_key(scale)
    known = store.load(key)
    pending = [
        plan for plan in plans if plan.case_key not in known
    ]

    queue = WorkQueue(policy.queue)
    manifest = queue.manifest()
    if manifest is None:
        queue.enqueue(
            spec, scale, plans=pending, chunk_size=policy.chunk_size
        )
    elif manifest["spec_key"] != key:
        raise QueueError(
            f"queue at {queue.root} holds campaign "
            f"{manifest['campaign']!r} [{manifest['scale']}], not "
            f"{spec.name!r} [{scale}]"
        )

    total = len(plans)
    done = len(plans) - len(pending)

    def on_record(record: TrialRecord) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, record)

    run_worker(
        policy.queue,
        store,
        spec=spec,
        worker_id=policy.worker_id,
        lease_ttl=policy.lease_ttl,
        on_record=on_record,
    )

    final = store.load(key)
    records: List[TrialRecord] = []
    for plan in plans:
        record = final.get(plan.case_key)
        if record is None:
            raise QueueError(
                f"queue drained but case {plan.case_key[:12]}… of "
                f"campaign {spec.name!r} [{scale}] is missing from "
                f"the store — was a worker's shard deleted?"
            )
        records.append(
            replace(
                record,
                index=plan.index,
                cached=plan.case_key in known,
            )
        )
    return CampaignRun(
        spec=spec,
        scale=scale,
        records=records,
        executed=len(pending),
        cached=len(plans) - len(pending),
    )
