"""Reduce campaign trial records into the repo's ``Table`` rows.

The executor yields flat :class:`~repro.campaigns.executor.TrialRecord`
lists; experiments group them, pull case/metric values, and emit the
same :class:`~repro.analysis.reporting.Table` objects the CLI,
benchmarks, and CSV snapshots already render.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.reporting import Table
from repro.campaigns.executor import CampaignRun, TrialRecord

_MISSING = object()


def value_of(record: TrialRecord, key: str, default: Any = _MISSING) -> Any:
    """A named value from a record: case first, then metrics."""
    if key in record.case:
        return record.case[key]
    if key in record.metrics:
        return record.metrics[key]
    if default is not _MISSING:
        return default
    raise KeyError(
        f"record for {record.builder!r} has no value {key!r} "
        f"(case keys {sorted(record.case)}, "
        f"metric keys {sorted(record.metrics)})"
    )


def group_by(
    records: Iterable[TrialRecord], keys: Sequence[str]
) -> Dict[Tuple[Any, ...], List[TrialRecord]]:
    """Group records by case/metric values, preserving first-seen order."""
    groups: Dict[Tuple[Any, ...], List[TrialRecord]] = {}
    for record in records:
        group = tuple(value_of(record, key) for key in keys)
        groups.setdefault(group, []).append(record)
    return groups


def summary_stats(values: Iterable[float]) -> Dict[str, float]:
    """count / mean / min / max over the finite entries of ``values``."""
    finite = [v for v in values if isinstance(v, (int, float))
              and math.isfinite(v)]
    if not finite:
        return {"count": 0, "mean": float("nan"),
                "min": float("nan"), "max": float("nan")}
    return {
        "count": len(finite),
        "mean": sum(finite) / len(finite),
        "min": min(finite),
        "max": max(finite),
    }


def failure_counts(records: Iterable[TrialRecord]) -> Dict[str, int]:
    """Failures tabulated by error type (the ``Type:`` prefix)."""
    counter: Counter = Counter(
        (record.error or "").split(":", 1)[0]
        for record in records
        if not record.ok
    )
    return dict(counter)


def records_to_table(
    records: Sequence[TrialRecord],
    title: str,
    columns: Sequence[str],
    row_of: Optional[Callable[[TrialRecord], Sequence[Any]]] = None,
) -> Table:
    """Build a :class:`Table`, one row per record in record order.

    Without ``row_of``, each column name is looked up in the record's
    case/metrics via :func:`value_of` (error records render their error
    string in otherwise-missing cells).
    """
    table = Table(title, columns)
    for record in records:
        if row_of is not None:
            table.add_row(*row_of(record))
        else:
            table.add_row(
                *(
                    value_of(record, column, default=record.error)
                    for column in columns
                )
            )
    return table


def run_summary_table(run: CampaignRun) -> Table:
    """Per-builder execution statistics for a campaign run."""
    table = Table(
        f"Campaign {run.spec.name} [{run.scale}] — execution summary",
        [
            "builder",
            "trials",
            "executed",
            "cached",
            "failed",
            "mean s/trial",
        ],
    )
    for builder, group in _by_builder(run.records).items():
        stats = summary_stats(record.duration for record in group
                              if not record.cached)
        table.add_row(
            builder,
            len(group),
            sum(1 for record in group if not record.cached),
            sum(1 for record in group if record.cached),
            sum(1 for record in group if not record.ok),
            stats["mean"],
        )
    for error_type, count in sorted(failure_counts(run.records).items()):
        table.add_note(f"{count} failure(s) of type {error_type}")
    if run.adaptive is not None:
        a = run.adaptive
        table.add_note(
            f"adaptive: {a['trials']} trials over {a['cells']} cells "
            f"({a['converged']} converged, {a['exhausted']} at cap) — "
            f"saved {a['saved']} vs fixed "
            f"{a['max_trials']}x replication"
        )
        table.add_note(
            f"adaptive target: {a['metric']} CI width <= "
            f"{a['ci_width']} at {a['confidence']:.0%} confidence"
        )
    return table


def _by_builder(
    records: Iterable[TrialRecord],
) -> Dict[str, List[TrialRecord]]:
    groups: Dict[str, List[TrialRecord]] = {}
    for record in records:
        groups.setdefault(record.builder, []).append(record)
    return groups
