"""The unified simulation construction facade.

One entry point — :func:`build_simulation` — assembles a runnable CPS
simulation from a registry-keyed case dict on either execution backend:

``event``
    The discrete-event engine (:class:`~repro.sim.scheduler.Simulation`)
    — per-message dispatch, every adversary/churn behaviour, the
    reference semantics.
``vectorized``
    The round-batched numpy engine
    (:class:`~repro.sim.vectorized.VectorizedSimulation`) — array ops
    over whole pulse rounds, built for the n = 100..10,000 regime.
    Supports every delay policy and drift profile under the *silent*
    adversary; churn and active Byzantine behaviours raise
    :class:`~repro.sim.vectorized.UnsupportedScenarioError`.

The facade subsumes the historical builder sprawl
(``build_cps_simulation`` wiring plus the registry-keyed
``build_registry_simulation``); both old names remain as thin
deprecation shims, and every content-addressed hash they fed stays
byte-identical.  The case-dict conventions are unchanged:

>>> built = build_simulation(
...     {"n": 6, "adversary": "silent", "delay": "maximum",
...      "drift": "extreme"},
...     backend="vectorized", seed=1,
... )
>>> result = built.simulation.run(max_pulses=8)

Backends are named by string everywhere a case travels (specs, CLI
flags, perf cases); :func:`resolve_backend` owns validation and the
did-you-mean hint for typos.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import networkx as nx

from repro import scenarios
from repro.core.cps import assemble_cps_simulation
from repro.core.params import ProtocolParameters, derive_parameters, max_faults
from repro.core.topology import simulate_full_connectivity, uniform_timings

#: The registered execution backends, in documentation order.
BACKENDS: Tuple[str, ...] = ("event", "vectorized")

#: The backend implied everywhere a backend is not named.
DEFAULT_BACKEND = "event"

#: The CPS mechanisms the ablation engine can switch off, sorted.
#: Each name maps to a validated off-behaviour (see
#: :mod:`repro.ablation` for the catalog with descriptions):
#: ``apa`` → single-shot vote, ``echo-amplification`` → direct relay,
#: ``overlay`` → base-model parameters on the overlay network,
#: ``resync`` → cold join, ``signatures`` → trust-all verify,
#: ``tcb-filter`` → accept-all window.
ABLATABLE_COMPONENTS: Tuple[str, ...] = (
    "apa",
    "echo-amplification",
    "overlay",
    "resync",
    "signatures",
    "tcb-filter",
)


class UnknownBackendError(ValueError):
    """An unregistered backend name, with a did-you-mean hint."""


class UnknownComponentError(ValueError):
    """An unregistered ablation component, with a did-you-mean hint."""


def resolve_backend(name: Optional[str]) -> str:
    """Normalize and validate a backend name (``None`` → the default)."""
    if name is None:
        return DEFAULT_BACKEND
    if name in BACKENDS:
        return name
    hint = ""
    if name in ABLATABLE_COMPONENTS:
        hint = (
            f" — {name!r} is an ablation component, not a backend "
            f"(see 'repro ablate')"
        )
    else:
        close = difflib.get_close_matches(
            name, BACKENDS + ABLATABLE_COMPONENTS, n=1
        )
        if close and close[0] in BACKENDS:
            hint = f" — did you mean {close[0]!r}?"
        elif close:
            hint = (
                f" — did you mean the ablation component {close[0]!r}? "
                f"(see 'repro ablate')"
            )
    raise UnknownBackendError(
        f"unknown backend {name!r}{hint} (available: {list(BACKENDS)})"
    )


def resolve_ablation(names: Any) -> Tuple[str, ...]:
    """Validate a collection of ablation component names.

    Returns the names deduplicated and sorted (the canonical order all
    content-addressed case hashes use).  Unknown names raise
    :class:`UnknownComponentError` with a did-you-mean hint.
    """
    if names is None:
        return ()
    if isinstance(names, str):
        names = (names,)
    resolved = []
    for name in names:
        if name not in ABLATABLE_COMPONENTS:
            hint = ""
            close = difflib.get_close_matches(
                name, ABLATABLE_COMPONENTS, n=1
            )
            if close:
                hint = f" — did you mean {close[0]!r}?"
            raise UnknownComponentError(
                f"unknown ablation component {name!r}{hint} "
                f"(available: {list(ABLATABLE_COMPONENTS)})"
            )
        if name not in resolved:
            resolved.append(name)
    return tuple(sorted(resolved))


@dataclass(frozen=True)
class BuiltSimulation:
    """What :func:`build_simulation` hands back.

    ``simulation`` exposes the engine-agnostic surface (``run`` /
    ``attach_checks`` / ``honest`` / ``dynamics``); ``params`` are the
    derived protocol parameters (the *overlay's* parameters when the
    case names a topology); ``effective`` carries the effective
    ``d_eff``/``u_eff`` the measurement should be judged against.
    """

    simulation: Any
    params: ProtocolParameters
    f: int
    effective: Dict[str, float]
    backend: str

    def legacy_tuple(self) -> Tuple[Any, ProtocolParameters, int, Dict]:
        """The ``(simulation, params, f, effective)`` shape of the
        deprecated ``build_registry_simulation``."""
        return (self.simulation, self.params, self.f, self.effective)


def _case_parameters(
    case: Dict[str, Any],
    ablate: Tuple[str, ...] = (),
) -> Tuple[
    ProtocolParameters,
    int,
    Dict[str, float],
    Optional[Tuple[float, float]],
]:
    """Derive protocol parameters (Appendix A overlay when asked).

    The fourth return value is a ``(d, u)`` network-timing override, or
    ``None``.  It is only non-``None`` for the ``overlay`` ablation:
    the protocol is parameterized for the *base* model (as if the graph
    were a clique with the raw ``d``/``u``) while the network keeps the
    overlay's real effective delays — exactly the mismatch Appendix A's
    translation exists to prevent.
    """
    n = case["n"]
    theta = case.get("theta", 1.001)
    d = case.get("d", 1.0)
    u = case.get("u", 0.01)
    topology_key = case.get("topology")
    network_timing: Optional[Tuple[float, float]] = None
    if topology_key is not None:
        graph = scenarios.create(
            "topology", topology_key, n,
            **case.get("topology_params", {})
        )
        connectivity = nx.node_connectivity(graph)
        f = case.get("f")
        if f is None:
            f = min(max_faults(n), connectivity - 1)
        overlay = simulate_full_connectivity(
            graph, uniform_timings(graph, d, u), f, theta=theta
        )
        effective = {"d_eff": overlay.d_eff, "u_eff": overlay.u_eff}
        if "overlay" in ablate:
            params = derive_parameters(theta, d, u, n, f=f)
            network_timing = (overlay.d_eff, overlay.u_eff)
        else:
            params = overlay.derive_parameters(theta)
    else:
        params = derive_parameters(theta, d, u, n, f=case.get("f"))
        f = params.f
        effective = {"d_eff": d, "u_eff": u}
    return params, f, effective, network_timing


def build_simulation(
    case: Dict[str, Any],
    backend: str = DEFAULT_BACKEND,
    seed: int = 0,
    trace: Any = "pulses",
    checks: Any = None,
    dynamics: Any = None,
) -> BuiltSimulation:
    """Assemble a CPS simulation from scenario-registry keys.

    The case names each behaviour by registry key — ``adversary``,
    ``delay``, ``drift``, optionally ``topology``, and optionally
    ``churn`` — with optional ``*_params`` dicts forwarded to the
    factories.  Without a topology the run uses the paper's base model
    (a clique with the given ``d``/``u``); with one, the Appendix A
    translation is applied first and CPS runs with the effective
    ``(d_eff, u_eff)``.

    A ``churn`` key attaches a fault schedule through the scheduler's
    dynamics hook (event backend only); an explicit ``dynamics`` hook
    takes precedence over the key.  An optional ``u_tilde`` case key
    overrides the faulty-link uncertainty (experiment E8's
    model-violation regime when ``u_tilde > u``).

    An optional ``ablate`` key lists protocol components to switch
    *off* (see :data:`ABLATABLE_COMPONENTS` and :mod:`repro.ablation`);
    unknown names raise :class:`UnknownComponentError`.  Ablations are
    event-backend only.

    ``backend`` selects the engine; resolution failures raise
    :class:`UnknownBackendError` and scenarios outside the vectorized
    backend's support raise
    :class:`~repro.sim.vectorized.UnsupportedScenarioError` at build
    time, never mid-run.  Identical ``(case, seed)`` inputs resolve
    identical clocks and parameters on both backends, which is what
    the cross-backend differential suite leans on.
    """
    backend = resolve_backend(backend)
    n = case["n"]
    ablate = resolve_ablation(case.get("ablate"))
    params, f, effective, network_timing = _case_parameters(case, ablate)
    adversary_key = case.get("adversary", "silent")
    # Resolve through the registry first so typos keep their
    # did-you-mean behaviour on every backend.
    scenarios.REGISTRY.get("adversary", adversary_key)
    churn_key = case.get("churn")
    clocks = scenarios.create(
        "drift", case.get("drift", "random"), params, seed,
        **case.get("drift_params", {})
    )
    delay_policy = scenarios.create(
        "delay", case.get("delay", "maximum"), n,
        **case.get("delay_params", {})
    )
    if backend == "vectorized":
        from repro.sim.vectorized import (
            UnsupportedScenarioError,
            VectorizedSimulation,
        )

        if ablate:
            raise UnsupportedScenarioError(
                "the vectorized backend does not support ablated "
                "protocol components; use backend='event'"
            )
        if dynamics is not None or churn_key is not None:
            raise UnsupportedScenarioError(
                "the vectorized backend does not support membership "
                "dynamics (churn); use backend='event'"
            )
        if adversary_key != "silent":
            raise UnsupportedScenarioError(
                f"the vectorized backend only supports the 'silent' "
                f"adversary, got {adversary_key!r}; use backend='event'"
            )
        simulation: Any = VectorizedSimulation(
            params,
            clocks=clocks,
            faulty=list(range(n - f, n)) if f else [],
            delay_policy=delay_policy,
            u_tilde=case.get("u_tilde"),
            seed=seed,
            trace=trace,
            checks=checks,
        )
        return BuiltSimulation(simulation, params, f, effective, backend)
    if dynamics is None and churn_key is not None:
        from repro.dynamics import ChurnController

        schedule = scenarios.create(
            "churn", churn_key, params, **case.get("churn_params", {})
        )
        # resync=off ablation: restart recovering/joining nodes cold
        # (round 1, no listen-then-join median vote) by withholding the
        # parameters the controller needs to wrap restarts in
        # ResyncProtocol.
        resync_params = None if "resync" in ablate else params
        dynamics = ChurnController(schedule, resync_params)
        faulty = schedule.initially_corrupted(n)
    else:
        faulty = list(range(n - f, n)) if f else []
    behavior = scenarios.create(
        "adversary", adversary_key, params,
        **case.get("adversary_params", {})
    )
    node_kwargs: Dict[str, Any] = {}
    if "signatures" in ablate:
        node_kwargs["verify_signatures"] = False
    if "echo-amplification" in ablate:
        node_kwargs["relay_echo"] = False
    if "tcb-filter" in ablate:
        node_kwargs["window_filter"] = False
    if "apa" in ablate:
        node_kwargs["discard_rule"] = "none"
    simulation = assemble_cps_simulation(
        params,
        clocks=clocks,
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        u_tilde=case.get("u_tilde"),
        seed=seed,
        trace=trace,
        checks=checks,
        dynamics=dynamics,
        network_timing=network_timing,
        **node_kwargs,
    )
    return BuiltSimulation(simulation, params, f, effective, backend)
