"""Baseline synchronizers the paper compares against.

* :mod:`repro.baselines.lynch_welch` — [25], no signatures, resilience
  ``ceil(n/3) - 1``, skew ``Θ(u + (theta-1) d)``;
* :mod:`repro.baselines.srikanth_toueg` — [28]/[21]-style signed relays,
  resilience ``ceil(n/2) - 1``, skew ``Θ(d)``;
* :mod:`repro.baselines.chain_relay` — [2]-style signature chains,
  resilience ``ceil(n/2) - 1``, skew ``Θ(f (u + (theta-1) d))``.
"""

from repro.baselines.chain_relay import (
    ChainMessage,
    ChainParameters,
    ChainRelayNode,
    ChainStretchAttack,
    build_chain_simulation,
    chain_tag,
    derive_chain_parameters,
)
from repro.baselines.lynch_welch import (
    LwMessage,
    LwTimingAttack,
    LynchWelchNode,
    build_lw_simulation,
    derive_lw_parameters,
    lw_max_faults,
)
from repro.baselines.srikanth_toueg import (
    SrikanthTouegNode,
    StBundle,
    StParameters,
    StReady,
    StRushAttack,
    build_st_simulation,
    derive_st_parameters,
    st_tag,
)

__all__ = [
    "ChainMessage",
    "ChainParameters",
    "ChainRelayNode",
    "ChainStretchAttack",
    "LwMessage",
    "LwTimingAttack",
    "LynchWelchNode",
    "SrikanthTouegNode",
    "StBundle",
    "StParameters",
    "StReady",
    "StRushAttack",
    "build_chain_simulation",
    "build_lw_simulation",
    "build_st_simulation",
    "chain_tag",
    "derive_chain_parameters",
    "derive_lw_parameters",
    "derive_st_parameters",
    "lw_max_faults",
    "st_tag",
]
