"""A chain-relay pulser: the consensus-style baseline with Θ(f·(u+(θ-1)d))
skew.

The paper cites a signature-based construction (via consensus, as in
Abraham et al. [2]) achieving optimal resilience with skew
``O(n (u + (theta-1) d))``.  The linear factor has a concrete mechanism:
timing information is accepted through *signature chains* of up to
``f + 1`` hops (Dolev-Strong style), and every hop launders one link's
uncertainty into the accepted time.

This module implements that mechanism directly:

* at local due time a node *originates* round ``r``: it records "round r
  originated now", broadcasts the chain ``<r>_v``, and schedules its pulse;
* a node receiving a valid chain of length ``k`` (distinct signers) infers
  the origination time as ``k`` nominal delays ago, *sanity-checks* the
  inferred origin against its own due time (each hop is allowed one hop's
  worth of slack — without this window the adversary could teleport the
  origin arbitrarily), adopts the earliest origin estimate, appends its
  signature and relays (chains stay <= f + 1 long);
* every node pulses at local time ``origin_estimate + (f + 1) * theta * d``
  — late enough that even an estimate formed from a full-length chain is
  still in the future.

Honest estimates of the same origination differ by up to
``(u + (theta-1) d)`` *per hop*, and the adversary can stretch chains to
length ``f + 1``, so the skew is Θ(f (u + (theta-1) d)) — reproduced by
experiment E6 as the linear-in-n column between Θ(d) relays and CPS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.crypto.signatures import Signature, verify
from repro.sim.adversary import ByzantineBehavior
from repro.sim.clocks import HardwareClock, validate_initial_skew
from repro.sim.errors import ConfigurationError
from repro.sim.network import DelayPolicy, NetworkConfig
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import Simulation
from repro.sim.trace import DeliveryRecord, Trace, TraceSpec


def chain_tag(pulse_round: int) -> Tuple[str, int]:
    """What every signer of a round-``r`` chain signs."""
    return ("chain", pulse_round)


@dataclass(frozen=True)
class ChainMessage:
    """A signature chain vouching for round ``pulse_round``."""

    pulse_round: int
    chain: Tuple[Signature, ...]

    def signatures(self) -> Tuple[Signature, ...]:
        return self.chain

    def is_valid(self, max_length: int) -> bool:
        if not 1 <= len(self.chain) <= max_length:
            return False
        signers = [sig.signer for sig in self.chain]
        if len(set(signers)) != len(signers):
            return False
        tag = chain_tag(self.pulse_round)
        return all(verify(sig, sig.signer, tag) for sig in self.chain)


@dataclass(frozen=True)
class ChainParameters:
    """Timing for the chain-relay pulser."""

    n: int
    f: int
    theta: float
    d: float
    u: float
    period: float
    initial_skew: float

    def __post_init__(self) -> None:
        if self.f > math.ceil(self.n / 2) - 1:
            raise ConfigurationError(
                f"chain pulser needs f <= ceil(n/2)-1, got f={self.f}"
            )
        if self.period <= self.pulse_delay * self.theta * 2.0:
            raise ConfigurationError(
                f"period {self.period} too small for pulse delay "
                f"{self.pulse_delay}"
            )

    @property
    def hop_slack(self) -> float:
        """Per-hop timing slack the window check allows: one link's worth
        of uncertainty plus drift over one delay."""
        return self.u + (self.theta - 1.0) * self.d

    @property
    def pulse_delay(self) -> float:
        """Local wait between inferred origin and the pulse."""
        return (self.f + 1.0) * self.theta * self.d

    @property
    def drift_per_period(self) -> float:
        """Worst-case clock divergence accumulated over one period."""
        return (self.theta - 1.0) * self.period

    def margin(self, hops: int, pulse_round: int) -> float:
        """Plausibility window half-width for a ``hops``-long chain.

        Each hop may legitimately contribute one hop's slack; on top sit
        the drift over a period and the current pulse spread (the initial
        offset bound in round 1, the steady-state bound afterwards).
        """
        base = self.initial_skew if pulse_round <= 1 else self.skew_bound
        return (hops + 1) * self.hop_slack + self.drift_per_period + base

    @property
    def skew_bound(self) -> float:
        """Θ(f (u + (theta-1) d)): the adversary can shift an accepted
        origin by up to a full-length chain's accumulated slack."""
        return (
            (self.f + 2.0) * 2.0 * self.hop_slack
            + 2.0 * self.drift_per_period
            + self.u
        )


def derive_chain_parameters(
    theta: float,
    d: float,
    u: float,
    n: int,
    f: Optional[int] = None,
    initial_skew: Optional[float] = None,
) -> ChainParameters:
    """Defaults with a comfortably feasible period."""
    if f is None:
        f = math.ceil(n / 2) - 1
    if initial_skew is None:
        initial_skew = d
    period = 4.0 * theta * (f + 2.0) * theta * d + 4.0 * initial_skew
    return ChainParameters(n, f, theta, d, u, period, initial_skew)


class ChainRelayNode(TimedProtocol):
    """One honest node of the chain-relay pulser."""

    def __init__(self, params: ChainParameters) -> None:
        self.params = params
        self.current_round = 0
        self._due_local: Dict[int, float] = {}
        self._origin_estimate: Dict[int, float] = {}
        self._relayed: Set[int] = set()
        self._pulsed: Set[int] = set()

    def on_start(self, api: NodeAPI) -> None:
        due = self.params.initial_skew + self.params.period
        self._due_local[1] = due
        api.set_timer(due, ("due", 1))

    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        kind, pulse_round = tag[0], tag[1]
        if kind == "due":
            self._originate(api, pulse_round)
        elif kind == "pulse":
            self._pulse(api, pulse_round)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if not isinstance(payload, ChainMessage):
            return
        pulse_round = payload.pulse_round
        if pulse_round in self._pulsed:
            return
        if not payload.is_valid(self.params.f + 1):
            return
        hops = len(payload.chain)
        local = api.local_time()
        inferred_origin = local - hops * self.params.d
        due = self._due_local.get(pulse_round)
        if due is None:
            # Round not yet armed locally (we are behind): derive the due
            # time we would have used; conservative fallback is the origin.
            due = inferred_origin
            self._due_local[pulse_round] = due
        # Plausibility window: each hop may account for at most one hop's
        # slack.  Outside -> the chain's implied timing is forged.
        if abs(inferred_origin - due) > self.params.margin(
            hops, pulse_round
        ):
            return
        self._adopt(api, pulse_round, inferred_origin)
        if pulse_round not in self._relayed and hops <= self.params.f:
            self._relayed.add(pulse_round)
            own = api.sign(chain_tag(pulse_round))
            api.broadcast(
                ChainMessage(pulse_round, payload.chain + (own,))
            )

    # ------------------------------------------------------------------

    def _originate(self, api: NodeAPI, pulse_round: int) -> None:
        if pulse_round in self._pulsed:
            return
        local = api.local_time()
        self._adopt(api, pulse_round, local)
        if pulse_round not in self._relayed:
            self._relayed.add(pulse_round)
            own = api.sign(chain_tag(pulse_round))
            api.broadcast(ChainMessage(pulse_round, (own,)))

    def _adopt(self, api: NodeAPI, pulse_round: int, origin: float) -> None:
        known = self._origin_estimate.get(pulse_round)
        if known is not None and known <= origin:
            return
        self._origin_estimate[pulse_round] = origin
        api.set_timer(
            origin + self.params.pulse_delay, ("pulse", pulse_round)
        )

    def _pulse(self, api: NodeAPI, pulse_round: int) -> None:
        if pulse_round in self._pulsed:
            return
        origin = self._origin_estimate.get(pulse_round)
        target = origin + self.params.pulse_delay
        if api.local_time() < target - 1e-9:
            return  # superseded by an earlier adopted origin
        self._pulsed.add(pulse_round)
        api.pulse()
        due = target + self.params.period
        self._due_local[pulse_round + 1] = due
        api.set_timer(due, ("due", pulse_round + 1))


class ChainStretchAttack(ByzantineBehavior):
    """Builds maximal chains aimed just inside the plausibility window.

    On learning the first honest signature for a round, the adversary
    appends all ``f`` faulty signatures (chain length ``f + 1``) and holds
    the chain until delivering it makes half the honest nodes infer an
    origin about ``(f + 2)`` hop-slacks *earlier* than the true one — the
    largest shift the per-hop window check tolerates.  Signature chains
    prove authorization, not timing, so nothing in the protocol can
    detect the hold-and-release.  The victims pulse early by the shift;
    the pulse spread grows linearly with ``f``:
    the Θ(n (u + (θ-1) d)) behaviour the paper quotes for [2]-style
    constructions.
    """

    def __init__(self, params: ChainParameters) -> None:
        self.params = params
        self._done: Set[int] = set()

    def on_deliver(self, ctx, record: DeliveryRecord) -> None:
        payload = record.payload
        if not isinstance(payload, ChainMessage):
            return
        pulse_round = payload.pulse_round
        if pulse_round in self._done:
            return
        if not payload.is_valid(self.params.f + 1):
            return
        if payload.chain[0].signer in ctx.faulty:
            return
        self._done.add(pulse_round)
        chain = list(payload.chain[:1])
        for faulty_id in sorted(ctx.faulty):
            if len(chain) >= self.params.f + 1:
                break
            chain.append(ctx.sign_as(faulty_id, chain_tag(pulse_round)))
        hops = len(chain)
        low, _high = ctx.config.delay_bounds(False)
        # The originator sent at ~(now - (d - u_tilde)); make the victims'
        # inferred origin land `shift` before the true origination, where
        # shift stays inside the per-hop window for every round.
        origin = ctx.now - low
        shift = (hops + 1) * self.params.hop_slack
        target_send = origin + hops * self.params.d - shift - low
        message = ChainMessage(pulse_round, tuple(chain))
        ctx.wake_at(
            max(target_send, ctx.now),
            ("chain-release", pulse_round, message),
        )

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "chain-release"):
            return
        _kind, _pulse_round, message = tag
        low, _high = ctx.config.delay_bounds(False)
        src = sorted(ctx.faulty)[0]
        victims = [v for i, v in enumerate(sorted(ctx.honest)) if i % 2 == 0]
        for dst in victims:
            ctx.send_from(src, dst, message, low)

    def describe(self) -> str:
        return "chain-stretch"


def build_chain_simulation(
    params: ChainParameters,
    clocks: Optional[Sequence[HardwareClock]] = None,
    faulty: Sequence[int] = (),
    behavior=None,
    delay_policy: Optional[DelayPolicy] = None,
    seed: int = 0,
    trace: TraceSpec = True,
) -> Simulation:
    """Wire a ready-to-run chain-relay simulation."""
    import random

    config = NetworkConfig(params.n, params.d, params.u)
    if clocks is None:
        rng = random.Random(seed)
        clocks = [
            HardwareClock.random_drift(
                rng,
                params.theta,
                offset=rng.uniform(0.0, params.initial_skew),
                horizon=60.0 * params.period,
                segment_length=params.period,
            )
            for _ in range(params.n)
        ]
    validate_initial_skew(
        [clocks[v] for v in range(params.n) if v not in set(faulty)],
        params.initial_skew,
    )
    return Simulation(
        config=config,
        clocks=clocks,
        protocol_factory=lambda v: ChainRelayNode(params),
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        f=params.f,
        trace=Trace.from_spec(trace),
    )
