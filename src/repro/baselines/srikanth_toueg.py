"""A Srikanth-Toueg-style signed-relay pulser ([28]/[21]/[2]-family).

The classic way to reach resilience ``ceil(n/2) - 1`` with signatures:
each node signs a ``ready`` message when its clock says the round is due,
and *accepts* the round (pulses) as soon as it holds ``f + 1`` valid
``ready`` signatures from distinct signers — at least one of which is
honest, so rounds cannot be triggered arbitrarily early.  Upon acceptance
the node relays the whole signature bundle, pulling everyone else across
the threshold within one message delay.

The skew is therefore Θ(d): an honest node can pulse up to a full maximum
delay after the first one (plus drift terms), regardless of how small the
uncertainty ``u`` is.  This is exactly the baseline the paper's
introduction calls out ("these algorithms have skew Θ(d) >> u"); CPS's
whole contribution is replacing this one-shot threshold trigger with a
measured approximate-agreement step to get skew ``Θ(u + (theta-1) d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.crypto.signatures import Signature, verify
from repro.sim.adversary import ByzantineBehavior
from repro.sim.clocks import HardwareClock, validate_initial_skew
from repro.sim.errors import ConfigurationError
from repro.sim.network import DelayPolicy, NetworkConfig
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import Simulation
from repro.sim.trace import Trace, TraceSpec


def st_tag(pulse_round: int) -> Tuple[str, int]:
    """What a node signs to vouch that round ``pulse_round`` is due."""
    return ("st-ready", pulse_round)


@dataclass(frozen=True)
class StReady:
    """A single signed ``ready`` vote."""

    pulse_round: int
    signature: Signature

    def signatures(self) -> Tuple[Signature, ...]:
        return (self.signature,)


@dataclass(frozen=True)
class StBundle:
    """An acceptance proof: ``f + 1`` distinct ``ready`` signatures."""

    pulse_round: int
    bundle: Tuple[Signature, ...]

    def signatures(self) -> Tuple[Signature, ...]:
        return self.bundle


@dataclass(frozen=True)
class StParameters:
    """Timing for the signed-relay pulser.

    ``period`` is the local time between a pulse and the next round
    becoming due; it must exceed the worst-case catch-up lag
    (``theta * (d + initial_skew)``) for liveness.
    """

    n: int
    f: int
    theta: float
    d: float
    u: float
    period: float
    initial_skew: float

    def __post_init__(self) -> None:
        import math

        if self.f > math.ceil(self.n / 2) - 1:
            raise ConfigurationError(
                f"signed-relay pulser needs f <= ceil(n/2)-1, got "
                f"f={self.f}, n={self.n}"
            )
        floor = self.theta * (self.d + self.initial_skew) * 2.0
        if self.period < floor:
            raise ConfigurationError(
                f"period {self.period} below liveness floor {floor}"
            )

    @property
    def skew_bound(self) -> float:
        """One relay delay plus processing slack: Θ(d)."""
        return self.d

    @property
    def p_max_bound(self) -> float:
        return self.theta * self.period + self.d


def derive_st_parameters(
    theta: float,
    d: float,
    u: float,
    n: int,
    f: Optional[int] = None,
    initial_skew: Optional[float] = None,
) -> StParameters:
    """Reasonable defaults: period at twice the liveness floor."""
    import math

    if f is None:
        f = math.ceil(n / 2) - 1
    if initial_skew is None:
        initial_skew = d
    period = 4.0 * theta * (d + initial_skew)
    return StParameters(n, f, theta, d, u, period, initial_skew)


class SrikanthTouegNode(TimedProtocol):
    """One honest node of the signed-relay pulser."""

    def __init__(self, params: StParameters) -> None:
        self.params = params
        self.accepted_round = 0
        self._sent_ready: Set[int] = set()
        self._votes: Dict[int, Dict[int, Signature]] = {}

    def on_start(self, api: NodeAPI) -> None:
        api.set_timer(self.params.initial_skew + self.params.period, ("due", 1))

    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        kind, pulse_round = tag
        if kind != "due" or pulse_round != self.accepted_round + 1:
            return
        self._send_ready(api, pulse_round)
        self._try_accept(api, pulse_round)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if isinstance(payload, StReady):
            self._add_vote(payload.pulse_round, payload.signature)
        elif isinstance(payload, StBundle):
            for signature in payload.bundle:
                self._add_vote(payload.pulse_round, signature)
        else:
            return
        self._try_accept(api, self.accepted_round + 1)

    # ------------------------------------------------------------------

    def _add_vote(self, pulse_round: int, signature: Signature) -> None:
        if pulse_round <= self.accepted_round:
            return
        if not verify(signature, signature.signer, st_tag(pulse_round)):
            return
        self._votes.setdefault(pulse_round, {})[signature.signer] = signature

    def _send_ready(self, api: NodeAPI, pulse_round: int) -> None:
        if pulse_round in self._sent_ready:
            return
        self._sent_ready.add(pulse_round)
        signature = api.sign(st_tag(pulse_round))
        self._add_vote(pulse_round, signature)
        api.broadcast(StReady(pulse_round, signature))

    def _try_accept(self, api: NodeAPI, pulse_round: int) -> None:
        votes = self._votes.get(pulse_round, {})
        if len(votes) < self.params.f + 1:
            return
        # Accept: pulse, relay the proof, join the vote, arm the next round.
        self.accepted_round = pulse_round
        api.pulse()
        bundle = tuple(
            signature
            for _, signature in sorted(votes.items())[: self.params.f + 1]
        )
        api.broadcast(StBundle(pulse_round, bundle))
        self._send_ready(api, pulse_round)  # helps stragglers' counts
        api.set_timer(
            api.local_time() + self.params.period,
            ("due", pulse_round + 1),
        )
        self._votes.pop(pulse_round, None)
        # Votes for the next round may already be buffered.
        self._try_accept(api, pulse_round + 1)


class StRushAttack(ByzantineBehavior):
    """Faulty nodes vote for every round as early as they can.

    With ``f`` faulty signatures pre-staged, a round fires as soon as the
    *first* honest node believes it is due — the adversary maximally
    advances pulses and stretches the gap to the last honest node toward
    the full Θ(d) bound.
    """

    def __init__(self, params: StParameters) -> None:
        self.params = params
        self._voted: Set[int] = set()

    def on_start(self, ctx) -> None:
        ctx.wake_at(0.0, ("st-vote", 1))

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index + 1 not in self._voted:
            ctx.wake_at(time, ("st-vote", index + 1))

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "st-vote"):
            return
        pulse_round = tag[1]
        if pulse_round in self._voted:
            return
        self._voted.add(pulse_round)
        low, _high = ctx.config.delay_bounds(False)
        for src in sorted(ctx.faulty):
            signature = ctx.sign_as(src, st_tag(pulse_round))
            for dst in ctx.honest:
                ctx.send_from(src, dst, StReady(pulse_round, signature), low)

    def describe(self) -> str:
        return "st-rush"


def build_st_simulation(
    params: StParameters,
    clocks: Optional[Sequence[HardwareClock]] = None,
    faulty: Sequence[int] = (),
    behavior=None,
    delay_policy: Optional[DelayPolicy] = None,
    seed: int = 0,
    trace: TraceSpec = True,
) -> Simulation:
    """Wire a ready-to-run signed-relay pulser simulation."""
    import random

    config = NetworkConfig(params.n, params.d, params.u)
    if clocks is None:
        rng = random.Random(seed)
        clocks = [
            HardwareClock.random_drift(
                rng,
                params.theta,
                offset=rng.uniform(0.0, params.initial_skew),
                horizon=100.0 * params.period,
                segment_length=params.period,
            )
            for _ in range(params.n)
        ]
    validate_initial_skew(
        [clocks[v] for v in range(params.n) if v not in set(faulty)],
        params.initial_skew,
    )
    return Simulation(
        config=config,
        clocks=clocks,
        protocol_factory=lambda v: SrikanthTouegNode(params),
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        f=params.f,
        trace=Trace.from_spec(trace),
    )
