"""The Lynch-Welch pulse synchronizer [25] (signature-free baseline).

Structurally the ancestor of Algorithm CPS: each node broadcasts a plain
(unsigned) pulse announcement, converts reception times into offset
estimates, discards the ``f`` lowest and highest estimates, and corrects by
the midpoint of the rest.  Without signatures there is no echo mechanism
and no ⊥ detection, hence:

* resilience tops out at ``f < n/3`` (``ceil(n/3) - 1``) — a faulty node
  can *appear at a different position of the sorted estimate vector to
  every honest node*, which the fixed discard of ``f`` per side only
  survives when honest values outnumber faulty ones 2:1 among the
  retained entries;
* a missing announcement cannot be proven faulty, so it is replaced by a
  window-end (maximally late) estimate rather than a ⊥ that would relax
  the discard count.

With ``f < n/3`` the skew bound has the same ``Theta(u + (theta-1) d)``
form as CPS (the paper: "the same asymptotic bounds on skew can be
achieved as in the fault-free case"); we reuse the CPS parameter
derivation, which is valid (slightly conservative) for LW.  Experiment E5
runs the *same* timing attack against LW and CPS across the fault range to
exhibit the resilience gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.core.params import ProtocolParameters, derive_parameters
from repro.core.tcb import offset_estimate
from repro.sim.adversary import ByzantineBehavior
from repro.sim.clocks import EPS, HardwareClock, validate_initial_skew
from repro.sim.network import DelayPolicy, NetworkConfig
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import Simulation
from repro.sim.trace import Trace, TraceSpec
from repro.sync.approx_agreement import midpoint_rule


def lw_max_faults(n: int) -> int:
    """Signature-free resilience: the largest ``f`` with ``n >= 3f + 1``."""
    return max((n - 1) // 3, 0)


def derive_lw_parameters(
    theta: float,
    d: float,
    u: float,
    n: int,
    f: Optional[int] = None,
) -> ProtocolParameters:
    """Lynch-Welch parameters (CPS derivation at LW's resilience)."""
    if f is None:
        f = lw_max_faults(n)
    return derive_parameters(theta, d, u, n, f=f)


@dataclass(frozen=True)
class LwMessage:
    """A plain (unsigned) pulse announcement for round ``r``."""

    pulse_round: int


class LynchWelchNode(TimedProtocol):
    """One honest node of the Lynch-Welch synchronizer."""

    def __init__(self, params: ProtocolParameters) -> None:
        self.params = params
        self.pulse_round = 0
        self.pulse_local = 0.0
        self._arrivals: Dict[int, float] = {}
        self.summaries: List[Dict[str, Any]] = []

    def on_start(self, api: NodeAPI) -> None:
        api.set_timer(self.params.S, ("pulse",))

    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        kind = tag[0]
        if kind == "pulse":
            self._begin_round(api)
        elif kind == "send" and tag[1] == self.pulse_round:
            api.broadcast(LwMessage(self.pulse_round))
        elif kind == "window-end" and tag[1] == self.pulse_round:
            self._complete_round(api)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if not isinstance(payload, LwMessage):
            return
        if payload.pulse_round != self.pulse_round:
            return
        local = api.local_time()
        in_window = (
            self.pulse_local
            < local
            <= self.pulse_local + self.params.tcb_window + EPS
        )
        if in_window and sender not in self._arrivals:
            self._arrivals[sender] = local

    def _begin_round(self, api: NodeAPI) -> None:
        self.pulse_round += 1
        self.pulse_local = api.local_time()
        self._arrivals = {}
        api.pulse()
        api.set_timer(
            self.pulse_local + self.params.dealer_send_offset,
            ("send", self.pulse_round),
        )
        api.set_timer(
            self.pulse_local + self.params.tcb_window + 2.0 * EPS,
            ("window-end", self.pulse_round),
        )

    def _complete_round(self, api: NodeAPI) -> None:
        window_end = self.pulse_local + self.params.tcb_window
        estimates: Dict[int, float] = {api.node_id: 0.0}
        for w in range(api.n):
            if w == api.node_id:
                continue
            arrival = self._arrivals.get(w, window_end)
            estimates[w] = offset_estimate(
                arrival,
                self.pulse_local,
                self.params.d,
                self.params.u,
                self.params.S,
            )
        # No ⊥ evidence without signatures: always discard f per side.
        correction, interval = midpoint_rule(
            list(estimates.values()), 0, self.params.f
        )
        self.summaries.append(
            {
                "round": self.pulse_round,
                "estimates": estimates,
                "interval": interval,
                "correction": correction,
            }
        )
        api.annotate("lw-round", self.summaries[-1])
        api.set_timer(
            self.pulse_local + correction + self.params.T, ("pulse",)
        )


class LwTimingAttack(ByzantineBehavior):
    """The classic equivocation-in-time attack Lynch-Welch cannot survive
    beyond ``f < n/3``.

    Every faulty node announces each round *twice*: immediately (arriving
    near the start of every window) to ``group_a`` and much later to the
    rest — without signatures and echoes nobody can prove the
    inconsistency.  For ``f >= n/3`` the discard rule retains different
    honest extremes at the two groups, corrections diverge, and the skew
    grows round over round.  The same behaviour pointed at CPS is caught
    by the echo rule (tests assert both).
    """

    def __init__(
        self,
        params: ProtocolParameters,
        group_a: Sequence[int],
        late_fraction: float = 0.8,
    ) -> None:
        self.params = params
        self.group_a: Set[int] = set(group_a)
        self.late_fraction = late_fraction
        self._scheduled: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._scheduled:
            return
        self._scheduled.add(index)
        ctx.wake_at(time + self.params.S, ("early", index))
        late_wait = self.late_fraction * self.params.tcb_window
        ctx.wake_at(time + self.params.S + late_wait, ("late", index))

    def on_wakeup(self, ctx, tag) -> None:
        if not isinstance(tag, tuple) or tag[0] not in ("early", "late"):
            return
        phase, pulse_round = tag
        low, high = ctx.config.delay_bounds(False)
        targets = [
            v
            for v in ctx.honest
            if (v in self.group_a) == (phase == "early")
        ]
        for src in sorted(ctx.faulty):
            for dst in targets:
                ctx.send_from(
                    src,
                    dst,
                    LwMessage(pulse_round),
                    low if phase == "early" else high,
                )

    def describe(self) -> str:
        return "lw-timing-split"


def build_lw_simulation(
    params: ProtocolParameters,
    clocks: Optional[Sequence[HardwareClock]] = None,
    faulty: Sequence[int] = (),
    behavior=None,
    delay_policy: Optional[DelayPolicy] = None,
    seed: int = 0,
    trace: TraceSpec = True,
) -> Simulation:
    """Wire a ready-to-run Lynch-Welch simulation (mirrors the CPS one)."""
    from repro.core.cps import default_clocks

    config = NetworkConfig(params.n, params.d, params.u)
    if clocks is None:
        clocks = default_clocks(params, seed=seed)
    validate_initial_skew(
        [clocks[v] for v in range(params.n) if v not in set(faulty)],
        params.S,
    )
    return Simulation(
        config=config,
        clocks=clocks,
        protocol_factory=lambda v: LynchWelchNode(params),
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        f=params.f,
        trace=Trace.from_spec(trace),
    )
