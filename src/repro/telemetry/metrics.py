"""The metrics registry: counters, gauges, histograms, wall-time spans.

One :class:`Telemetry` handle instruments one unit of work (a campaign
trial, a perf-case run, an ad-hoc simulation).  The simulator feeds it
from the hot path through pre-hoisted references — see
``Simulation.run`` — so the enabled-mode overhead is a dict increment
per event and the disabled mode pays a single ``is None`` test, the
same contract as the ``checks=`` and ``dynamics=`` hooks.

Determinism contract
--------------------

:meth:`Telemetry.as_dict` (the snapshot persisted into campaign
sidecars) contains **only deterministic quantities**: counters, gauges,
and histograms of simulated values, plus span *counts*.  Wall-clock
span timings are kept on the handle (:meth:`Telemetry.span_timings`)
and never serialized, so ``<spec_key>.telemetry.json`` sidecars are
byte-identical across worker counts and machines.  The campaign trial
wrapper clears the process-global signature-verification memo at trial
start, which makes the ``crypto.verify.*`` deltas per-trial exact and
independent of how trials were partitioned over pool workers.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.crypto.signatures import verify_cache_stats

#: Counter names for the per-priority dispatch slots of
#: :attr:`Telemetry.dispatch` (indexed by the scheduler's priority int).
DISPATCH_NAMES: Tuple[str, ...] = (
    "events.dispatched.timer",
    "events.dispatched.delivery",
    "events.dispatched.adversary",
    "events.dispatched.churn",
)

#: Counters the scheduler's hot loop bumps with a bare ``dict[key] += 1``
#: — pre-seeded to 0 at handle construction so the key always exists.
HOT_COUNTERS: Tuple[str, ...] = (
    "events.cancelled.lazy",
    "messages.sent.honest",
    "messages.sent.faulty",
    "messages.delivered.honest",
    "messages.delivered.adversary",
    "messages.dropped.inactive",
    "timers.set",
    "timers.dropped.inactive",
    "pulses.recorded",
    "tcb.echoes",
)

#: Fixed bucket boundaries for the message-delay histogram, in units of
#: real time (the registry scenarios all use ``d = 1.0``, so these read
#: as fractions of the maximum delay).
DELAY_BUCKETS: Tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5)

#: Every fixed metric name with a one-line description — the source of
#: truth for ``repro telemetry list``, the ``--metric`` did-you-mean
#: validation, and the catalog table in ``docs/OBSERVABILITY.md``.
#: Dynamic families (``annotations.<kind>``, ``dynamics.applied.<kind>``)
#: are validated against the loaded payload instead.
METRIC_CATALOG: Dict[str, str] = {
    "events.dispatched.timer": "timer events processed by the main loop",
    "events.dispatched.delivery": "message deliveries processed",
    "events.dispatched.adversary": "adversary wakeups processed",
    "events.dispatched.churn": "membership-change events processed",
    "events.cancelled.lazy": "cancelled heap keys dropped at the front",
    "events.cancelled.requested": "EventQueue.cancel() calls that hit",
    "events.processed": "total events the simulation processed (gauge)",
    "messages.sent.honest": "sends dispatched by honest protocol code",
    "messages.sent.faulty": "knowledge-checked sends by faulty nodes",
    "messages.delivered.honest": "deliveries handled by an active node",
    "messages.delivered.adversary": "deliveries absorbed by faulty nodes",
    "messages.dropped.inactive": "deliveries dropped at crashed nodes",
    "messages.delay": "histogram of network delays chosen per message",
    "timers.set": "timers requested via NodeAPI.set_timer",
    "timers.dropped.inactive": "timers that fired at crashed nodes",
    "pulses.recorded": "honest pulses generated",
    "tcb.echoes": "TCB echo amplifications (forwarded dealer messages)",
    "tcb.accepts": "TCB instances that observably accepted (Lemma 11)",
    "tcb.instances.resolved": "TCB instances resolved at round completion",
    "tcb.instances.bot": "TCB instances resolved to bot",
    "crypto.verify.hits": "signature-verification memo hits (per trial)",
    "crypto.verify.misses": "signature-verification memo misses",
    "crypto.verify.cache_size": "distinct verification keys memoized",
    "dynamics.deactivate": "scheduler-level node deactivations",
    "dynamics.activate": "scheduler-level node (re)activations",
    "dynamics.corrupt": "honest nodes flipped Byzantine mid-run",
    "dynamics.restore": "Byzantine nodes handed back to the honest side",
    "knowledge.signatures.known": "honest signatures the adversary learned",
    "knowledge.payloads.memoized": "payload walks memoized (gauge)",
    "sim.end_time": "simulated real time when the run stopped (gauge)",
}


def available_metrics(payload: Optional[Dict[str, Any]] = None) -> List[str]:
    """Catalog names plus any dynamic metrics present in ``payload``."""
    names = set(METRIC_CATALOG)
    if payload is not None:
        aggregate = payload.get("aggregate") or {}
        for section in ("counters", "gauges", "histograms", "spans"):
            names.update((aggregate.get(section) or {}).keys())
    return sorted(names)


class Histogram:
    """A fixed-boundary histogram of a simulated quantity.

    ``counts[i]`` tallies observations in ``(boundaries[i-1],
    boundaries[i]]`` with an implicit ``+inf`` final boundary.  Both the
    boundaries and the float ``total`` are deterministic: observations
    arrive in simulation order, which worker partitioning cannot change.
    """

    __slots__ = ("boundaries", "counts", "count", "total")

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class Telemetry:
    """One run's worth of instrumentation, fed by the simulator.

    The scheduler hoists :attr:`counters` (a plain dict of int tallies)
    and :attr:`dispatch` (a per-priority list the main loop indexes
    directly) out of its loop; everything else is updated through the
    cold-path hooks below.
    """

    __slots__ = (
        "label",
        "counters",
        "dispatch",
        "gauges",
        "histograms",
        "meta",
        "delay_hist",
        "_spans",
        "_verify_base",
        "_policies",
    )

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.counters: Dict[str, int] = {name: 0 for name in HOT_COUNTERS}
        self.dispatch: List[int] = [0, 0, 0, 0]
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.meta: Dict[str, Any] = {}
        self.delay_hist = Histogram(DELAY_BUCKETS)
        self.histograms["messages.delay"] = self.delay_hist
        self._spans: Dict[str, List[float]] = {}
        self._verify_base = verify_cache_stats()
        self._policies: set = set()

    # -- counters -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    # -- spans ----------------------------------------------------------

    def observe_span(self, name: str, elapsed: float) -> None:
        entry = self._spans.get(name)
        if entry is None:
            entry = self._spans[name] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += elapsed
        if elapsed > entry[2]:
            entry[2] = elapsed

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block of work under ``name`` (wall-clock, not
        serialized into snapshots)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe_span(name, time.perf_counter() - start)

    def span_timings(self) -> Dict[str, Dict[str, float]]:
        """Wall-clock span stats (count/total/max seconds) — live
        consumption only; deliberately absent from :meth:`as_dict`."""
        return {
            name: {"count": entry[0], "total_s": entry[1], "max_s": entry[2]}
            for name, entry in sorted(self._spans.items())
        }

    # -- simulator hooks (cold paths; the hot loop uses the hoisted
    # ``counters`` / ``dispatch`` references directly) ------------------

    def attach(self, sim: Any) -> None:
        """Called from ``Simulation.__init__`` when this handle is in
        effect; records run-shape metadata."""
        self._policies.add(sim.delay_policy.describe())
        self.meta["delay_policies"] = sorted(self._policies)
        self.meta.setdefault("n", sim.config.n)
        self.meta.setdefault("f", sim.f)

    def on_honest_send(self, src: int, payload: Any, delay: float) -> None:
        counters = self.counters
        counters["messages.sent.honest"] += 1
        # An echo amplification is a forwarded TCB message: the payload
        # names a dealer other than the node relaying it.
        dealer = getattr(payload, "dealer", None)
        if dealer is not None and dealer != src:
            counters["tcb.echoes"] += 1
        self.delay_hist.observe(delay)

    def on_faulty_send(self, delay: float) -> None:
        self.counters["messages.sent.faulty"] += 1
        self.delay_hist.observe(delay)

    def on_annotate(self, kind: str, details: Any) -> None:
        self.incr(f"annotations.{kind}")
        if kind == "cps-round":
            num_bot = getattr(details, "num_bot", None)
            estimates = getattr(details, "estimates", None)
            if num_bot is not None and estimates is not None:
                self.incr("tcb.instances.resolved", len(estimates))
                self.incr("tcb.instances.bot", num_bot)
        elif kind == "tcb-accept":
            self.incr("tcb.accepts")

    def finalize(self, sim: Any) -> None:
        """Called at the end of ``Simulation.run``: fold in the gauges
        that are cheapest to read once per run."""
        info = verify_cache_stats()
        base = self._verify_base
        self.counters["crypto.verify.hits"] = info.hits - base.hits
        self.counters["crypto.verify.misses"] = info.misses - base.misses
        gauges = self.gauges
        gauges["crypto.verify.cache_size"] = info.currsize
        stats = sim.knowledge.stats()
        gauges["knowledge.signatures.known"] = stats["signatures_known"]
        gauges["knowledge.payloads.memoized"] = stats["payloads_memoized"]
        gauges["events.processed"] = sim.events_processed
        gauges["events.cancelled.requested"] = sim.queue.cancelled
        gauges["sim.end_time"] = sim.now

    # -- snapshots ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """The deterministic snapshot persisted into sidecars."""
        counters = dict(self.counters)
        for name, count in zip(DISPATCH_NAMES, self.dispatch):
            if count:
                counters[name] = count
        return {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
                if histogram.count
            },
            "spans": {
                name: int(entry[0])
                for name, entry in sorted(self._spans.items())
            },
            "meta": {key: self.meta[key] for key in sorted(self.meta)},
        }


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Aggregate snapshots: counters/spans/histograms sum, gauges max.

    Gauges are per-run readings (end time, table sizes), so the maximum
    is the only order-independent reduction that stays meaningful.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    spans: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snapshot.get("gauges") or {}).items():
            if name not in gauges or value > gauges[name]:
                gauges[name] = value
        for name, value in (snapshot.get("spans") or {}).items():
            spans[name] = spans.get(name, 0) + value
        for name, payload in (snapshot.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "boundaries": list(payload["boundaries"]),
                    "counts": list(payload["counts"]),
                    "count": payload["count"],
                    "total": payload["total"],
                }
            elif merged["boundaries"] == list(payload["boundaries"]):
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], payload["counts"])
                ]
                merged["count"] += payload["count"]
                merged["total"] += payload["total"]
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {
            name: histograms[name] for name in sorted(histograms)
        },
        "spans": {name: spans[name] for name in sorted(spans)},
    }
