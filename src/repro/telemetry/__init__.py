"""Observability: metrics registry, campaign sidecars, progress, profiling.

The subsystem splits into five small layers:

``metrics``
    :class:`Telemetry` — counters/gauges/histograms/spans with a
    deterministic :meth:`~Telemetry.as_dict` snapshot, plus the
    :data:`METRIC_CATALOG` of fixed metric names.
``context``
    The ambient per-process session (:func:`telemetry_session`) through
    which campaign trials reach simulations built deep inside registered
    builders without changing any builder signature.
``campaign``
    The instrumented trial wrapper and the byte-stable
    ``<spec_key>.telemetry.json`` sidecar behind
    ``repro campaign run --telemetry``, plus aggregate/diff helpers for
    the ``repro telemetry`` subcommands.
``progress``
    Live heartbeats (trials done/total, rolling events/sec, ETA) on
    stderr so long full-tier runs are no longer silent.
``profiler``
    Per-trial cProfile capture and cross-trial hotspot tabulation
    behind ``repro campaign run --profile``.

Only the light layers (metrics, context) are imported here; the
simulator imports :mod:`repro.telemetry.context` at module load, so
this package must not pull in the campaign stack.

See ``docs/OBSERVABILITY.md`` for the metric catalog, sidecar format,
and profiling workflow.
"""

from repro.telemetry.context import (
    activate,
    active_telemetry,
    deactivate,
    telemetry_session,
)
from repro.telemetry.metrics import (
    DELAY_BUCKETS,
    DISPATCH_NAMES,
    METRIC_CATALOG,
    Histogram,
    Telemetry,
    available_metrics,
    merge_snapshots,
)

__all__ = [
    "DELAY_BUCKETS",
    "DISPATCH_NAMES",
    "METRIC_CATALOG",
    "Histogram",
    "Telemetry",
    "activate",
    "active_telemetry",
    "available_metrics",
    "deactivate",
    "merge_snapshots",
    "telemetry_session",
]
