"""Per-trial cProfile capture and cross-trial hotspot tabulation.

``repro campaign run --profile`` wraps every executed trial in a
:class:`cProfile.Profile` (inside the worker process, so pool mode works
unchanged), reduces the raw stats to a small list of row dicts *before*
they travel back over the pool pipe, and attaches them to the trial
record as ``metrics["profile"]``.  The CLI then merges rows across
trials and prints the top-N hotspots by own-time.

Profiling rows carry wall-clock timings and are therefore excluded from
the deterministic ``.telemetry.json`` sidecars; they live only in the
trial records and the live CLI output.
"""

from __future__ import annotations

import os
import pstats
from typing import Any, Dict, Iterable, List

#: Keep this many path components when labelling a function.
_PATH_PARTS = 2


def _function_label(func: Any) -> str:
    filename, line, name = func
    if filename.startswith("<"):  # builtins, compiled stubs
        return f"{filename}:{name}"
    parts = filename.replace(os.sep, "/").split("/")
    short = "/".join(parts[-_PATH_PARTS:])
    return f"{short}:{line}:{name}"


def profile_rows(profiler: Any, top: int = 15) -> List[Dict[str, Any]]:
    """Reduce a finished ``cProfile.Profile`` to its top-N own-time rows."""
    stats = pstats.Stats(profiler)
    rows = []
    for func, (_cc, ncalls, tottime, cumtime, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        rows.append(
            {
                "function": _function_label(func),
                "calls": ncalls,
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    rows.sort(key=lambda row: (-row["tottime"], row["function"]))
    return rows[:top]


def aggregate_hotspots(
    records: Iterable[Any], top: int = 15
) -> List[Dict[str, Any]]:
    """Merge per-trial profile rows (summing by function) across a run."""
    merged: Dict[str, Dict[str, Any]] = {}
    profiled = 0
    for record in records:
        rows = record.metrics.get("profile")
        if not rows:
            continue
        profiled += 1
        for row in rows:
            entry = merged.get(row["function"])
            if entry is None:
                merged[row["function"]] = dict(row)
            else:
                entry["calls"] += row["calls"]
                entry["tottime"] += row["tottime"]
                entry["cumtime"] += row["cumtime"]
    ranked = sorted(
        merged.values(),
        key=lambda row: (-row["tottime"], row["function"]),
    )
    return ranked[:top]


def render_hotspots(rows: List[Dict[str, Any]]) -> str:
    """A fixed-width hotspot table for terminal output."""
    if not rows:
        return "no profile data captured (no executed trials?)"
    width = max(len(row["function"]) for row in rows)
    lines = [
        f"{'function':<{width}}  {'calls':>9}  {'tottime':>9}  "
        f"{'cumtime':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['function']:<{width}}  {row['calls']:>9}  "
            f"{row['tottime']:>9.4f}  {row['cumtime']:>9.4f}"
        )
    return "\n".join(lines)
