"""Ambient telemetry session: how instrumentation reaches every builder.

A :class:`~repro.telemetry.metrics.Telemetry` handle can be passed to
:class:`~repro.sim.scheduler.Simulation` explicitly (``telemetry=``),
but campaign trials construct their simulations deep inside registered
builders whose signatures must not change (they feed the content-hashed
``case_key``).  Instead, the campaign layer *activates* a handle for the
duration of one trial and ``Simulation.__init__`` picks it up when no
explicit handle was given:

* :func:`activate` / :func:`deactivate` — install/remove the ambient
  handle for the current process;
* :func:`active_telemetry` — the current handle or ``None``;
* :func:`telemetry_session` — context-manager form used by the trial
  wrapper and tests.

The state is a module global, which is exactly right for the execution
model: pool workers are separate processes, each activating its own
handle around its own trial, and serial mode runs trials one at a time.
With no active session ``active_telemetry()`` returns ``None`` and the
simulator's instrumentation reduces to ``is None`` tests — the same
zero-cost-when-unused contract as ``checks=`` and ``dynamics=``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

_ACTIVE: Optional[Any] = None


def activate(telemetry: Any) -> None:
    """Install ``telemetry`` as the process-wide ambient handle."""
    global _ACTIVE
    _ACTIVE = telemetry


def deactivate() -> None:
    """Remove the ambient handle (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active_telemetry() -> Optional[Any]:
    """The ambient handle simulations adopt, or ``None``."""
    return _ACTIVE


@contextmanager
def telemetry_session(telemetry: Any) -> Iterator[Any]:
    """Activate ``telemetry`` for the duration of a ``with`` block."""
    previous = _ACTIVE
    activate(telemetry)
    try:
        yield telemetry
    finally:
        activate(previous)
