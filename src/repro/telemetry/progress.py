"""Live campaign progress heartbeats: done/total, events/sec, ETA.

Long full-tier campaign runs used to be silent until the final table.
:class:`ProgressReporter` plugs into the executor's per-result hook
(``execute_campaign(..., progress=...)``) and prints throttled one-line
heartbeats to **stderr** — stdout stays reserved for the byte-stable
tables, so piping ``repro campaign run`` output remains safe.

The rolling events/sec figure comes from the last few executed trials'
``events`` metric and wall duration; the ETA extrapolates the observed
trial rate over the remaining count.  Both are advisory (wall-clock
derived) and never persisted.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Any, Callable, Optional, TextIO

#: How many recent trials feed the rolling events/sec estimate.
_ROLLING_WINDOW = 16


class ProgressReporter:
    """Throttled progress lines for one campaign execution."""

    def __init__(
        self,
        label: str,
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        self.started = clock()
        self.done = 0
        self.total = 0
        self.lines_emitted = 0
        self._last_emit: Optional[float] = None
        self._recent: deque = deque(maxlen=_ROLLING_WINDOW)

    # -- executor hook --------------------------------------------------

    def update(self, done: int, total: int, record: Any) -> None:
        """The ``progress`` callback: one executed trial completed."""
        self.done, self.total = done, total
        if record is not None and record.ok and not record.cached:
            events = record.metrics.get("events")
            if events and record.duration > 0:
                self._recent.append((events, record.duration))
        now = self.clock()
        if (
            self._last_emit is not None
            and done < total
            and now - self._last_emit < self.interval
        ):
            return
        self._last_emit = now
        self._emit(now)

    def finish(self) -> None:
        """Print the closing summary line."""
        elapsed = self.clock() - self.started
        self._print(
            f"[{self.label}] done: {self.done}/{self.total} trials "
            f"in {elapsed:.1f}s"
        )

    # -- rendering ------------------------------------------------------

    def rolling_events_per_sec(self) -> Optional[float]:
        events = sum(entry[0] for entry in self._recent)
        duration = sum(entry[1] for entry in self._recent)
        if not events or duration <= 0:
            return None
        return events / duration

    def eta_seconds(self, now: float) -> Optional[float]:
        if not self.done or self.done >= self.total:
            return None
        elapsed = now - self.started
        if elapsed <= 0:
            return None
        return elapsed / self.done * (self.total - self.done)

    def _emit(self, now: float) -> None:
        percent = 100.0 * self.done / self.total if self.total else 100.0
        line = f"[{self.label}] {self.done}/{self.total} trials "
        line += f"({percent:.0f}%)"
        rate = self.rolling_events_per_sec()
        if rate is not None:
            line += f" — {rate:,.0f} ev/s"
        eta = self.eta_seconds(now)
        if eta is not None:
            line += f" — ETA {eta:.0f}s"
        self._print(line)

    def _print(self, line: str) -> None:
        print(line, file=self.stream, flush=True)
        self.lines_emitted += 1
