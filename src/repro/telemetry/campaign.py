"""Campaign-level telemetry: instrumented trials and byte-stable sidecars.

``repro campaign run --telemetry`` routes every executed trial through
:func:`run_instrumented` (a module-level function, so pool workers
receive it by pickle reference exactly like the plain runner): the
wrapper clears the process-global signature-verification memo, activates
a fresh :class:`~repro.telemetry.metrics.Telemetry` handle for the
duration of the trial, and attaches the deterministic snapshot to the
record as ``metrics["telemetry"]``.

:func:`campaign_telemetry` then folds a finished
:class:`~repro.campaigns.executor.CampaignRun` into the
``<spec_key>.telemetry.json`` sidecar payload (written through
:meth:`~repro.campaigns.store.ResultStore.write_summary`, mirroring the
``.perf.json``/``.check.json`` pattern).  The payload contains only
deterministic quantities, so sidecars are byte-identical across worker
counts — asserted by ``tests/test_telemetry.py``.

Instrumentation identity note: telemetry is an *execution-time* option.
It is deliberately not part of :class:`~repro.campaigns.spec.
MeasurementSpec`, so enabling it changes neither ``case_key`` nor
``spec_key`` — instrumented and bare runs of the same campaign share
the same cache entries, as they produce identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.campaigns.executor import CampaignRun, run_trial
from repro.crypto.signatures import clear_verify_cache
from repro.telemetry.context import activate, deactivate
from repro.telemetry.metrics import Telemetry, merge_snapshots

#: Sidecar kind under :meth:`ResultStore.write_summary` /
#: :meth:`ResultStore.load_summary`.
SIDECAR_KIND = "telemetry"


@dataclass(frozen=True)
class InstrumentationPlan:
    """Picklable per-trial instrumentation options (pool-safe)."""

    telemetry: bool = False
    profile: bool = False
    profile_top: int = 15

    @property
    def active(self) -> bool:
        return self.telemetry or self.profile


def run_instrumented(task: Any) -> Any:
    """Top-level runner for (plan, builder, :class:`InstrumentationPlan`)
    triples — the instrumented sibling of the executor's plain runner.

    Clearing the verification memo at trial start makes the per-trial
    ``crypto.verify.*`` deltas independent of which trials shared this
    worker process before — the memo is semantics-free, so this only
    affects timing, never results.
    """
    plan, builder, options = task
    telemetry = None
    profiler = None
    if options.telemetry:
        clear_verify_cache()
        telemetry = Telemetry(label=plan.case_key)
    try:
        if telemetry is not None:
            activate(telemetry)
        if options.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
        record = run_trial(plan, builder=builder)
    finally:
        if profiler is not None:
            profiler.disable()
        if telemetry is not None:
            deactivate()
    if telemetry is not None:
        record.metrics["telemetry"] = telemetry.as_dict()
    if profiler is not None:
        from repro.telemetry.profiler import profile_rows

        record.metrics["profile"] = profile_rows(
            profiler, options.profile_top
        )
    return record


# ----------------------------------------------------------------------
# Sidecar payloads


def campaign_telemetry(run: CampaignRun) -> Dict[str, Any]:
    """The ``<spec_key>.telemetry.json`` payload for a finished run.

    Contains per-trial snapshots (plan order) plus their aggregate.
    Cache state is deliberately excluded: the payload is a pure function
    of the executed trials' simulated behaviour.
    """
    trials: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    for record in run.records:
        snapshot = record.metrics.get("telemetry")
        if not snapshot:
            continue
        trials.append(
            {
                "index": record.index,
                "case_key": record.case_key,
                "builder": record.builder,
                "telemetry": snapshot,
            }
        )
        snapshots.append(snapshot)
    payload = {
        "campaign": run.spec.name,
        "scale": run.scale,
        "spec_key": run.spec.spec_key(run.scale),
        "trials": len(run.records),
        "instrumented": len(trials),
        "failed": run.failed,
        "aggregate": merge_snapshots(snapshots),
        "records": trials,
    }
    if run.adaptive is not None:
        # Only present on adaptive runs, so fixed-tier sidecars stay
        # byte-identical; per_cell is dropped (it scales with the grid
        # and duplicates what the store already holds).
        payload["adaptive"] = {
            k: v for k, v in run.adaptive.items() if k != "per_cell"
        }
    return payload


def aggregate_payloads(
    payloads: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge several sidecar payloads (``repro telemetry aggregate``)."""
    return {
        "campaigns": sorted(
            {
                f"{payload.get('campaign', '?')}"
                f"[{payload.get('scale', '?')}]"
                for payload in payloads
            }
        ),
        "sidecars": len(payloads),
        "instrumented": sum(
            payload.get("instrumented", 0) for payload in payloads
        ),
        "aggregate": merge_snapshots(
            [payload.get("aggregate") or {} for payload in payloads]
        ),
    }


def diff_rows(
    a: Dict[str, Any], b: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Counter/gauge deltas between two sidecar payloads' aggregates."""
    rows: List[Dict[str, Any]] = []
    for section in ("counters", "gauges"):
        left = (a.get("aggregate") or {}).get(section) or {}
        right = (b.get("aggregate") or {}).get(section) or {}
        for name in sorted(set(left) | set(right)):
            left_value = left.get(name, 0)
            right_value = right.get(name, 0)
            rows.append(
                {
                    "metric": name,
                    "section": section,
                    "a": left_value,
                    "b": right_value,
                    "delta": right_value - left_value,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Rendering


def _filter(
    section: Dict[str, Any], metrics: Optional[Sequence[str]]
) -> Dict[str, Any]:
    if not metrics:
        return section
    wanted = set(metrics)
    return {
        name: value for name, value in section.items() if name in wanted
    }


def render_aggregate(
    aggregate: Dict[str, Any],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Render one aggregate section (counters/gauges/spans/histograms)."""
    lines: List[str] = []
    counters = _filter(aggregate.get("counters") or {}, metrics)
    gauges = _filter(aggregate.get("gauges") or {}, metrics)
    spans = _filter(aggregate.get("spans") or {}, metrics)
    histograms = _filter(aggregate.get("histograms") or {}, metrics)
    names = (
        list(counters) + list(gauges) + list(spans) + list(histograms)
    )
    width = max((len(name) for name in names), default=10)
    for name, value in counters.items():
        lines.append(f"  {name:<{width}}  {value:>14,}")
    for name, value in gauges.items():
        lines.append(f"  {name:<{width}}  {value:>14,.6g}  (gauge, max)")
    for name, value in spans.items():
        lines.append(f"  {name:<{width}}  {value:>14,}  (span count)")
    for name, payload in histograms.items():
        bounds = payload.get("boundaries") or []
        counts = payload.get("counts") or []
        edges = [f"<={bound:g}" for bound in bounds] + ["+inf"]
        cells = ", ".join(
            f"{edge}:{count}"
            for edge, count in zip(edges, counts)
            if count
        )
        lines.append(
            f"  {name:<{width}}  n={payload.get('count', 0):,} "
            f"[{cells}]"
        )
    if not lines:
        return "  (no matching metrics)"
    return "\n".join(lines)


def render_campaign_telemetry(
    payload: Dict[str, Any],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Terminal summary for ``--telemetry`` / ``repro telemetry show``."""
    header = (
        f"telemetry: campaign {payload.get('campaign', '?')} "
        f"[{payload.get('scale', '?')}] — "
        f"{payload.get('instrumented', 0)}/{payload.get('trials', 0)} "
        f"trials instrumented"
    )
    body = render_aggregate(payload.get("aggregate") or {}, metrics)
    return f"{header}\n{body}"


def render_diff(
    rows: Sequence[Dict[str, Any]],
    metrics: Optional[Sequence[str]] = None,
    changed_only: bool = False,
) -> str:
    """Terminal table for ``repro telemetry diff``."""
    wanted = set(metrics) if metrics else None
    selected = [
        row
        for row in rows
        if (wanted is None or row["metric"] in wanted)
        and (not changed_only or row["delta"])
    ]
    if not selected:
        return "no matching metrics"
    width = max(len(row["metric"]) for row in selected)
    lines = [
        f"{'metric':<{width}}  {'a':>14}  {'b':>14}  {'delta':>14}"
    ]
    for row in selected:
        lines.append(
            f"{row['metric']:<{width}}  {row['a']:>14,.6g}  "
            f"{row['b']:>14,.6g}  {row['delta']:>+14,.6g}"
        )
    return "\n".join(lines)
