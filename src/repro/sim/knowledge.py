"""Adversary signature-knowledge tracking (the anti-forgery bookkeeping).

The paper's executions are *well-defined* only if, for each message ``m``
sent by a faulty node at time ``t``, every honest signature that ``m``
depends on was contained in some message received by some faulty node by
time ``t`` (faulty nodes pool knowledge instantly — footnote 1).

:class:`SignatureKnowledge` records, per honest signature, the earliest real
time the adversary learned it, and refuses faulty sends that would violate
the rule by raising :class:`~repro.sim.errors.ForgeryError`.  Signatures by
*faulty* signers are always available to the adversary, which holds the
corrupted nodes' secret keys.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Set, Tuple

from repro.crypto.signatures import Signature, collect_signatures
from repro.sim.clocks import EPS
from repro.sim.errors import ForgeryError

SignatureKey = Tuple[int, Hashable]


class SignatureKnowledge:
    """Earliest-knowledge table for the (pooled) adversary."""

    def __init__(self, faulty: Iterable[int]) -> None:
        self.faulty: Set[int] = set(faulty)
        self._earliest: Dict[SignatureKey, float] = {}
        # Content-addressed memo of collect_signatures(): a broadcast
        # payload reaches every faulty node, so the identical (hashable)
        # payload is walked once instead of once per delivery.  Signatures
        # compare by (signer, value), so equal payloads contain equal
        # signature sets by construction.
        self._collected: Dict[Any, Tuple[Signature, ...]] = {}

    def stats(self) -> Dict[str, int]:
        """Deterministic table sizes for the telemetry layer."""
        return {
            "signatures_known": len(self._earliest),
            "payloads_memoized": len(self._collected),
        }

    def signatures_of(self, payload: Any) -> Tuple[Signature, ...]:
        """All signatures inside ``payload`` (memoized per content)."""
        try:
            cached = self._collected.get(payload)
        except TypeError:  # unhashable payload: walk it every time
            return tuple(collect_signatures(payload))
        if cached is None:
            cached = tuple(collect_signatures(payload))
            self._collected[payload] = cached
        return cached

    def learn_payload(self, payload: Any, time: float) -> None:
        """Record all signatures inside ``payload`` as known from ``time``."""
        for signature in self.signatures_of(payload):
            self.learn(signature, time)

    def learn(self, signature: Signature, time: float) -> None:
        """Record ``signature`` as known from ``time`` (keep the earliest)."""
        key = signature.key()
        existing = self._earliest.get(key)
        if existing is None or time < existing:
            self._earliest[key] = time

    def knows(self, signature: Signature, time: float) -> bool:
        """Can the adversary produce ``signature`` at ``time``?"""
        if signature.signer in self.faulty:
            return True
        earliest = self._earliest.get(signature.key())
        return earliest is not None and earliest <= time + EPS

    def earliest_known(self, signature: Signature) -> float:
        """When the adversary first learned ``signature``.

        Returns ``0.0`` for faulty-signer signatures (always known) and
        ``inf`` for honest signatures never observed.
        """
        if signature.signer in self.faulty:
            return 0.0
        return self._earliest.get(signature.key(), float("inf"))

    def check_payload(self, payload: Any, time: float, sender: int) -> None:
        """Validate a faulty send: every contained signature must be known.

        Raises
        ------
        ForgeryError
            If ``payload`` contains an honest signature the adversary has
            not received by ``time``.
        """
        for signature in self.signatures_of(payload):
            if not self.knows(signature, time):
                raise ForgeryError(
                    f"faulty node {sender} tried to send signature "
                    f"{signature.key()} at time {time}, first known at "
                    f"{self.earliest_known(signature)}"
                )
