"""Protocol-facing runtime interface.

Timed protocols (Algorithm CPS and the baselines) are written as
engine-agnostic state machines against :class:`NodeAPI`.  The honest
simulator (:mod:`repro.sim.scheduler`) and the lower-bound construction
(:mod:`repro.core.lower_bound`) both provide implementations, so the *same*
protocol code runs in both worlds — which is essential for Theorem 5
experiments, where a faulty node must simulate its own honest behaviour.

A protocol may only observe time through :meth:`NodeAPI.local_time` and may
only schedule future work through local-time timers; it has no access to
real time, matching the model ("nodes have no access to the true time").

Observation hooks stack on this interface without touching protocol
code: ``checks=`` (streaming conformance monitors), ``dynamics=``
(membership churn), and the telemetry handle
(:mod:`repro.telemetry`, adopted from the ambient context or passed as
``telemetry=``) are all zero-cost when unused — each instrumentation
site in the scheduler is one ``is None`` test — and none of them may
perturb event order.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable

from repro.crypto.signatures import Signature


class SimulationChecks(abc.ABC):
    """Streaming observer the simulator feeds as an execution unfolds.

    Conformance monitors (:mod:`repro.checks`) implement this interface
    and are attached to a :class:`~repro.sim.scheduler.Simulation` via
    its ``checks=`` parameter (or :meth:`Simulation.attach_checks`).
    The hook is fed directly from the scheduler — *independently of the
    trace level* — so theorem-bound monitors compose with the
    ``TraceLevel.PULSES``/``NONE`` fast paths without forcing full
    per-message trace allocation.

    Implementations must be passive: they may accumulate state and
    record violations, but must not mutate the simulation.  The
    scheduler guarantees the callbacks do not perturb event order, so
    runs with and without checks produce identical pulse streams.
    """

    __slots__ = ()

    @abc.abstractmethod
    def on_pulse(
        self, time: float, node: int, index: int, local_time: float
    ) -> None:
        """An honest node generated its ``index``-th pulse (1-based)."""

    def on_annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        """A protocol-specific annotation (same feed as the trace's
        :class:`~repro.sim.trace.ProtocolRecord`, stamped with the real
        time the scheduler observed)."""


class DynamicsHook(abc.ABC):
    """Membership-dynamics driver the simulator consults during a run.

    Churn controllers (:mod:`repro.dynamics`) implement this interface
    and are attached to a :class:`~repro.sim.scheduler.Simulation` via
    its ``dynamics=`` parameter.  The hook is the *only* sanctioned way
    to mutate the node set mid-run: the scheduler calls :meth:`install`
    once at construction time (to seed absolute-time churn events and
    deactivate late joiners), :meth:`on_pulse` from the pulse-recording
    path (to resolve pulse-relative triggers), and :meth:`apply` when a
    churn event reaches the front of the queue.

    When no hook is attached every call site is a single ``is None``
    test, so static scenarios pay nothing and stay byte-identical.
    """

    __slots__ = ()

    @abc.abstractmethod
    def install(self, sim: Any) -> None:
        """Called once from ``Simulation.__init__`` (before any event)."""

    @abc.abstractmethod
    def on_pulse(self, sim: Any, time: float, node: int, index: int) -> None:
        """An honest node generated its ``index``-th pulse (1-based)."""

    @abc.abstractmethod
    def apply(self, sim: Any, action: Any) -> None:
        """Execute one scheduled membership change at ``sim.now``."""


class NodeAPI(abc.ABC):
    """Capabilities the runtime grants to an honest protocol instance."""

    __slots__ = ()

    node_id: int
    n: int
    f: int

    @abc.abstractmethod
    def local_time(self) -> float:
        """Current hardware-clock reading ``H_v(now)``."""

    @abc.abstractmethod
    def set_timer(self, local_when: float, tag: Any) -> None:
        """Request ``on_timer(tag)`` when the local clock reads
        ``local_when``.

        Targets at or before the current local time fire immediately (at the
        current instant); the runtime records such occurrences as warnings
        since well-parameterized protocols never need them.
        """

    @abc.abstractmethod
    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to ``dst`` over the authenticated channel."""

    @abc.abstractmethod
    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every node except self."""

    @abc.abstractmethod
    def sign(self, value: Hashable) -> Signature:
        """Produce this node's signature on ``value``."""

    @abc.abstractmethod
    def pulse(self) -> None:
        """Generate the next pulse (records the pulse time)."""

    @abc.abstractmethod
    def annotate(self, kind: str, details: Any) -> None:
        """Attach a protocol-specific record to the execution trace."""


class TimedProtocol(abc.ABC):
    """Base class for message-driven timed protocols.

    The runtime calls :meth:`on_start` once at real time 0, then
    :meth:`on_message` / :meth:`on_timer` as events arrive.  Handlers must
    not block; all waiting is expressed through timers.
    """

    @abc.abstractmethod
    def on_start(self, api: NodeAPI) -> None:
        """Initialize; called once when the execution begins."""

    @abc.abstractmethod
    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        """Handle a delivered message.

        ``sender`` is the channel-authenticated identity of the node the
        message physically came from (channels are authenticated, so even a
        faulty sender cannot spoof this; it *can* relay other nodes'
        signatures inside ``payload``).
        """

    @abc.abstractmethod
    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        """Handle a timer previously set via :meth:`NodeAPI.set_timer`."""
