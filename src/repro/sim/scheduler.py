"""The timed discrete-event simulator.

:class:`Simulation` wires together the model pieces — hardware clocks,
delay-controlled network, PKI, honest protocol instances, and a Byzantine
behaviour — and runs an execution:

* honest node ``v`` runs a :class:`~repro.sim.runtime.TimedProtocol` behind a
  :class:`~repro.sim.runtime.NodeAPI` backed by ``v``'s hardware clock;
* every message's delay is chosen by the
  :class:`~repro.sim.network.DelayPolicy` and validated against the model;
* faulty nodes are driven by a single
  :class:`~repro.sim.adversary.ByzantineBehavior` (the adversary) through an
  :class:`AdversaryContext` that can send arbitrary messages from any faulty
  identity — subject to the signature-knowledge rule enforced by
  :class:`~repro.sim.knowledge.SignatureKnowledge`.

The run is deterministic given the configuration and all seeds.

Hot path
--------

The main loop is written for throughput: events are dispatched on the
integer kind priority carried by the heap key (no ``isinstance``), the
pulse-quota stop condition is maintained as a counter instead of an
O(honest) scan per event, trace records are allocated only at the levels
that record them (:class:`~repro.sim.trace.TraceLevel`), and the queue's
heap/slab are accessed through locals hoisted out of the loop.  None of
this changes semantics: event order is still (time, priority, insertion
seq), and pulse outputs are byte-identical across trace levels.

Telemetry (:mod:`repro.telemetry`) follows the same
zero-cost-when-unused contract as ``checks=`` and ``dynamics=``: with no
handle attached every instrumentation site is a single ``is None`` test
on a hoisted local, and with one attached the hot loop increments
pre-hoisted counter slots — never allocating, never perturbing event
order, so instrumented runs stay byte-identical to bare ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.signatures import Signature
from repro.sim.clocks import EPS, HardwareClock
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.events import (
    PRIORITY_ADVERSARY,
    PRIORITY_CHURN,
    PRIORITY_DELIVERY,
    PRIORITY_TIMER,
    AdversaryEvent,
    DeliveryEvent,
    EventQueue,
    TimerEvent,
)
from repro.sim.knowledge import SignatureKnowledge
from repro.sim.network import DelayPolicy, MaximumDelayPolicy, NetworkConfig
from repro.sim.runtime import (
    DynamicsHook,
    NodeAPI,
    SimulationChecks,
    TimedProtocol,
)
from repro.sim.trace import (
    DeliveryRecord,
    SendRecord,
    Trace,
    TraceLevel,
)
from repro.telemetry.context import active_telemetry


@dataclass
class SimulationResult:
    """Outcome of a run: per-node pulse times plus diagnostics."""

    pulses: Dict[int, List[float]]
    honest: List[int]
    trace: Trace
    warnings: List[str] = field(default_factory=list)
    events_processed: int = 0
    end_time: float = 0.0

    def honest_pulses(self) -> Dict[int, List[float]]:
        """Pulse-time lists restricted to honest nodes."""
        return {v: self.pulses[v] for v in self.honest}


class _SimNodeAPI(NodeAPI):
    """The :class:`NodeAPI` implementation backed by the simulator."""

    __slots__ = ("_sim", "node_id", "n", "f", "_clock", "_key_pair")

    def __init__(self, sim: "Simulation", node_id: int) -> None:
        self._sim = sim
        self.node_id = node_id
        self.n = sim.config.n
        self.f = sim.f
        self._clock = sim.clocks[node_id]
        self._key_pair = sim.pki.key_pair(node_id)

    def local_time(self) -> float:
        return self._clock.local_time(self._sim.now)

    def set_timer(self, local_when: float, tag: Any) -> None:
        sim = self._sim
        real = self._clock.real_time(local_when)
        if real < sim.now - 1e-6:
            sim.warnings.append(
                f"node {self.node_id}: timer target local {local_when} "
                f"(real {real}) is in the past at {sim.now}"
            )
        real = max(real, sim.now)
        sim.queue.push(
            real,
            PRIORITY_TIMER,
            TimerEvent(self.node_id, tag, local_when),
        )
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.incr("timers.set")

    def send(self, dst: int, payload: Any) -> None:
        self._sim.honest_send(self.node_id, dst, payload)

    def broadcast(self, payload: Any) -> None:
        sim = self._sim
        node_id = self.node_id
        for dst in range(self.n):
            if dst != node_id:
                sim.honest_send(node_id, dst, payload)

    def sign(self, value: Hashable) -> Signature:
        return self._key_pair.sign(value)

    def pulse(self) -> None:
        self._sim.record_pulse(self.node_id)

    def annotate(self, kind: str, details: Any) -> None:
        sim = self._sim
        telemetry = sim.telemetry
        if telemetry is not None:
            telemetry.on_annotate(kind, details)
        checks = sim.checks
        if checks is not None:
            checks.on_annotate(sim.now, self.node_id, kind, details)
        sim.trace.protocol(
            time=sim.now, node=self.node_id, kind=kind, details=details
        )


class AdversaryContext:
    """What the Byzantine behaviour may see and do.

    The adversary has full visibility (it chose clocks and delays and, being
    rushing, observes all traffic), but its *sends* are checked: honest
    signatures it includes must already be known (no forgery), explicit
    delays must respect the faulty-link bounds, and it can only send from
    corrupted identities.
    """

    def __init__(self, sim: "Simulation") -> None:
        self._sim = sim

    # -- observation ----------------------------------------------------

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def config(self) -> NetworkConfig:
        return self._sim.config

    @property
    def f(self) -> int:
        return self._sim.f

    @property
    def faulty(self) -> Set[int]:
        return set(self._sim.faulty)

    @property
    def honest(self) -> List[int]:
        return list(self._sim.honest)

    @property
    def knowledge(self) -> SignatureKnowledge:
        return self._sim.knowledge

    def clock_of(self, node: int) -> HardwareClock:
        """The adversary fixed the clocks; it may inspect them."""
        return self._sim.clocks[node]

    def pulses_of(self, node: int) -> List[float]:
        return list(self._sim.pulses[node])

    def local_time_of(self, node: int) -> float:
        return self._sim.clocks[node].local_time(self._sim.now)

    # -- actions ----------------------------------------------------------

    def sign_as(self, faulty_id: int, value: Hashable) -> Signature:
        """Sign with a corrupted node's secret key."""
        if faulty_id not in self._sim.faulty:
            raise SimulationError(
                f"adversary cannot sign for honest node {faulty_id}"
            )
        return self._sim.pki.key_pair(faulty_id).sign(value)

    def send_from(
        self,
        src: int,
        dst: int,
        payload: Any,
        delay: Optional[float] = None,
    ) -> None:
        """Send ``payload`` from faulty ``src`` to ``dst`` right now.

        ``delay=None`` defers to the delay policy; an explicit delay is
        validated against the faulty-link bounds ``[d - u_tilde, d]``.
        """
        if src not in self._sim.faulty:
            raise SimulationError(
                f"adversary cannot send from honest node {src}"
            )
        self._sim.faulty_send(src, dst, payload, delay)

    def broadcast_from(
        self,
        src: int,
        payload: Any,
        delay: Optional[float] = None,
        targets: Optional[Iterable[int]] = None,
    ) -> None:
        """Send from faulty ``src`` to ``targets`` (default: all others)."""
        recipients = (
            [v for v in range(self._sim.config.n) if v != src]
            if targets is None
            else list(targets)
        )
        for dst in recipients:
            self.send_from(src, dst, payload, delay)

    def wake_at(self, time: float, tag: Any = None) -> None:
        """Request an ``on_wakeup(tag)`` callback at real ``time``."""
        if time < self._sim.now - EPS:
            raise SimulationError(
                f"cannot schedule adversary wakeup in the past: {time}"
            )
        self._sim.queue.push(
            max(time, self._sim.now), PRIORITY_ADVERSARY, AdversaryEvent(tag)
        )


class Simulation:
    """A single timed execution of a protocol under a chosen adversary."""

    def __init__(
        self,
        config: NetworkConfig,
        clocks: Sequence[HardwareClock],
        protocol_factory,
        faulty: Iterable[int] = (),
        behavior=None,
        delay_policy: Optional[DelayPolicy] = None,
        f: Optional[int] = None,
        trace: Optional[Trace] = None,
        checks: Optional[SimulationChecks] = None,
        dynamics: Optional[DynamicsHook] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.config = config
        if len(clocks) != config.n:
            raise ConfigurationError(
                f"need {config.n} clocks, got {len(clocks)}"
            )
        self.clocks = list(clocks)
        self.faulty: Set[int] = set(faulty)
        if any(v < 0 or v >= config.n for v in self.faulty):
            raise ConfigurationError(f"faulty set {self.faulty} out of range")
        self.honest: List[int] = [
            v for v in range(config.n) if v not in self.faulty
        ]
        self.f = f if f is not None else len(self.faulty)
        if len(self.faulty) > self.f:
            raise ConfigurationError(
                f"{len(self.faulty)} corruptions exceed declared f={self.f}"
            )
        self.delay_policy = delay_policy or MaximumDelayPolicy()
        self.pki = PublicKeyInfrastructure(config.n)
        self.knowledge = SignatureKnowledge(self.faulty)
        self.queue = EventQueue()
        self.trace = trace if trace is not None else Trace()
        self.checks = checks
        # Telemetry: an explicit handle wins; otherwise adopt the ambient
        # per-process session (how campaign trials instrument simulations
        # built inside registered builders).  Both default to None, so
        # uninstrumented runs pay a single `is None` test per site.
        self.telemetry = (
            telemetry if telemetry is not None else active_telemetry()
        )
        if self.telemetry is not None:
            self.telemetry.attach(self)
        self.now = 0.0
        self.warnings: List[str] = []
        self.pulses: Dict[int, List[float]] = {
            v: [] for v in range(config.n)
        }
        self.events_processed = 0
        # Pulse-quota bookkeeping for run(max_pulses=...): the number of
        # honest nodes still below the quota, updated by record_pulse so
        # the main loop tests one counter instead of scanning all nodes.
        self._pulse_quota: Optional[int] = None
        self._quota_open = 0

        self._protocol_factory = protocol_factory
        self._protocols: Dict[int, TimedProtocol] = {}
        self._apis: Dict[int, _SimNodeAPI] = {}
        for v in self.honest:
            self._protocols[v] = protocol_factory(v)
            self._apis[v] = _SimNodeAPI(self, v)

        self.behavior = behavior
        self._adversary_ctx = AdversaryContext(self)

        # Membership dynamics (churn) install last: the controller may
        # deactivate late joiners and seed absolute-time churn events.
        self.dynamics = dynamics
        if dynamics is not None:
            dynamics.install(self)

    def protocol(self, node: int) -> TimedProtocol:
        """The protocol instance of an honest node (for diagnostics)."""
        return self._protocols[node]

    def attach_checks(self, checks: Optional[SimulationChecks]) -> None:
        """Install (or clear) the streaming conformance observer.

        Must be called before :meth:`run`; the observer then receives
        every honest pulse and protocol annotation of the execution.
        """
        self.checks = checks

    # ------------------------------------------------------------------
    # Membership dynamics (the churn subsystem's mutation surface)
    #
    # These are the only sanctioned ways to change the node set mid-run.
    # All of them keep the hot loop's hoisted references valid: the
    # ``_protocols`` dict, ``faulty`` set, and ``knowledge`` object are
    # mutated in place, never rebound.

    def node_active(self, node: int) -> bool:
        """Is ``node`` currently executing a protocol instance?"""
        return node in self._protocols

    def deactivate_node(self, node: int) -> None:
        """Crash an honest node: it stops executing immediately.

        Pending timers and deliveries addressed to the node are dropped
        lazily when they surface (the main loop already tolerates
        missing protocol instances).  The node's clock keeps running and
        its recorded pulses are preserved, so a later
        :meth:`activate_node` resumes the same pulse count.
        """
        if node in self.faulty:
            raise SimulationError(
                f"cannot crash node {node}: it is Byzantine "
                f"(the adversary, not the scheduler, owns it)"
            )
        if node not in self._protocols:
            raise SimulationError(f"node {node} is already inactive")
        del self._protocols[node]
        del self._apis[node]
        if self.telemetry is not None:
            self.telemetry.incr("dynamics.deactivate")
        quota = self._pulse_quota
        if quota is not None and len(self.pulses[node]) < quota:
            self._quota_open -= 1

    def activate_node(self, node: int, protocol: TimedProtocol) -> None:
        """(Re)start an honest node with a fresh protocol instance.

        Used for crash recovery and late joins; ``protocol.on_start``
        runs immediately at the current simulated time.
        """
        if node in self.faulty:
            raise SimulationError(
                f"cannot activate node {node}: it is Byzantine"
            )
        if node in self._protocols:
            raise SimulationError(f"node {node} is already active")
        self._protocols[node] = protocol
        api = self._apis[node] = _SimNodeAPI(self, node)
        if self.telemetry is not None:
            self.telemetry.incr("dynamics.activate")
        quota = self._pulse_quota
        if quota is not None and len(self.pulses[node]) < quota:
            self._quota_open += 1
        protocol.on_start(api)

    def corrupt_node(self, node: int) -> None:
        """Byzantine-flip an honest node: the adversary takes it over.

        The node's protocol instance is discarded, its identity joins
        the faulty set (the adversary may now sign with its key), and
        the declared resilience budget ``f`` is enforced.
        """
        if node in self.faulty:
            raise SimulationError(f"node {node} is already Byzantine")
        if len(self.faulty) >= self.f:
            raise SimulationError(
                f"corrupting node {node} would exceed the declared "
                f"budget f={self.f}"
            )
        if node in self._protocols:
            self.deactivate_node(node)
        self.faulty.add(node)
        self.knowledge.faulty.add(node)
        self.honest.remove(node)
        if self.telemetry is not None:
            self.telemetry.incr("dynamics.corrupt")

    def restore_node(self, node: int, protocol: TimedProtocol) -> None:
        """Hand a Byzantine node back to the honest side and restart it.

        The inverse of :meth:`corrupt_node` (adversary-handoff
        scenarios): the identity leaves the faulty set — the adversary
        may no longer sign for it — and rejoins as an honest, freshly
        started node.
        """
        if node not in self.faulty:
            raise SimulationError(f"node {node} is not Byzantine")
        self.faulty.discard(node)
        self.knowledge.faulty.discard(node)
        self.honest.append(node)
        self.honest.sort()
        if self.telemetry is not None:
            self.telemetry.incr("dynamics.restore")
        self.activate_node(node, protocol)

    # ------------------------------------------------------------------
    # Message plumbing

    def honest_send(self, src: int, dst: int, payload: Any) -> None:
        """Dispatch a send by an honest node through the delay policy."""
        now = self.now
        link_is_honest = dst not in self.faulty  # src is honest here
        delay = self.delay_policy.delay(
            self.config, src, dst, now, payload, link_is_honest
        )
        delay = self.config.validate_delay(
            delay, src_honest=True, dst_honest=link_is_honest
        )
        # The SendRecord doubles as the trace entry and the adversary's
        # observation; build it once, and only when someone consumes it.
        behavior = self.behavior
        if behavior is not None or self.trace.level >= TraceLevel.FULL:
            record = SendRecord(
                time=now,
                src=src,
                dst=dst,
                payload=payload,
                delay=delay,
                src_honest=True,
            )
            if self.trace.level >= TraceLevel.FULL:
                self.trace.records.append(record)
        self.queue.push(
            now + delay,
            PRIORITY_DELIVERY,
            DeliveryEvent(src, dst, payload, now),
        )
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_honest_send(src, payload, delay)
        if behavior is not None:
            behavior.on_honest_send(self._adversary_ctx, record)

    def faulty_send(
        self, src: int, dst: int, payload: Any, delay: Optional[float]
    ) -> None:
        """Dispatch a send by a faulty node (knowledge-checked)."""
        now = self.now
        self.knowledge.check_payload(payload, now, src)
        if delay is None:
            delay = self.delay_policy.delay(
                self.config, src, dst, now, payload, False
            )
        delay = self.config.validate_delay(
            delay, src_honest=False, dst_honest=dst not in self.faulty
        )
        self.trace.send(
            time=now,
            src=src,
            dst=dst,
            payload=payload,
            delay=delay,
            src_honest=False,
        )
        self.queue.push(
            now + delay,
            PRIORITY_DELIVERY,
            DeliveryEvent(src, dst, payload, now),
        )
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_faulty_send(delay)

    def record_pulse(self, node: int) -> None:
        pulse_list = self.pulses[node]
        pulse_list.append(self.now)
        quota = self._pulse_quota
        if quota is not None and len(pulse_list) == quota:
            self._quota_open -= 1
        local = self.clocks[node].local_time(self.now)
        if self.telemetry is not None:
            self.telemetry.incr("pulses.recorded")
        if self.checks is not None:
            self.checks.on_pulse(self.now, node, len(pulse_list), local)
        if self.dynamics is not None:
            self.dynamics.on_pulse(self, self.now, node, len(pulse_list))
        self.trace.pulse(
            time=self.now,
            node=node,
            index=len(pulse_list),
            local_time=local,
        )
        if self.behavior is not None and node not in self.faulty:
            self.behavior.on_pulse(
                self._adversary_ctx, node, len(pulse_list), self.now
            )

    # ------------------------------------------------------------------
    # Main loop

    def run(
        self,
        until: Optional[float] = None,
        max_pulses: Optional[int] = None,
        max_events: int = 5_000_000,
    ) -> SimulationResult:
        """Execute until quiescence, a time horizon, or a pulse quota.

        Parameters
        ----------
        until:
            Stop once simulated real time would exceed this value.
        max_pulses:
            Stop once every honest node has generated this many pulses.
        max_events:
            Hard safety cap on processed events.
        """
        if until is None and max_pulses is None:
            raise ConfigurationError(
                "provide a stop condition (until / max_pulses)"
            )
        self._pulse_quota = max_pulses
        if max_pulses is not None:
            # Only *active* honest nodes gate the quota: a node crashed
            # (or not yet joined) under a churn schedule re-enters the
            # count when it is activated.  Without dynamics every honest
            # node is active, matching the historical behaviour.
            self._quota_open = sum(
                1
                for v in self.honest
                if v in self._protocols and len(self.pulses[v]) < max_pulses
            )
        for v in self.honest:
            protocol = self._protocols.get(v)
            if protocol is not None:  # dormant late joiners skip start
                protocol.on_start(self._apis[v])
        if self.behavior is not None:
            self.behavior.on_start(self._adversary_ctx)

        # Hot loop: everything dereferenced per event is hoisted into
        # locals; the queue's heap/slab are accessed directly (peek +
        # pop fused); dispatch keys on the heap priority int.
        import heapq as _heapq

        heappop = _heapq.heappop
        heap = self.queue._heap
        slab = self.queue._slab
        protocols = self._protocols
        apis = self._apis
        faulty = self.faulty
        knowledge = self.knowledge
        behavior = self.behavior
        ctx = self._adversary_ctx
        trace = self.trace
        trace_full = trace.level >= TraceLevel.FULL
        trace_records = trace.records
        # Telemetry hot-path slots: the loop indexes `telem_dispatch`
        # by event priority and bumps plain dict entries — no method
        # calls, no allocation.  Both are None when uninstrumented.
        telemetry = self.telemetry
        telem_counters = telemetry.counters if telemetry is not None else None
        telem_dispatch = telemetry.dispatch if telemetry is not None else None
        # Quota only gates when honest nodes exist (matches the historical
        # `self.honest and all(...)` check: an all-faulty run ignores it).
        quota_gated = max_pulses is not None and bool(self.honest)
        events_processed = self.events_processed
        until_cutoff = None if until is None else until + EPS
        if telemetry is not None:
            import time as _time

            run_started = _time.perf_counter()

        try:
            while True:
                if quota_gated and self._quota_open == 0:
                    break
                # Inline peek: drop cancelled keys, stop when empty.
                while heap:
                    key = heap[0]
                    if key[2] in slab:
                        break
                    heappop(heap)
                    if telem_counters is not None:
                        telem_counters["events.cancelled.lazy"] += 1
                else:
                    break
                time = key[0]
                if until_cutoff is not None and time > until_cutoff:
                    break
                heappop(heap)
                priority = key[1]
                event = slab.pop(key[2])
                self.now = time
                events_processed += 1
                if telem_dispatch is not None:
                    telem_dispatch[priority] += 1
                if events_processed > max_events:
                    raise SimulationError(
                        f"event cap of {max_events} exceeded — "
                        f"runaway execution?"
                    )
                if priority == PRIORITY_TIMER:
                    if trace_full:
                        trace.timer(
                            time=time,
                            node=event.node,
                            tag=event.tag,
                            local_time=event.local_time,
                        )
                    protocol = protocols.get(event.node)
                    if protocol is not None:
                        protocol.on_timer(apis[event.node], event.tag)
                    elif telem_counters is not None:
                        telem_counters["timers.dropped.inactive"] += 1
                elif priority == PRIORITY_DELIVERY:
                    dst = event.dst
                    if trace_full:
                        trace_records.append(
                            DeliveryRecord(
                                time=time,
                                src=event.src,
                                dst=dst,
                                payload=event.payload,
                            )
                        )
                    if dst in faulty:
                        # Knowledge pools across faulty nodes at
                        # reception time.
                        knowledge.learn_payload(event.payload, time)
                        if telem_counters is not None:
                            telem_counters[
                                "messages.delivered.adversary"
                            ] += 1
                        if behavior is not None:
                            behavior.on_deliver(
                                ctx,
                                DeliveryRecord(
                                    time=time,
                                    src=event.src,
                                    dst=dst,
                                    payload=event.payload,
                                ),
                            )
                    else:
                        protocol = protocols.get(dst)
                        if protocol is not None:
                            if telem_counters is not None:
                                telem_counters[
                                    "messages.delivered.honest"
                                ] += 1
                            protocol.on_message(
                                apis[dst], event.src, event.payload
                            )
                        elif telem_counters is not None:
                            telem_counters["messages.dropped.inactive"] += 1
                elif priority == PRIORITY_ADVERSARY:
                    if behavior is not None:
                        behavior.on_wakeup(ctx, event.tag)
                elif priority == PRIORITY_CHURN:
                    # Reached only for events pushed by a DynamicsHook,
                    # so the hook is present whenever this fires.
                    self.dynamics.apply(self, event.action)
                else:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"unknown event priority {priority}: {event!r}"
                    )
        finally:
            self.events_processed = events_processed
            self._pulse_quota = None
            self._quota_open = 0
            if telemetry is not None:
                telemetry.observe_span(
                    "sim.run", _time.perf_counter() - run_started
                )
                telemetry.finalize(self)

        return SimulationResult(
            pulses={v: list(times) for v, times in self.pulses.items()},
            honest=list(self.honest),
            trace=self.trace,
            warnings=list(self.warnings),
            events_processed=self.events_processed,
            end_time=self.now,
        )
