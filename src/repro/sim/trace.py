"""Structured execution traces with selectable recording levels.

A :class:`Trace` collects typed records of everything observable in a
simulation: sends, deliveries, timers, pulses, and protocol-specific events
(e.g. a TCB instance resolving to ⊥ and why).  Traces power debugging,
the examples' narrative output, and several tests that assert on *how* an
outcome was reached rather than just on the outcome.

Recording is tiered by :class:`TraceLevel`:

* ``FULL`` — every record type (the default; what tests and examples use).
* ``PULSES`` — only :class:`PulseRecord` entries.  Campaign sweeps that
  only tabulate skew metrics run here: per-message ``SendRecord`` /
  ``DeliveryRecord`` allocation is skipped entirely, which is a large
  fraction of the simulator's inner-loop cost.
* ``NONE`` — nothing is recorded (``Trace(enabled=False)`` maps here).

The level only controls *recording*; pulse times themselves live on the
simulation (``SimulationResult.pulses``) and are byte-identical across
levels — asserted by ``tests/test_perf.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable, Iterator, List, Optional, Union


class TraceLevel(IntEnum):
    """How much of an execution a :class:`Trace` records."""

    NONE = 0
    PULSES = 1
    FULL = 2

    @classmethod
    def coerce(
        cls, value: Union["TraceLevel", str, bool, int, None]
    ) -> "TraceLevel":
        """Accept a level, its lowercase name, or a legacy bool."""
        if value is None or value is True:
            return cls.FULL
        if value is False:
            return cls.NONE
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown trace level {value!r}; "
                    f"choose from {[level.name.lower() for level in cls]}"
                ) from None
        return cls(value)


@dataclass(frozen=True, slots=True)
class SendRecord:
    """A message left ``src`` bound for ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any
    delay: float
    src_honest: bool


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """A message completed processing at ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any


@dataclass(frozen=True, slots=True)
class TimerRecord:
    """A local timer fired at ``node``."""

    time: float
    node: int
    tag: Any
    local_time: float


@dataclass(frozen=True, slots=True)
class PulseRecord:
    """Node ``node`` generated its ``index``-th pulse (1-based)."""

    time: float
    node: int
    index: int
    local_time: float


@dataclass(frozen=True, slots=True)
class ProtocolRecord:
    """A protocol-specific annotation (kind + free-form details)."""

    time: float
    node: int
    kind: str
    details: Any


TraceRecord = Any

#: What simulation builders accept for their ``trace`` parameter: a
#: :class:`TraceLevel`, its lowercase name, or a legacy bool
#: (``True`` -> ``FULL``, ``False`` -> ``NONE``).
TraceSpec = Union[TraceLevel, str, bool]


class Trace:
    """An append-only, level-gated log of simulation records."""

    __slots__ = ("level", "records")

    def __init__(
        self,
        enabled: bool = True,
        level: Union[TraceLevel, str, None] = None,
    ) -> None:
        if level is None:
            level = TraceLevel.FULL if enabled else TraceLevel.NONE
        self.level = TraceLevel.coerce(level)
        self.records: List[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        """Legacy flag: does this trace record anything at all?"""
        return self.level is not TraceLevel.NONE

    def record(self, record: TraceRecord) -> None:
        if self.level:
            self.records.append(record)

    # Convenience constructors -----------------------------------------

    def send(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(SendRecord(**kwargs))

    def delivery(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(DeliveryRecord(**kwargs))

    def timer(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(TimerRecord(**kwargs))

    def pulse(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.PULSES:
            self.records.append(PulseRecord(**kwargs))

    def protocol(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(ProtocolRecord(**kwargs))

    # Queries -----------------------------------------------------------

    def of_type(self, record_type: type) -> Iterator[TraceRecord]:
        """All records of one record class, in chronological order."""
        return (r for r in self.records if isinstance(r, record_type))

    def where(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> Iterator[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def pulses_of(self, node: int) -> List[PulseRecord]:
        return [r for r in self.of_type(PulseRecord) if r.node == node]

    def protocol_events(
        self, kind: Optional[str] = None
    ) -> List[ProtocolRecord]:
        events = list(self.of_type(ProtocolRecord))
        if kind is None:
            return events
        return [r for r in events if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)
