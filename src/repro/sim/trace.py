"""Structured execution traces.

A :class:`Trace` collects typed records of everything observable in a
simulation: sends, deliveries, timers, pulses, and protocol-specific events
(e.g. a TCB instance resolving to ⊥ and why).  Traces power debugging,
the examples' narrative output, and several tests that assert on *how* an
outcome was reached rather than just on the outcome.

Tracing can be disabled (``Trace(enabled=False)``) for large sweeps; all
recording methods become no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class SendRecord:
    """A message left ``src`` bound for ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any
    delay: float
    src_honest: bool


@dataclass(frozen=True)
class DeliveryRecord:
    """A message completed processing at ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any


@dataclass(frozen=True)
class TimerRecord:
    """A local timer fired at ``node``."""

    time: float
    node: int
    tag: Any
    local_time: float


@dataclass(frozen=True)
class PulseRecord:
    """Node ``node`` generated its ``index``-th pulse (1-based)."""

    time: float
    node: int
    index: int
    local_time: float


@dataclass(frozen=True)
class ProtocolRecord:
    """A protocol-specific annotation (kind + free-form details)."""

    time: float
    node: int
    kind: str
    details: Any


TraceRecord = Any


class Trace:
    """An append-only, optionally disabled, log of simulation records."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def record(self, record: TraceRecord) -> None:
        if self.enabled:
            self.records.append(record)

    # Convenience constructors -----------------------------------------

    def send(self, **kwargs: Any) -> None:
        self.record(SendRecord(**kwargs)) if self.enabled else None

    def delivery(self, **kwargs: Any) -> None:
        self.record(DeliveryRecord(**kwargs)) if self.enabled else None

    def timer(self, **kwargs: Any) -> None:
        self.record(TimerRecord(**kwargs)) if self.enabled else None

    def pulse(self, **kwargs: Any) -> None:
        self.record(PulseRecord(**kwargs)) if self.enabled else None

    def protocol(self, **kwargs: Any) -> None:
        self.record(ProtocolRecord(**kwargs)) if self.enabled else None

    # Queries -----------------------------------------------------------

    def of_type(self, record_type: type) -> Iterator[TraceRecord]:
        """All records of one record class, in chronological order."""
        return (r for r in self.records if isinstance(r, record_type))

    def where(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> Iterator[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def pulses_of(self, node: int) -> List[PulseRecord]:
        return [r for r in self.of_type(PulseRecord) if r.node == node]

    def protocol_events(
        self, kind: Optional[str] = None
    ) -> List[ProtocolRecord]:
        events = list(self.of_type(ProtocolRecord))
        if kind is None:
            return events
        return [r for r in events if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)
