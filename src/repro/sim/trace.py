"""Structured execution traces with selectable recording levels.

A :class:`Trace` collects typed records of everything observable in a
simulation: sends, deliveries, timers, pulses, and protocol-specific events
(e.g. a TCB instance resolving to ⊥ and why).  Traces power debugging,
the examples' narrative output, and several tests that assert on *how* an
outcome was reached rather than just on the outcome.

Recording is tiered by :class:`TraceLevel`:

* ``FULL`` — every record type (the default; what tests and examples use).
* ``PULSES`` — only :class:`PulseRecord` entries.  Campaign sweeps that
  only tabulate skew metrics run here: per-message ``SendRecord`` /
  ``DeliveryRecord`` allocation is skipped entirely, which is a large
  fraction of the simulator's inner-loop cost.
* ``NONE`` — nothing is recorded (``Trace(enabled=False)`` maps here).

The level only controls *recording*; pulse times themselves live on the
simulation (``SimulationResult.pulses``) and are byte-identical across
levels — asserted by ``tests/test_perf.py``.

Long ``FULL`` runs can accumulate millions of records; ``Trace``
accepts ``max_records=N`` to bound memory: the first ``N`` records are
kept verbatim and everything past the cap is counted into a single
trailing :class:`TruncationRecord` marker.  The cap lives inside the
records list itself (:class:`_BoundedRecords`), because the scheduler's
hot path appends to ``trace.records`` directly — a cap enforced only in
the ``Trace`` methods would be bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable, Iterator, List, Optional, Union


class TraceLevel(IntEnum):
    """How much of an execution a :class:`Trace` records."""

    NONE = 0
    PULSES = 1
    FULL = 2

    @classmethod
    def coerce(
        cls, value: Union["TraceLevel", str, bool, int, None]
    ) -> "TraceLevel":
        """Accept a level, its lowercase name, or a legacy bool."""
        if value is None or value is True:
            return cls.FULL
        if value is False:
            return cls.NONE
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown trace level {value!r}; "
                    f"choose from {[level.name.lower() for level in cls]}"
                ) from None
        return cls(value)


@dataclass(frozen=True, slots=True)
class SendRecord:
    """A message left ``src`` bound for ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any
    delay: float
    src_honest: bool


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """A message completed processing at ``dst``."""

    time: float
    src: int
    dst: int
    payload: Any


@dataclass(frozen=True, slots=True)
class TimerRecord:
    """A local timer fired at ``node``."""

    time: float
    node: int
    tag: Any
    local_time: float


@dataclass(frozen=True, slots=True)
class PulseRecord:
    """Node ``node`` generated its ``index``-th pulse (1-based)."""

    time: float
    node: int
    index: int
    local_time: float


@dataclass(frozen=True, slots=True)
class ProtocolRecord:
    """A protocol-specific annotation (kind + free-form details)."""

    time: float
    node: int
    kind: str
    details: Any


@dataclass(slots=True)
class TruncationRecord:
    """Marker terminating a capped trace: ``dropped`` records followed.

    Mutable on purpose — the bounded list bumps ``dropped`` in place for
    every record past the cap instead of allocating anything.
    """

    time: float
    dropped: int


TraceRecord = Any

#: What simulation builders accept for their ``trace`` parameter: a
#: :class:`TraceLevel`, its lowercase name, a legacy bool
#: (``True`` -> ``FULL``, ``False`` -> ``NONE``), or a pre-built
#: :class:`Trace` (e.g. one constructed with ``max_records=``).
TraceSpec = Union[TraceLevel, str, bool, "Trace"]


class _BoundedRecords(list):
    """A list that keeps the first ``max_records`` entries and folds the
    overflow into one trailing :class:`TruncationRecord`."""

    __slots__ = ("max_records", "marker")

    def __init__(self, max_records: int) -> None:
        super().__init__()
        self.max_records = max_records
        self.marker: Optional[TruncationRecord] = None

    def append(self, record: TraceRecord) -> None:
        marker = self.marker
        if marker is not None:
            marker.dropped += 1
            return
        if list.__len__(self) < self.max_records:
            list.append(self, record)
            return
        self.marker = TruncationRecord(
            time=getattr(record, "time", 0.0), dropped=1
        )
        list.append(self, self.marker)


class Trace:
    """An append-only, level-gated log of simulation records."""

    __slots__ = ("level", "records")

    def __init__(
        self,
        enabled: bool = True,
        level: Union[TraceLevel, str, None] = None,
        max_records: Optional[int] = None,
    ) -> None:
        if level is None:
            level = TraceLevel.FULL if enabled else TraceLevel.NONE
        self.level = TraceLevel.coerce(level)
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.records: List[TraceRecord] = (
            [] if max_records is None else _BoundedRecords(max_records)
        )

    @classmethod
    def from_spec(cls, spec: TraceSpec) -> "Trace":
        """Build (or pass through) a trace from a builder's ``trace``
        argument — a level spec, or an existing :class:`Trace` such as a
        capped one."""
        if isinstance(spec, Trace):
            return spec
        return cls(level=TraceLevel.coerce(spec))

    @property
    def enabled(self) -> bool:
        """Legacy flag: does this trace record anything at all?"""
        return self.level is not TraceLevel.NONE

    @property
    def truncated(self) -> bool:
        """Did a ``max_records`` cap drop any records?"""
        marker = getattr(self.records, "marker", None)
        return marker is not None

    @property
    def dropped_records(self) -> int:
        """How many records the ``max_records`` cap folded away."""
        marker = getattr(self.records, "marker", None)
        return 0 if marker is None else marker.dropped

    def record(self, record: TraceRecord) -> None:
        if self.level:
            self.records.append(record)

    # Convenience constructors -----------------------------------------

    def send(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(SendRecord(**kwargs))

    def delivery(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(DeliveryRecord(**kwargs))

    def timer(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(TimerRecord(**kwargs))

    def pulse(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.PULSES:
            self.records.append(PulseRecord(**kwargs))

    def protocol(self, **kwargs: Any) -> None:
        if self.level >= TraceLevel.FULL:
            self.records.append(ProtocolRecord(**kwargs))

    # Queries -----------------------------------------------------------

    def of_type(self, record_type: type) -> Iterator[TraceRecord]:
        """All records of one record class, in chronological order."""
        return (r for r in self.records if isinstance(r, record_type))

    def where(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> Iterator[TraceRecord]:
        return (r for r in self.records if predicate(r))

    def pulses_of(self, node: int) -> List[PulseRecord]:
        return [r for r in self.of_type(PulseRecord) if r.node == node]

    def protocol_events(
        self, kind: Optional[str] = None
    ) -> List[ProtocolRecord]:
        events = list(self.of_type(ProtocolRecord))
        if kind is None:
            return events
        return [r for r in events if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)
