"""Hardware clock models.

The paper models node ``v``'s hardware clock as a function
``H_v : R>=0 -> R>=0`` with rates between 1 and ``theta``:

    t' - t <= H_v(t') - H_v(t) <= theta * (t' - t)    for all t' >= t.

We realize clocks as strictly increasing piecewise-linear functions.  That
family is closed under the operations the algorithms need (evaluation and
inversion, both O(log segments)), is dense in the set of admissible clock
functions, and contains the adversarial clocks used by the paper's lower
bound (rate ``theta`` up to some time, rate 1 afterwards).

All factories validate rates against a supplied ``theta`` so model
violations are caught at construction time rather than mid-simulation.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.errors import ClockError

#: Tolerance for floating-point comparisons of times and rates.
EPS = 1e-9


@dataclass(frozen=True)
class ClockSegment:
    """One linear piece of a hardware clock.

    ``local(t) = local_start + rate * (t - t_start)`` for ``t`` in
    ``[t_start, next segment's t_start)``; the final segment extends to
    infinity.
    """

    t_start: float
    local_start: float
    rate: float


class HardwareClock:
    """A strictly increasing piecewise-linear hardware clock.

    Parameters
    ----------
    segments:
        Linear pieces in strictly increasing ``t_start`` order.  Consecutive
        segments must agree at the junction (continuity), the first segment
        must start at ``t = 0``, and all rates must be positive.
    theta:
        If given, every rate must lie in ``[1, theta]`` (up to ``EPS``);
        otherwise rates only need to be positive.  The lower-bound engine
        constructs clocks without a theta check because it evaluates clocks
        of *other executions* whose theta is checked elsewhere.
    """

    def __init__(
        self,
        segments: Sequence[ClockSegment],
        theta: Optional[float] = None,
    ) -> None:
        if not segments:
            raise ClockError("a clock needs at least one segment")
        if abs(segments[0].t_start) > EPS:
            raise ClockError(
                f"first segment must start at t=0, got {segments[0].t_start}"
            )
        previous: Optional[ClockSegment] = None
        for segment in segments:
            if segment.rate <= 0:
                raise ClockError(f"clock rate must be positive: {segment}")
            if theta is not None and not (
                1.0 - EPS <= segment.rate <= theta + EPS
            ):
                raise ClockError(
                    f"rate {segment.rate} outside [1, {theta}]: {segment}"
                )
            if previous is not None:
                if segment.t_start <= previous.t_start:
                    raise ClockError("segments must have increasing t_start")
                expected = previous.local_start + previous.rate * (
                    segment.t_start - previous.t_start
                )
                if abs(expected - segment.local_start) > 1e-6:
                    raise ClockError(
                        "discontinuous clock: expected local "
                        f"{expected}, got {segment.local_start}"
                    )
            previous = segment
        if segments[0].local_start < -EPS:
            raise ClockError("clock must be non-negative at t=0")
        self._segments: List[ClockSegment] = list(segments)
        self._starts = [segment.t_start for segment in self._segments]
        self._local_starts = [seg.local_start for seg in self._segments]
        self.theta = theta

    # ------------------------------------------------------------------
    # Evaluation

    def local_time(self, t: float) -> float:
        """Evaluate ``H(t)`` for real time ``t >= 0``."""
        if t < -EPS:
            raise ClockError(f"real time must be non-negative, got {t}")
        t = max(t, 0.0)
        index = bisect.bisect_right(self._starts, t) - 1
        segment = self._segments[index]
        return segment.local_start + segment.rate * (t - segment.t_start)

    def real_time(self, local: float) -> float:
        """Evaluate ``H^{-1}(local)``: when does the clock read ``local``?

        Requires ``local >= H(0)`` (the clock never reads earlier values).
        """
        if local < self._local_starts[0] - EPS:
            raise ClockError(
                f"local time {local} precedes clock start "
                f"{self._local_starts[0]}"
            )
        index = bisect.bisect_right(self._local_starts, local) - 1
        index = max(index, 0)
        segment = self._segments[index]
        return segment.t_start + (local - segment.local_start) / segment.rate

    def rate_at(self, t: float) -> float:
        """Instantaneous rate at real time ``t`` (right-continuous)."""
        index = bisect.bisect_right(self._starts, t) - 1
        return self._segments[max(index, 0)].rate

    @property
    def offset_at_zero(self) -> float:
        """``H(0)``, the initial clock reading."""
        return self._local_starts[0]

    def segments(self) -> List[ClockSegment]:
        """The linear pieces, in order (a copy; clocks are immutable).

        Consumers that batch-evaluate clocks — the vectorized backend
        turns these into numpy arrays — read the piecewise form through
        this accessor instead of re-deriving it by sampling.
        """
        return list(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HardwareClock({len(self._segments)} segments)"

    # ------------------------------------------------------------------
    # Factories

    @classmethod
    def constant_rate(
        cls,
        rate: float = 1.0,
        offset: float = 0.0,
        theta: Optional[float] = None,
    ) -> "HardwareClock":
        """A clock with fixed rate: ``H(t) = offset + rate * t``."""
        return cls([ClockSegment(0.0, offset, rate)], theta=theta)

    @classmethod
    def from_rates(
        cls,
        pieces: Sequence[Tuple[float, float]],
        tail_rate: float = 1.0,
        offset: float = 0.0,
        theta: Optional[float] = None,
    ) -> "HardwareClock":
        """Build a clock from ``(duration, rate)`` pieces plus a tail rate.

        Example: ``from_rates([(5.0, 1.02)], tail_rate=1.0)`` runs 2% fast
        for five time units and at nominal rate afterwards.
        """
        segments: List[ClockSegment] = []
        t = 0.0
        local = offset
        for duration, rate in pieces:
            if duration <= 0:
                raise ClockError(f"piece duration must be positive: {duration}")
            segments.append(ClockSegment(t, local, rate))
            local += rate * duration
            t += duration
        segments.append(ClockSegment(t, local, tail_rate))
        if len(segments) == 1:
            return cls(segments, theta=theta)
        return cls(segments, theta=theta)

    @classmethod
    def random_drift(
        cls,
        rng,
        theta: float,
        offset: float = 0.0,
        horizon: float = 1000.0,
        segment_length: float = 10.0,
    ) -> "HardwareClock":
        """A clock whose rate re-draws uniformly from ``[1, theta]``.

        ``rng`` is a :class:`random.Random` (or API-compatible) instance;
        the draw schedule covers ``[0, horizon]`` and continues at rate 1
        afterwards.
        """
        pieces: List[Tuple[float, float]] = []
        t = 0.0
        while t < horizon:
            pieces.append((segment_length, rng.uniform(1.0, theta)))
            t += segment_length
        return cls.from_rates(pieces, tail_rate=1.0, offset=offset, theta=theta)

    @classmethod
    def fast_then_shifted(
        cls,
        theta: float,
        shift: float,
        offset: float = 0.0,
    ) -> "HardwareClock":
        """The lower bound's adversarial clock.

        ``H(t) = theta * t`` for ``t <= shift / (theta - 1)`` and
        ``H(t) = t + shift`` afterwards (Section 4 uses
        ``shift = 2 * u_tilde / 3``).  Continuous by construction.
        """
        if theta <= 1.0:
            raise ClockError("fast_then_shifted needs theta > 1")
        if shift < 0:
            raise ClockError("shift must be non-negative")
        if shift == 0:
            return cls.constant_rate(1.0, offset=offset, theta=theta)
        switch = shift / (theta - 1.0)
        return cls(
            [
                ClockSegment(0.0, offset, theta),
                ClockSegment(switch, offset + theta * switch, 1.0),
            ],
            theta=theta,
        )


def max_clock_offset(clocks: Sequence[HardwareClock], t: float) -> float:
    """Maximum pairwise difference of clock readings at real time ``t``."""
    readings = [clock.local_time(t) for clock in clocks]
    return max(readings) - min(readings)


def validate_initial_skew(
    clocks: Sequence[HardwareClock], bound: float
) -> None:
    """Check the ``max |H_v(0) - H_w(0)| <= bound`` initialization assumption."""
    offsets = [clock.offset_at_zero for clock in clocks]
    spread = max(offsets) - min(offsets)
    if spread > bound + EPS:
        raise ClockError(
            f"initial clock skew {spread} exceeds allowed bound {bound}"
        )
    if not all(math.isfinite(offset) for offset in offsets):
        raise ClockError("clock offsets must be finite")
