"""Per-round delay matrices for the vectorized backend.

The event engine asks the :class:`~repro.sim.network.DelayPolicy` for
one delay per message; the vectorized engine needs the same answers as
a ``(receivers, senders)`` array per pulse round.  Every built-in
policy has a closed-form fast path here (the formulas mirror the
scalar ``delay()`` implementations line for line); unknown policy
subclasses fall back to per-pair scalar calls, which keeps any custom
policy *correct* on this backend, just not fast.

Two deliberate semantic notes:

* Only honest→honest links matter — silent faulty nodes send nothing —
  so every sampled delay uses the honest-link bounds ``[d - u, d]``.
  Columns belonging to faulty senders are masked out by the engine
  before use.
* :class:`~repro.sim.network.RandomDelayPolicy` draws from a
  numpy ``Generator`` seeded with the policy's seed instead of
  replaying the event engine's per-message ``random.Random`` stream:
  the two engines deliver messages in different orders, so draw-order
  equality is unattainable by construction.  Both streams are
  admissible and deterministic per seed; the differential suite
  compares random-delay scenarios at the verdict level only.
"""

from __future__ import annotations

from typing import Any, Sequence

try:  # gated dependency: the event engine must work without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.sim.clocks import EPS
from repro.sim.errors import ModelViolation
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    ConstantFractionDelayPolicy,
    DelayPolicy,
    EclipseDelayPolicy,
    FlickeringPartitionDelayPolicy,
    MaximumDelayPolicy,
    MinimumDelayPolicy,
    NetworkConfig,
    PerLinkDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)


def delay_rng(policy: RandomDelayPolicy):
    """The per-run numpy generator backing a random policy's draws."""
    return np.random.default_rng(policy.seed)


def _membership(nodes: Sequence[int], members) -> "np.ndarray":
    mask = np.zeros(len(nodes), dtype=bool)
    member_set = set(members)
    for index, node in enumerate(nodes):
        if node in member_set:
            mask[index] = True
    return mask


def delay_matrix(
    policy: DelayPolicy,
    config: NetworkConfig,
    senders: Sequence[int],
    receivers: Sequence[int],
    send_real: "np.ndarray",
    rng: Any = None,
) -> "np.ndarray":
    """Delays of one round's dealer broadcasts, shape
    ``(len(receivers), len(senders))``.

    ``send_real[j]`` is the real send time of ``senders[j]``'s
    broadcast; entry ``[i, j]`` is the delay of the message
    ``senders[j] → receivers[i]``.  ``rng`` carries the persistent
    numpy generator for :class:`RandomDelayPolicy` (one per run, so
    successive rounds draw fresh values).  Self-links (where a
    receiver equals a sender) are computed like any other entry and
    must be masked by the caller.
    """
    shape = (len(receivers), len(senders))
    low, high = config.delay_bounds(True)
    kind = type(policy)
    if kind is MinimumDelayPolicy:
        matrix = np.full(shape, low)
    elif kind is ConstantFractionDelayPolicy:
        matrix = np.full(shape, high - policy.fraction * (high - low))
    elif kind is RandomDelayPolicy:
        matrix = rng.uniform(low, high, size=shape)
    elif kind is BiasedPartitionDelayPolicy:
        src_a = _membership(senders, policy.group_a)[None, :]
        dst_a = _membership(receivers, policy.group_a)[:, None]
        matrix = np.where(src_a == dst_a, low, high)
    elif kind is SkewingDelayPolicy:
        # Sender-only mask: broadcast explicitly, or the matrix comes
        # out (1, senders) instead of (receivers, senders).
        slow = _membership(senders, policy.slow_senders)[None, :]
        matrix = np.broadcast_to(
            np.where(slow, high, low), shape
        ).copy()
    elif kind is EclipseDelayPolicy:
        src_v = _membership(senders, policy.victims)[None, :]
        dst_v = _membership(receivers, policy.victims)[:, None]
        matrix = np.where(src_v | dst_v, high, low)
    elif kind is FlickeringPartitionDelayPolicy:
        src_a = _membership(senders, policy.group_a)[None, :]
        dst_a = _membership(receivers, policy.group_a)[:, None]
        same = src_a == dst_a
        phase = (
            np.floor_divide(send_real, policy.period).astype(np.int64) % 2
        )[None, :]
        fast = np.where(phase == 0, same, ~same)
        matrix = np.where(fast, low, high)
    elif kind is PerLinkDelayPolicy:
        matrix = delay_matrix(
            policy.fallback, config, senders, receivers, send_real, rng
        )
        for (src, dst), value in policy.overrides.items():
            rows = [i for i, node in enumerate(receivers) if node == dst]
            cols = [j for j, node in enumerate(senders) if node == src]
            for i in rows:
                for j in cols:
                    matrix[i, j] = value
    elif kind in (MaximumDelayPolicy, DelayPolicy):
        matrix = np.full(shape, config.d)
    else:
        # Generic subclass: fall back to the scalar protocol so any
        # custom policy stays correct (O(senders x receivers) calls).
        matrix = np.empty(shape)
        for i, dst in enumerate(receivers):
            for j, src in enumerate(senders):
                matrix[i, j] = policy.delay(
                    config, src, dst, float(send_real[j]), None, True
                )
    if matrix.size and (
        matrix.min() < low - EPS or matrix.max() > high + EPS
    ):
        raise ModelViolation(
            f"{policy.describe()} produced a delay outside "
            f"[{low}, {high}]"
        )
    return matrix
