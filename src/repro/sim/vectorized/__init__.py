"""Vectorized pulse-level simulation backend.

A second simulation engine that batches a whole CPS pulse round into
numpy array operations instead of dispatching per-message events:
per-node clock/phase/round vectors, per-round sampled delay matrices,
vectorized acceptance masks and midpoint votes.  It presents the same
``run``/``attach_checks``/``honest`` surface as
:class:`~repro.sim.scheduler.Simulation` and returns a genuine
:class:`~repro.sim.scheduler.SimulationResult`, so the conformance
monitors, pulse reports, and campaign builders consume it unchanged —
which is what lets the monitor matrix double as a cross-backend
differential oracle.

Scope: the vectorized backend covers the *silent-adversary* regime
(faulty nodes contribute ⊥ masks and nothing else) with every delay
policy and drift profile; churn and actively-Byzantine behaviours stay
on the event engine and raise :class:`UnsupportedScenarioError` here.
See ``docs/VECTORIZED.md`` for the batching model and its exactness
argument.
"""

from repro.sim.vectorized.engine import (
    UnsupportedScenarioError,
    VectorizedSimulation,
    require_numpy,
)

__all__ = [
    "UnsupportedScenarioError",
    "VectorizedSimulation",
    "require_numpy",
]
