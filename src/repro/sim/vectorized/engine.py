"""The round-batched CPS engine.

One iteration of the main loop advances *every* honest node through one
full CPS round with array operations:

1. pulse — evaluate each node's next pulse (real, local) time;
2. broadcast — each honest dealer's ``<r>_v`` leaves at local
   ``H_v(p^r_v) + theta S``; a per-round delay matrix
   (:mod:`repro.sim.vectorized.delays`) gives every arrival time;
3. accept — the TCB window test ``P < h <= P + window`` as a boolean
   mask over (receiver, dealer) pairs;
4. vote — offset estimates ``h - P - d + u - S`` where accepted (⊥
   elsewhere, 0 for self), sorted per receiver, the ``f - b`` discard
   applied by index arithmetic, midpoint taken;
5. advance — next pulse at local ``P + Delta + T``.

This is exact — not approximate — for the scenarios the backend
accepts: with silent faulty nodes and admissible honest-link delays,
Lemma 10 puts every honest dealer's message inside every honest
receiver's round-``r`` window, the event engine's early/stale-message
guards reduce to the same ``P < h <= P + window`` comparison, and echo
rejection provably never fires, so simulating echoes (and per-message
event interleavings generally) cannot change any output.  Scenarios
where that argument breaks — actively Byzantine behaviours, membership
churn — raise :class:`UnsupportedScenarioError` instead of silently
degrading.

Memory is bounded by processing receivers in blocks of ``block_size``
rows (block × n arrays, never n × n), which is what lets n = 10,000
runs fit comfortably in memory.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

try:  # gated dependency: the event engine must work without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

from repro.core.cps import CpsRoundSummary
from repro.core.params import ProtocolParameters
from repro.sim.clocks import EPS, HardwareClock, validate_initial_skew
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.network import (
    DelayPolicy,
    MaximumDelayPolicy,
    NetworkConfig,
    RandomDelayPolicy,
)
from repro.sim.scheduler import SimulationResult
from repro.sim.trace import Trace, TraceLevel, TraceSpec
from repro.sim.vectorized.delays import delay_matrix, delay_rng
from repro.sync.crusader import BOT


class UnsupportedScenarioError(ConfigurationError):
    """The vectorized backend cannot run this scenario faithfully.

    Raised at build time (never mid-run) so campaign plans fail fast;
    the message names the unsupported feature and the escape hatch
    (``backend="event"``).
    """


def require_numpy() -> None:
    """Fail with an actionable message when numpy is absent.

    The core package deliberately keeps ``networkx`` as its only hard
    dependency; the vectorized backend is the one numpy consumer and
    gates on it here instead of at import time.
    """
    if np is None:
        raise ConfigurationError(
            "the vectorized backend needs numpy "
            "(pip install numpy, or use backend='event')"
        )


class _VectorClock:
    """A hardware clock's segments as arrays, for batched evaluation."""

    __slots__ = ("starts", "locals", "rates", "constant")

    def __init__(self, clock: HardwareClock) -> None:
        segments = clock.segments()
        self.starts = np.array([s.t_start for s in segments])
        self.locals = np.array([s.local_start for s in segments])
        self.rates = np.array([s.rate for s in segments])
        self.constant = len(segments) == 1

    def local_times(self, t: "np.ndarray") -> "np.ndarray":
        """Vectorized ``H(t)`` over an array of real times."""
        if self.constant:
            return self.locals[0] + self.rates[0] * (t - self.starts[0])
        index = np.searchsorted(self.starts, t, side="right") - 1
        np.clip(index, 0, None, out=index)
        return self.locals[index] + self.rates[index] * (
            t - self.starts[index]
        )


class VectorizedSimulation:
    """Array-batched CPS execution with the event engine's surface.

    Accepts the assembly-level inputs of
    :func:`repro.core.cps.assemble_cps_simulation` (parameters, clocks,
    faulty set, delay policy, trace spec, checks) and produces a
    :class:`~repro.sim.scheduler.SimulationResult`; ``run`` /
    ``attach_checks`` / ``honest`` match the scheduler's surface, so
    :func:`~repro.analysis.runner.run_pulse_trial`, the conformance
    monitors, and the campaign builders are backend-agnostic.

    Faulty nodes are *silent*: they never pulse, never send, and each
    contributes one ⊥ to every honest node's vote — exactly the
    ``silent`` registry adversary.  Anything else is rejected by the
    facade before construction.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        clocks: Sequence[HardwareClock],
        faulty: Sequence[int] = (),
        delay_policy: Optional[DelayPolicy] = None,
        u_tilde: Optional[float] = None,
        seed: int = 0,
        trace: TraceSpec = "pulses",
        checks: Any = None,
        block_size: int = 1024,
    ) -> None:
        require_numpy()
        if len(clocks) != params.n:
            raise ConfigurationError(
                f"need {params.n} clocks, got {len(clocks)}"
            )
        if block_size < 1:
            raise ConfigurationError("block_size must be >= 1")
        # u_tilde only weakens links with a faulty endpoint; silent
        # faulty nodes never use their links, so it cannot affect any
        # vectorized execution — it is accepted (and validated) for
        # facade parity, nothing more.
        self.config = NetworkConfig(params.n, params.d, params.u, u_tilde)
        self.params = params
        self.f = params.f
        self.clocks = list(clocks)
        faulty_set = set(faulty)
        self.faulty = sorted(faulty_set)
        self.honest = [v for v in range(params.n) if v not in faulty_set]
        if not self.honest:
            raise ConfigurationError("no honest nodes")
        self.delay_policy = delay_policy or MaximumDelayPolicy()
        self.seed = seed
        self.trace = Trace.from_spec(trace)
        self.checks = checks
        #: Surface parity with the scheduler: the vectorized backend
        #: never carries membership dynamics (the facade rejects churn).
        self.dynamics = None
        self.block_size = block_size
        self.warnings: List[str] = []
        validate_initial_skew(
            [self.clocks[v] for v in self.honest], params.S
        )

    # ------------------------------------------------------------------

    def attach_checks(self, checks: Any) -> None:
        """Install (or clear) the streaming conformance observer."""
        self.checks = checks

    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_pulses: Optional[int] = None,
    ) -> SimulationResult:
        """Execute whole pulse rounds until a stop condition.

        ``max_pulses`` counts rounds (every honest node pulses once per
        round).  ``until`` stops before the first round whose pulses
        are not all within the horizon — pulses beyond ``until`` are
        never recorded, but the cutoff is per *round*, not per event
        (the batching granularity of this backend).
        """
        if max_pulses is None and until is None:
            raise ConfigurationError(
                "vectorized runs need max_pulses and/or until"
            )
        params = self.params
        honest = self.honest
        nh = len(honest)
        n = params.n
        observing = self.checks is not None or (
            self.trace.level >= TraceLevel.FULL
        )
        vclocks = [_VectorClock(self.clocks[v]) for v in honest]
        rng = (
            delay_rng(self.delay_policy)
            if isinstance(self.delay_policy, RandomDelayPolicy)
            else None
        )
        window = params.tcb_window
        fin_wait = params.tcb_finalize_wait
        offset_shift = params.d - params.u + params.S
        pulses: Dict[int, List[float]] = {v: [] for v in range(n)}
        events = 0
        end_time = 0.0
        # Next-pulse local targets; Figure 3 starts at local time S.
        local = np.full(nh, params.S)
        pulse_round = 0
        while max_pulses is None or pulse_round < max_pulses:
            pulse_round += 1
            pulse_real = np.array(
                [
                    self.clocks[v].real_time(local[i])
                    for i, v in enumerate(honest)
                ]
            )
            if until is not None:
                inside = pulse_real <= until + EPS
                if not inside.all():
                    for i in np.argsort(pulse_real, kind="stable"):
                        if inside[i]:
                            self._emit_pulse(
                                pulses, float(pulse_real[i]), honest[i],
                                pulse_round, float(local[i]),
                            )
                            events += 1
                    end_time = until
                    break
            order = np.argsort(pulse_real, kind="stable")
            for i in order:
                self._emit_pulse(
                    pulses, float(pulse_real[i]), honest[i],
                    pulse_round, float(local[i]),
                )
            if max_pulses is not None and pulse_round >= max_pulses:
                # The event engine halts the instant the slowest node
                # emits its quota-filling pulse, so the final round's
                # broadcasts, votes, and summaries never happen — match
                # that exactly (the TCB-consistency monitor's `checked`
                # count is sensitive to it).
                events += nh
                end_time = max(end_time, float(pulse_real.max()))
                break
            send_real = np.array(
                [
                    self.clocks[v].real_time(
                        local[i] + params.dealer_send_offset
                    )
                    for i, v in enumerate(honest)
                ]
            )
            correction = np.empty(nh)
            completion_local = np.empty(nh)
            accepted_total = 0
            accepts: List[Any] = []
            summaries: List[Any] = []
            for start in range(0, nh, self.block_size):
                stop = min(start + self.block_size, nh)
                rows = np.arange(start, stop)
                receivers = honest[start:stop]
                delays = delay_matrix(
                    self.delay_policy, self.config, honest, receivers,
                    send_real, rng,
                )
                arrival = send_real[None, :] + delays
                local_rx = np.empty_like(arrival)
                for i, row in enumerate(rows):
                    local_rx[i] = vclocks[row].local_times(arrival[i])
                base = local[rows][:, None]
                accept = (local_rx > base) & (
                    local_rx <= base + window + EPS
                )
                accept[np.arange(len(rows)), rows] = False
                estimates = np.where(
                    accept, local_rx - base - offset_shift, np.nan
                )
                estimates[np.arange(len(rows)), rows] = 0.0
                counts = 1 + accept.sum(axis=1)
                num_bot = n - counts
                discard = np.maximum(params.f - num_bot, 0)
                if np.any(counts <= 2 * discard):
                    bad = int(np.argmax(counts <= 2 * discard))
                    raise SimulationError(
                        f"need more than {2 * int(discard[bad])} non-bot "
                        f"estimates at node {receivers[bad]}, got "
                        f"{int(counts[bad])}"
                    )
                ordered = np.sort(estimates, axis=1)
                row_index = np.arange(len(rows))
                low = ordered[row_index, discard]
                high = ordered[row_index, counts - 1 - discard]
                correction[rows] = (low + high) / 2.0
                finalize = np.where(
                    accept, local_rx + fin_wait, -np.inf
                )
                latest = finalize.max(axis=1)
                window_close = local[rows] + window + 2.0 * EPS
                completion_local[rows] = np.where(
                    num_bot > 0,
                    np.maximum(latest, window_close),
                    latest,
                )
                accepted_total += int(accept.sum())
                if observing:
                    self._collect_round(
                        accepts, summaries, rows, receivers, accept,
                        arrival, estimates, counts, low, high,
                        correction, pulse_round, local,
                    )
            completion_real = np.array(
                [
                    self.clocks[v].real_time(completion_local[i])
                    for i, v in enumerate(honest)
                ]
            )
            end_time = max(end_time, float(completion_real.max()))
            if observing:
                self._emit_round(
                    accepts, summaries, completion_real, honest
                )
            # One modeled event per pulse, per delivered broadcast copy
            # (each dealer reaches all n-1 others), per echo fan-out of
            # an acceptance, and per timer the event engine would fire.
            events += (
                nh * (n - 1)
                + accepted_total * (n - 1)
                + 3 * nh
                + accepted_total
            )
            local = local + correction + params.T
        return SimulationResult(
            pulses=pulses,
            honest=list(honest),
            trace=self.trace,
            warnings=list(self.warnings),
            events_processed=events,
            end_time=end_time,
        )

    # ------------------------------------------------------------------

    def _emit_pulse(
        self,
        pulses: Dict[int, List[float]],
        time: float,
        node: int,
        index: int,
        local_time: float,
    ) -> None:
        pulses[node].append(time)
        self.trace.pulse(
            time=time, node=node, index=index, local_time=local_time
        )
        if self.checks is not None:
            self.checks.on_pulse(time, node, index, local_time)

    def _collect_round(
        self,
        accepts: List[Any],
        summaries: List[Any],
        rows: "np.ndarray",
        receivers: Sequence[int],
        accept: "np.ndarray",
        arrival: "np.ndarray",
        estimates: "np.ndarray",
        counts: "np.ndarray",
        low: "np.ndarray",
        high: "np.ndarray",
        correction: "np.ndarray",
        pulse_round: int,
        local: "np.ndarray",
    ) -> None:
        """Materialize per-node annotations (small-n observation path).

        Only runs when checks or a FULL trace are attached — the
        O(n^2) Python-object cost would dominate large-scale runs, and
        those run unobserved by construction.
        """
        honest = self.honest
        for i, node in enumerate(receivers):
            row_estimates: Dict[int, Any] = {}
            for j, dealer in enumerate(honest):
                if dealer == node:
                    row_estimates[node] = 0.0
                elif accept[i, j]:
                    row_estimates[dealer] = float(estimates[i, j])
                    accepts.append(
                        (
                            float(arrival[i, j]),
                            node,
                            (pulse_round, dealer),
                        )
                    )
                else:
                    row_estimates[dealer] = BOT
            for dealer in self.faulty:
                row_estimates[dealer] = BOT
            summaries.append(
                (
                    int(rows[i]),
                    CpsRoundSummary(
                        pulse_round=pulse_round,
                        pulse_local=float(local[rows[i]]),
                        estimates=row_estimates,
                        num_bot=int(self.params.n - counts[i]),
                        interval=(float(low[i]), float(high[i])),
                        correction=float(correction[rows[i]]),
                    ),
                )
            )

    def _emit_round(
        self,
        accepts: List[Any],
        summaries: List[Any],
        completion_real: "np.ndarray",
        honest: Sequence[int],
    ) -> None:
        """Feed one round's annotations in scheduler-like order:
        acceptances (by arrival time) strictly before round summaries
        (by completion time) — the order the monitors rely on."""
        for time, node, details in sorted(
            accepts, key=lambda item: (item[0], item[1])
        ):
            self._annotate(time, node, "tcb-accept", details)
        timed = [
            (float(completion_real[index]), honest[index], summary)
            for index, summary in summaries
        ]
        for time, node, summary in sorted(
            timed, key=lambda item: (item[0], item[1])
        ):
            self._annotate(time, node, "cps-round", summary)

    def _annotate(
        self, time: float, node: int, kind: str, details: Any
    ) -> None:
        self.trace.protocol(
            time=time, node=node, kind=kind, details=details
        )
        if self.checks is not None:
            self.checks.on_annotate(time, node, kind, details)
