"""Event records and deterministic ordering for the discrete-event engine.

Continuous real time is represented by floats.  At equal timestamps, events
are ordered by *kind priority* and then by insertion sequence number:

1. timers fire first,
2. then message deliveries,
3. then adversary wakeups.

Timers-before-deliveries makes the strict/open interval checks of the
paper's Algorithm TCB (Figure 2) resolve correctly at boundaries: a message
arriving exactly at a window-closing local time must not be counted as
arriving *inside* the open window, so the window-closing timer must be
processed first.  Adversary wakeups run last so the adversary observes
everything that happened "at" that instant, which only makes it stronger.

Queue representation
--------------------

The heap holds bare ``(time, priority, seq)`` tuples — never the event
objects themselves — and a slab dict maps ``seq`` to the event payload.
Tuple keys compare in C (``seq`` is unique, so the event is never
compared), which removes the Python-level ``__lt__`` dispatch that used
to dominate ``heappush``/``heappop``; cancellation is O(1) slab removal
with lazy heap cleanup.  Event records are ``__slots__`` dataclasses, so
the per-message allocation in the simulator's inner loop stays small.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Event-kind priorities (lower fires first at equal time).
PRIORITY_TIMER = 0
PRIORITY_DELIVERY = 1
PRIORITY_ADVERSARY = 2
#: Membership changes (crash/recover/join/corrupt) run after everything
#: else at the same instant: a node crashing "at t" still observes the
#: deliveries and timers due at t, which keeps churn composable with the
#: boundary-exact window semantics of Figure 2.
PRIORITY_CHURN = 3


@dataclass(frozen=True, slots=True)
class TimerEvent:
    """A local timer of an honest node coming due."""

    node: int
    tag: Any
    local_time: float


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """A message delivery: ``payload`` from ``src`` arriving at ``dst``."""

    src: int
    dst: int
    payload: Any
    send_time: float


@dataclass(frozen=True, slots=True)
class AdversaryEvent:
    """A scheduled callback into the Byzantine behaviour."""

    tag: Any


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """A scheduled membership change (crash/recover/join/corrupt/restore).

    ``action`` is the :class:`~repro.dynamics.schedule.FaultEvent` to
    execute; the scheduler hands it to the installed
    :class:`~repro.sim.runtime.DynamicsHook`.
    """

    action: Any


#: A queue entry as stored on the heap: ``(time, priority, seq)``.
HeapKey = Tuple[float, int, int]

#: Opaque handle returned by :meth:`EventQueue.push` (the slab sequence
#: number); pass it to :meth:`EventQueue.cancel`.
CancelHandle = int


class EventQueue:
    """A deterministic priority queue over simulation events.

    ``_heap`` stores ``(time, priority, seq)`` keys; ``_slab`` maps live
    ``seq`` values to their event objects.  A cancelled entry is simply
    removed from the slab — its heap key is discarded lazily when it
    reaches the front.
    """

    __slots__ = ("_heap", "_slab", "_next_seq", "cancelled")

    def __init__(self) -> None:
        self._heap: List[HeapKey] = []
        self._slab: Dict[int, Any] = {}
        self._next_seq = 0
        #: Successful :meth:`cancel` calls — a deterministic tally the
        #: telemetry layer reads as ``events.cancelled.requested``.
        self.cancelled = 0

    def push(self, time: float, priority: int, event: Any) -> CancelHandle:
        """Schedule ``event`` at ``time`` with the given kind priority."""
        seq = self._next_seq
        self._next_seq = seq + 1
        self._slab[seq] = event
        heapq.heappush(self._heap, (time, priority, seq))
        return seq

    def pop(self) -> Optional[Tuple[float, Any]]:
        """Remove and return ``(time, event)`` for the next live event."""
        popped = self.pop_entry()
        if popped is None:
            return None
        time, _priority, event = popped
        return time, event

    def pop_entry(self) -> Optional[Tuple[float, int, Any]]:
        """Remove and return ``(time, priority, event)`` for the next live
        event.

        The priority doubles as the event kind (timers, deliveries, and
        adversary wakeups are pushed with distinct priorities), which lets
        the scheduler dispatch on an int instead of ``isinstance`` checks.
        """
        heap, slab = self._heap, self._slab
        while heap:
            time, priority, seq = heapq.heappop(heap)
            event = slab.pop(seq, None)
            if event is not None:
                return time, priority, event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        heap, slab = self._heap, self._slab
        while heap and heap[0][2] not in slab:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def cancel(self, handle: CancelHandle) -> bool:
        """Cancel a scheduled event; returns whether it was still live."""
        if self._slab.pop(handle, None) is None:
            return False
        self.cancelled += 1
        return True

    def __len__(self) -> int:
        return len(self._slab)

    def __bool__(self) -> bool:
        return bool(self._slab)
