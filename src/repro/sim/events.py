"""Event records and deterministic ordering for the discrete-event engine.

Continuous real time is represented by floats.  At equal timestamps, events
are ordered by *kind priority* and then by insertion sequence number:

1. timers fire first,
2. then message deliveries,
3. then adversary wakeups.

Timers-before-deliveries makes the strict/open interval checks of the
paper's Algorithm TCB (Figure 2) resolve correctly at boundaries: a message
arriving exactly at a window-closing local time must not be counted as
arriving *inside* the open window, so the window-closing timer must be
processed first.  Adversary wakeups run last so the adversary observes
everything that happened "at" that instant, which only makes it stronger.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

#: Event-kind priorities (lower fires first at equal time).
PRIORITY_TIMER = 0
PRIORITY_DELIVERY = 1
PRIORITY_ADVERSARY = 2


@dataclass(frozen=True)
class TimerEvent:
    """A local timer of an honest node coming due."""

    node: int
    tag: Any
    local_time: float


@dataclass(frozen=True)
class DeliveryEvent:
    """A message delivery: ``payload`` from ``src`` arriving at ``dst``."""

    src: int
    dst: int
    payload: Any
    send_time: float


@dataclass(frozen=True)
class AdversaryEvent:
    """A scheduled callback into the Byzantine behaviour."""

    tag: Any


@dataclass(order=True)
class _QueueEntry:
    time: float
    priority: int
    seq: int
    event: Any = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """A deterministic priority queue over simulation events."""

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()

    def push(self, time: float, priority: int, event: Any) -> _QueueEntry:
        """Schedule ``event`` at ``time`` with the given kind priority."""
        entry = _QueueEntry(time, priority, next(self._counter), event)
        heapq.heappush(self._heap, entry)
        return entry

    def pop(self) -> Optional[Tuple[float, Any]]:
        """Remove and return ``(time, event)`` for the next live event."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                return entry.time, entry.event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


CancelHandle = Callable[[], None]


def cancel_handle(entry: _QueueEntry) -> CancelHandle:
    """Return a callable that cancels ``entry`` when invoked."""

    def cancel() -> None:
        entry.cancelled = True

    return cancel
