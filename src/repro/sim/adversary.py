"""Byzantine behaviours (the adversary's code).

A single :class:`ByzantineBehavior` instance drives *all* faulty nodes of an
execution, reflecting the paper's single coordinating adversary.  It gets
hooks for execution start, every honest send (rushing observation), every
delivery to a faulty node, and self-scheduled wakeups, and acts through the
:class:`~repro.sim.scheduler.AdversaryContext`.

This module holds protocol-agnostic behaviours; attacks that understand the
CPS/TCB message format live in :mod:`repro.core.attacks`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Hashable, Optional

from repro.crypto.signatures import Signature
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.trace import DeliveryRecord, SendRecord


class ByzantineBehavior:
    """Base behaviour: all hooks are no-ops (i.e. crashed from the start)."""

    def on_start(self, ctx) -> None:
        """Called once at time 0, after honest nodes started."""

    def on_honest_send(self, ctx, record: SendRecord) -> None:
        """Called synchronously whenever an honest node sends (rushing)."""

    def on_deliver(self, ctx, record: DeliveryRecord) -> None:
        """Called when a message is delivered to a faulty node."""

    def on_wakeup(self, ctx, tag: Any) -> None:
        """Called for wakeups scheduled via ``ctx.wake_at``."""

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        """Called when an honest node generates a pulse (full visibility)."""

    def describe(self) -> str:
        """Short name for experiment tables."""
        return type(self).__name__


class SilentAdversary(ByzantineBehavior):
    """Faulty nodes crash immediately: they never send anything.

    Against CPS this maximizes the number of ⊥ outputs (`b = f`), which
    exercises the ``f - b`` discard rule (ablation A2 flips that rule to
    show why it matters).
    """


class _HostedNodeAPI(NodeAPI):
    """A :class:`NodeAPI` that lets a behaviour host honest protocol code.

    Used by :class:`HonestUntilCrash`: the faulty node *runs the real
    protocol* (so its traffic is indistinguishable from honest traffic)
    until a configured real time, then goes silent.
    """

    def __init__(self, behavior: "HonestUntilCrash", ctx, node_id: int):
        self._behavior = behavior
        self._ctx = ctx
        self.node_id = node_id
        self.n = ctx.config.n
        self.f = ctx.f

    def local_time(self) -> float:
        return self._ctx.local_time_of(self.node_id)

    def set_timer(self, local_when: float, tag: Any) -> None:
        real = self._ctx.clock_of(self.node_id).real_time(local_when)
        self._ctx.wake_at(
            max(real, self._ctx.now), ("hosted-timer", self.node_id, tag)
        )

    def send(self, dst: int, payload: Any) -> None:
        if not self._behavior.crashed(self._ctx, self.node_id):
            self._ctx.send_from(self.node_id, dst, payload)

    def broadcast(self, payload: Any) -> None:
        for dst in range(self.n):
            if dst != self.node_id:
                self.send(dst, payload)

    def sign(self, value: Hashable) -> Signature:
        return self._ctx.sign_as(self.node_id, value)

    def pulse(self) -> None:
        self._behavior.hosted_pulses.setdefault(self.node_id, []).append(
            self._ctx.now
        )

    def annotate(self, kind: str, details: Any) -> None:
        pass


class HonestUntilCrash(ByzantineBehavior):
    """Faulty nodes execute the honest protocol, then crash.

    Parameters
    ----------
    protocol_factory:
        Builds the protocol instance each faulty node runs.
    crash_times:
        Real time at which each faulty node stops sending (``inf`` = never,
        which makes the "adversary" a useful control case).
    """

    def __init__(
        self,
        protocol_factory: Callable[[int], TimedProtocol],
        crash_times: Optional[Dict[int, float]] = None,
        default_crash_time: float = float("inf"),
    ) -> None:
        self._factory = protocol_factory
        self._crash_times = dict(crash_times or {})
        self._default_crash = default_crash_time
        self._protocols: Dict[int, TimedProtocol] = {}
        self._apis: Dict[int, _HostedNodeAPI] = {}
        self.hosted_pulses: Dict[int, list] = {}

    def crashed(self, ctx, node_id: int) -> bool:
        return ctx.now >= self._crash_times.get(node_id, self._default_crash)

    def on_start(self, ctx) -> None:
        for node_id in sorted(ctx.faulty):
            protocol = self._factory(node_id)
            api = _HostedNodeAPI(self, ctx, node_id)
            self._protocols[node_id] = protocol
            self._apis[node_id] = api
            protocol.on_start(api)

    def on_deliver(self, ctx, record: DeliveryRecord) -> None:
        node_id = record.dst
        if node_id in self._protocols and not self.crashed(ctx, node_id):
            self._protocols[node_id].on_message(
                self._apis[node_id], record.src, record.payload
            )

    def on_wakeup(self, ctx, tag: Any) -> None:
        if not (isinstance(tag, tuple) and tag and tag[0] == "hosted-timer"):
            return
        _kind, node_id, inner_tag = tag
        if node_id in self._protocols and not self.crashed(ctx, node_id):
            self._protocols[node_id].on_timer(self._apis[node_id], inner_tag)

    def describe(self) -> str:
        if self._crash_times or self._default_crash != float("inf"):
            return "honest-until-crash"
        return "honest-equivalent"


class ReplayAdversary(ByzantineBehavior):
    """Re-sends every honest signature it learns to random recipients.

    A fuzz-style stressor: it cannot forge (the knowledge checker would
    raise), but it floods the network with stale-but-valid signatures at
    adversarially chosen delays.  Robust protocols must tolerate this
    without losing their guarantees; tests run CPS against it.
    """

    def __init__(self, seed: int = 0, copies: int = 1) -> None:
        self._rng = random.Random(seed)
        self.copies = copies

    def on_deliver(self, ctx, record: DeliveryRecord) -> None:
        low, high = ctx.config.delay_bounds(False)
        for _ in range(self.copies):
            src = self._rng.choice(sorted(ctx.faulty))
            dst = self._rng.choice(ctx.honest)
            delay = self._rng.uniform(low, high)
            ctx.send_from(src, dst, record.payload, delay)

    def describe(self) -> str:
        return "replay-fuzzer"


class ScheduledSendAdversary(ByzantineBehavior):
    """Executes an explicit send schedule (for deterministic tests).

    ``schedule`` maps real times to lists of ``(src, dst, payload_fn,
    delay)`` where ``payload_fn(ctx)`` builds the payload lazily (so it can
    sign with faulty keys at send time).
    """

    def __init__(
        self,
        schedule: Dict[float, list],
    ) -> None:
        self._schedule = {t: list(actions) for t, actions in schedule.items()}

    def on_start(self, ctx) -> None:
        for time in sorted(self._schedule):
            ctx.wake_at(time, ("scheduled", time))

    def on_wakeup(self, ctx, tag: Any) -> None:
        if not (isinstance(tag, tuple) and tag and tag[0] == "scheduled"):
            return
        for src, dst, payload_fn, delay in self._schedule.get(tag[1], []):
            ctx.send_from(src, dst, payload_fn(ctx), delay)

    def describe(self) -> str:
        return "scheduled-sends"


def adversary_catalog() -> Dict[str, Callable[[], ByzantineBehavior]]:
    """Generic behaviours by name (CPS-aware attacks are in core.attacks)."""
    return {
        "silent": SilentAdversary,
        "replay": ReplayAdversary,
    }
