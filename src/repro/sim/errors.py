"""Exception hierarchy for the timed simulation substrate."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-layer errors."""


class ConfigurationError(SimulationError):
    """A simulation was configured inconsistently (bad n/f, bounds, ...)."""


class ModelViolation(SimulationError):
    """An execution stepped outside the paper's model.

    Raised e.g. when a delay policy returns a delay outside the admissible
    interval, when a hardware clock rate leaves ``[1, theta]``, or when a
    Byzantine node attempts an action the model forbids.
    """


class ForgeryError(ModelViolation):
    """A faulty node tried to send an honest signature it has not yet seen.

    The paper's adversary "needs to obtain signatures of honest nodes
    affecting a message it intends to send before it can generate the
    message"; this error is how the simulator enforces that clause.
    """


class ClockError(SimulationError):
    """A hardware clock function is malformed (non-monotone, bad rates)."""
