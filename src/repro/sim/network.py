"""Network model: configuration and message-delay policies.

The paper assumes a fully connected network where any message to or from an
honest node is delivered after at least ``d - u`` and at most ``d`` time.
For the lower bound (and for Section 1's discussion of its consequences),
links with a faulty endpoint may instead only guarantee a *weaker* minimum
delay ``d - u_tilde`` with ``u_tilde in [u, d]``.

The adversary controls delays within these bounds.  We expose that control
as a :class:`DelayPolicy`: a callback invoked per message at send time, so
policies may be adaptive (they see the full send context).  The scheduler
validates every returned delay against the model bounds and raises
:class:`~repro.sim.errors.ModelViolation` otherwise, so a misbehaving policy
cannot silently break an experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro.sim.clocks import EPS
from repro.sim.errors import ConfigurationError, ModelViolation


@dataclass(frozen=True)
class NetworkConfig:
    """Static parameters of the network model.

    Attributes
    ----------
    n:
        Number of nodes.
    d:
        Maximum end-to-end delay (send to completed processing).
    u:
        Delay uncertainty on links between honest nodes; honest-link delays
        lie in ``[d - u, d]``.
    u_tilde:
        Delay uncertainty on links with at least one faulty endpoint
        (defaults to ``u``).  Setting ``u_tilde > u`` reproduces the lower
        bound's weaker guarantee for faulty links.
    """

    n: int
    d: float
    u: float
    u_tilde: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.d <= 0:
            raise ConfigurationError(f"d must be positive, got {self.d}")
        if not 0 <= self.u <= self.d:
            raise ConfigurationError(
                f"u must lie in [0, d={self.d}], got {self.u}"
            )
        if self.u_tilde is not None and not (
            self.u - EPS <= self.u_tilde <= self.d + EPS
        ):
            raise ConfigurationError(
                f"u_tilde must lie in [u={self.u}, d={self.d}], "
                f"got {self.u_tilde}"
            )

    @property
    def faulty_uncertainty(self) -> float:
        """Effective uncertainty on links with a faulty endpoint."""
        return self.u if self.u_tilde is None else self.u_tilde

    def delay_bounds(self, link_is_honest: bool) -> Tuple[float, float]:
        """Admissible ``(min, max)`` delay for a link."""
        uncertainty = self.u if link_is_honest else self.faulty_uncertainty
        return (self.d - uncertainty, self.d)

    def validate_delay(
        self, delay: float, src_honest: bool, dst_honest: bool
    ) -> float:
        """Check ``delay`` against the model; return it (clamped to bounds).

        Raises :class:`ModelViolation` if the delay is outside the
        admissible interval by more than the floating tolerance.
        """
        low, high = self.delay_bounds(src_honest and dst_honest)
        if delay < low - EPS or delay > high + EPS:
            raise ModelViolation(
                f"delay {delay} outside [{low}, {high}] "
                f"(src_honest={src_honest}, dst_honest={dst_honest})"
            )
        return min(max(delay, low), high)


class DelayPolicy:
    """Chooses the delay of each message (the adversary's delay control).

    Subclasses override :meth:`delay`.  The default is the maximum delay
    ``d`` for every message, which is always admissible.
    """

    def delay(
        self,
        config: NetworkConfig,
        src: int,
        dst: int,
        send_time: float,
        payload: Any,
        link_is_honest: bool,
    ) -> float:
        return config.d

    def describe(self) -> str:
        """Short human-readable policy description.

        Used by experiment tables and recorded as run-shape metadata by
        the telemetry layer (the ``delay_policies`` entry of a
        :class:`~repro.telemetry.metrics.Telemetry` snapshot), so it
        must stay deterministic — derive it from configuration, never
        from per-run state.
        """
        return type(self).__name__


class MaximumDelayPolicy(DelayPolicy):
    """Every message takes exactly ``d``."""


class MinimumDelayPolicy(DelayPolicy):
    """Every message takes the minimum admissible delay for its link."""

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, _high = config.delay_bounds(link_is_honest)
        return low


class ConstantFractionDelayPolicy(DelayPolicy):
    """Every message takes ``d - fraction * uncertainty`` for its link.

    ``fraction = 0`` is :class:`MaximumDelayPolicy`; ``fraction = 1`` is
    :class:`MinimumDelayPolicy`.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must lie in [0, 1], got {fraction}"
            )
        self.fraction = fraction

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        return high - self.fraction * (high - low)

    def describe(self) -> str:
        return f"constant(fraction={self.fraction})"


class RandomDelayPolicy(DelayPolicy):
    """Delays drawn uniformly from the admissible interval, per message."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        return self._rng.uniform(low, high)

    def describe(self) -> str:
        return f"random(seed={self.seed})"


class BiasedPartitionDelayPolicy(DelayPolicy):
    """Adversarial delays that pull two node groups apart.

    Messages *within* a group travel at minimum delay, messages *across*
    groups at maximum delay.  Against averaging-style synchronizers this is
    the classic worst case: each group perceives the other as farther in
    the past than it is, sustaining a skew proportional to the uncertainty.
    """

    def __init__(self, group_a: Iterable[int]) -> None:
        self.group_a: Set[int] = set(group_a)

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        same_group = (src in self.group_a) == (dst in self.group_a)
        return low if same_group else high

    def describe(self) -> str:
        return f"biased(group_a={sorted(self.group_a)})"


class SkewingDelayPolicy(DelayPolicy):
    """Delays that make group A appear *late* and group B appear *early*.

    Messages from A are delivered as slowly as possible and messages from B
    as fast as possible.  Receivers therefore estimate A's pulses as later
    than they were, dragging corrections in opposite directions for the two
    groups.
    """

    def __init__(self, slow_senders: Iterable[int]) -> None:
        self.slow_senders: Set[int] = set(slow_senders)

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        return high if src in self.slow_senders else low

    def describe(self) -> str:
        return f"skewing(slow={sorted(self.slow_senders)})"


class EclipseDelayPolicy(DelayPolicy):
    """Starve a victim set of timely information.

    Every message *to or from* a victim takes the maximum delay ``d``
    while the rest of the network communicates at the minimum admissible
    delay — the delay-model analogue of an eclipse attack.  The victims'
    estimates of everyone else (and everyone's estimates of the victims)
    are as stale as the model permits, while the non-victims converge
    tightly among themselves.
    """

    def __init__(self, victims: Iterable[int]) -> None:
        self.victims: Set[int] = set(victims)

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        touched = src in self.victims or dst in self.victims
        return high if touched else low

    def describe(self) -> str:
        return f"eclipse(victims={sorted(self.victims)})"


class FlickeringPartitionDelayPolicy(DelayPolicy):
    """A partition whose fast/slow orientation flips every ``period``.

    During even phases (``floor(send_time / period)`` even) traffic
    *within* each group is fast and cross-group traffic slow — the
    :class:`BiasedPartitionDelayPolicy` worst case; during odd phases
    the roles reverse.  A time-varying adversary like this probes the
    *stability* of the synchronizer's correction loop rather than its
    static steady state: the delay landscape changes faster than the
    estimates that were made under the previous phase expire.
    """

    def __init__(self, group_a: Iterable[int], period: float) -> None:
        if period <= 0:
            raise ConfigurationError(
                f"period must be positive, got {period}"
            )
        self.group_a: Set[int] = set(group_a)
        self.period = period

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        same_group = (src in self.group_a) == (dst in self.group_a)
        phase = int(send_time // self.period) % 2
        fast = same_group if phase == 0 else not same_group
        return low if fast else high

    def describe(self) -> str:
        return (
            f"flicker(group_a={sorted(self.group_a)}, "
            f"period={self.period})"
        )


class PerLinkDelayPolicy(DelayPolicy):
    """Explicit per-link delays with a fallback policy.

    ``overrides`` maps ``(src, dst)`` to a fixed delay.  Used by tests and
    by the lower-bound cross-checks, where delays are dictated exactly.
    """

    def __init__(
        self,
        overrides: Dict[Tuple[int, int], float],
        fallback: Optional[DelayPolicy] = None,
    ) -> None:
        self.overrides = dict(overrides)
        self.fallback = fallback or MaximumDelayPolicy()

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        if (src, dst) in self.overrides:
            return self.overrides[(src, dst)]
        return self.fallback.delay(
            config, src, dst, send_time, payload, link_is_honest
        )

    def describe(self) -> str:
        return f"per-link({len(self.overrides)} overrides)"
