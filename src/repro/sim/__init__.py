"""Timed discrete-event simulation substrate.

This package realizes the paper's network and timing model:

* :mod:`repro.sim.clocks` — hardware clocks with rates in ``[1, theta]``;
* :mod:`repro.sim.network` — delays in ``[d - u, d]`` (``[d - u_tilde, d]``
  on links with a faulty endpoint), adversary-controlled via delay policies;
* :mod:`repro.sim.scheduler` — the deterministic event loop tying together
  honest protocol state machines and a Byzantine behaviour;
* :mod:`repro.sim.knowledge` — enforcement of signature unforgeability
  against the adversary;
* :mod:`repro.sim.trace` — structured execution records.
"""

from repro.sim.adversary import (
    ByzantineBehavior,
    HonestUntilCrash,
    ReplayAdversary,
    ScheduledSendAdversary,
    SilentAdversary,
)
from repro.sim.clocks import EPS, ClockSegment, HardwareClock
from repro.sim.errors import (
    ClockError,
    ConfigurationError,
    ForgeryError,
    ModelViolation,
    SimulationError,
)
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    ConstantFractionDelayPolicy,
    DelayPolicy,
    MaximumDelayPolicy,
    MinimumDelayPolicy,
    NetworkConfig,
    PerLinkDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import AdversaryContext, Simulation, SimulationResult
from repro.sim.trace import Trace, TraceLevel

__all__ = [
    "AdversaryContext",
    "BiasedPartitionDelayPolicy",
    "ByzantineBehavior",
    "ClockError",
    "ClockSegment",
    "ConfigurationError",
    "ConstantFractionDelayPolicy",
    "DelayPolicy",
    "EPS",
    "ForgeryError",
    "HardwareClock",
    "HonestUntilCrash",
    "MaximumDelayPolicy",
    "MinimumDelayPolicy",
    "ModelViolation",
    "NetworkConfig",
    "NodeAPI",
    "PerLinkDelayPolicy",
    "RandomDelayPolicy",
    "ReplayAdversary",
    "ScheduledSendAdversary",
    "SilentAdversary",
    "SimulationError",
    "Simulation",
    "SimulationResult",
    "SkewingDelayPolicy",
    "TimedProtocol",
    "Trace",
    "TraceLevel",
]
