"""repro — a reproduction of "Optimal Clock Synchronization with Signatures"
(Lenzen & Loss, PODC 2022).

Quickstart::

    from repro import derive_parameters, build_cps_simulation, PulseReport

    params = derive_parameters(theta=1.001, d=1.0, u=0.01, n=8)
    simulation = build_cps_simulation(params, faulty=[5, 6, 7])
    result = simulation.run(max_pulses=20)
    print(PulseReport.from_pulses(result.honest_pulses()))

Package map:

* :mod:`repro.core` — Algorithm CPS, TCB, parameters, the Theorem 5 lower
  bound, and pulse-based logical clocks / synchronizers;
* :mod:`repro.sync` — the synchronous substrate: crusader broadcast,
  approximate agreement, Dolev-Strong;
* :mod:`repro.sim` — discrete-event timed simulation (clocks, delays,
  Byzantine behaviours, signature-knowledge enforcement);
* :mod:`repro.crypto` — symbolic unforgeable signatures and PKI;
* :mod:`repro.baselines` — Lynch-Welch, signed-relay, chain-relay;
* :mod:`repro.scenarios` — the scenario registry: adversaries, delay
  policies, topologies, and drift profiles under stable string keys;
* :mod:`repro.campaigns` — declarative sweep campaigns: per-scale
  grids, parallel execution, content-addressed result caching;
* :mod:`repro.analysis` — metrics, theory bounds, experiments E1-E10,
  ablations A1-A3, and the STRESS campaign.

See ``docs/ARCHITECTURE.md`` for the package-to-paper mapping and the
generated ``docs/EXPERIMENTS.md`` for the experiment catalog.
"""

from repro.analysis.metrics import PulseReport
from repro.core.cps import CpsNode, build_cps_simulation
from repro.core.lower_bound import run_lower_bound
from repro.core.params import (
    THETA_MAX,
    ProtocolParameters,
    derive_parameters,
    max_faults,
)
from repro.sim.scheduler import Simulation, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "CpsNode",
    "ProtocolParameters",
    "PulseReport",
    "Simulation",
    "SimulationResult",
    "THETA_MAX",
    "__version__",
    "build_cps_simulation",
    "derive_parameters",
    "max_faults",
    "run_lower_bound",
]
