"""repro — a reproduction of "Optimal Clock Synchronization with Signatures"
(Lenzen & Loss, PODC 2022).

Quickstart::

    from repro import PulseReport, build_simulation

    built = build_simulation(
        {"n": 8, "adversary": "silent", "delay": "maximum"},
        backend="event",  # or "vectorized" for the numpy engine
    )
    result = built.simulation.run(max_pulses=20)
    print(PulseReport.from_pulses(result.honest_pulses()))

Package map:

* :mod:`repro.build` — the unified :func:`build_simulation` facade:
  registry-keyed cases on a selectable ``event``/``vectorized`` backend;
* :mod:`repro.core` — Algorithm CPS, TCB, parameters, the Theorem 5 lower
  bound, and pulse-based logical clocks / synchronizers;
* :mod:`repro.sync` — the synchronous substrate: crusader broadcast,
  approximate agreement, Dolev-Strong;
* :mod:`repro.sim` — discrete-event timed simulation (clocks, delays,
  Byzantine behaviours, signature-knowledge enforcement) plus the
  round-batched numpy engine in :mod:`repro.sim.vectorized`;
* :mod:`repro.crypto` — symbolic unforgeable signatures and PKI;
* :mod:`repro.baselines` — Lynch-Welch, signed-relay, chain-relay;
* :mod:`repro.scenarios` — the scenario registry: adversaries, delay
  policies, topologies, and drift profiles under stable string keys;
* :mod:`repro.campaigns` — declarative sweep campaigns: per-scale
  grids, parallel execution, content-addressed result caching;
* :mod:`repro.analysis` — metrics, theory bounds, experiments E1-E10,
  ablations A1-A3, and the STRESS campaign.

See ``docs/ARCHITECTURE.md`` for the package-to-paper mapping and the
generated ``docs/EXPERIMENTS.md`` for the experiment catalog.
"""

from repro.analysis.metrics import PulseReport
from repro.build import (
    BACKENDS,
    BuiltSimulation,
    UnknownBackendError,
    build_simulation,
    resolve_backend,
)
from repro.core.cps import (
    CpsNode,
    assemble_cps_simulation,
    build_cps_simulation,
)
from repro.core.lower_bound import run_lower_bound
from repro.core.params import (
    THETA_MAX,
    ProtocolParameters,
    derive_parameters,
    max_faults,
)
from repro.sim.scheduler import Simulation, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "BuiltSimulation",
    "CpsNode",
    "ProtocolParameters",
    "PulseReport",
    "Simulation",
    "SimulationResult",
    "THETA_MAX",
    "UnknownBackendError",
    "__version__",
    "assemble_cps_simulation",
    "build_cps_simulation",
    "build_simulation",
    "derive_parameters",
    "max_faults",
    "resolve_backend",
    "run_lower_bound",
]
