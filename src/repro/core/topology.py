"""General networks (Appendix A): CPS beyond full connectivity.

The paper: *"In the setting with signatures, (f+1)-connectivity is
trivially necessary and sufficient to simulate full connectivity of the
network. ... Our algorithm can be translated to any known
(f+1)-connected network in the same way, where u~ and d are replaced by
the maximum end-to-end delay and uncertainty over all paths used to
simulate full connectivity."*

This module implements that translation layer:

* verify the `(f+1)`-connectivity requirement (and the `(2f+1)` bound the
  signature-free setting would need instead);
* pick, for every node pair, `f + 1` vertex-disjoint simulation paths
  (via networkx's disjoint-path machinery) — with signatures, a message
  routed along `f + 1` vertex-disjoint paths reaches its target on at
  least one fully honest path, and the signature authenticates it
  regardless of which path delivered it first;
* aggregate per-link delay intervals into the effective end-to-end
  `(d_eff, u_eff)` over all chosen paths, and hand those to the standard
  :func:`~repro.core.params.derive_parameters`;
* quantify the paper's final warning: keeping `u_eff` small requires
  *balancing* path lengths — the module reports the imbalance penalty.

The translation is conservative: the effective uncertainty is the spread
between the fastest possible and slowest possible end-to-end delivery
over the selected paths, exactly the quantity the receiver faces when it
cannot tell which path (or how adversarially delayed) a delivery was.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.params import ProtocolParameters, derive_parameters
from repro.sim.errors import ConfigurationError

Edge = Tuple[int, int]


@dataclass(frozen=True)
class LinkTiming:
    """Delay interval ``[d - u, d]`` of one physical link."""

    d: float
    u: float

    def __post_init__(self) -> None:
        if self.d <= 0 or not 0 <= self.u <= self.d:
            raise ConfigurationError(
                f"link timing needs 0 <= u <= d, d > 0; got d={self.d}, "
                f"u={self.u}"
            )


def required_connectivity(f: int, with_signatures: bool = True) -> int:
    """Node connectivity needed to tolerate ``f`` faults.

    With signatures, ``f + 1`` vertex-disjoint paths suffice (one of them
    is fully honest, and signatures authenticate end-to-end); without,
    ``2f + 1`` are needed so honest paths form a majority [11].
    """
    if f < 0:
        raise ConfigurationError(f"f must be non-negative, got {f}")
    return f + 1 if with_signatures else 2 * f + 1


def check_connectivity(
    graph: nx.Graph, f: int, with_signatures: bool = True
) -> None:
    """Raise unless ``graph`` is connected enough to tolerate ``f`` faults."""
    needed = required_connectivity(f, with_signatures)
    if graph.number_of_nodes() <= needed:
        raise ConfigurationError(
            f"need more than {needed} nodes for connectivity {needed}"
        )
    actual = nx.node_connectivity(graph)
    if actual < needed:
        raise ConfigurationError(
            f"graph has node connectivity {actual}, but tolerating f={f} "
            f"faults {'with' if with_signatures else 'without'} signatures "
            f"needs {needed}"
        )


@dataclass(frozen=True)
class PathTiming:
    """End-to-end delay interval of one simulation path."""

    nodes: Tuple[int, ...]
    d: float   # maximum end-to-end delay (sum of link maxima)
    d_min: float  # minimum end-to-end delay (sum of link minima)

    @property
    def u(self) -> float:
        return self.d - self.d_min

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1


@dataclass
class SimulatedTopology:
    """A virtual fully connected overlay over a sparse physical network.

    Attributes
    ----------
    paths:
        For each ordered pair ``(src, dst)``: the ``f + 1`` vertex-disjoint
        paths chosen to simulate the virtual link.
    d_eff, u_eff:
        The effective delay bound and uncertainty of the overlay: the
        receiver accepts the first authenticated copy, which may arrive as
        early as the fastest path's minimum and as late as the slowest
        path's maximum (the adversary delays every copy maximally and may
        control all but one path).
    """

    graph: nx.Graph
    f: int
    paths: Dict[Tuple[int, int], List[PathTiming]]
    d_eff: float
    u_eff: float

    def imbalance_penalty(self) -> float:
        """How much of ``u_eff`` is due to unbalanced path lengths.

        The paper's closing remark: *"one needs to balance the length (in
        terms of overall delay) of the utilized paths in order to keep u~
        much smaller than d."*  Returns ``u_eff`` minus the worst
        single-path uncertainty — the share caused purely by some pairs'
        paths being longer than others' fastest.
        """
        worst_single = max(
            path.u
            for path_list in self.paths.values()
            for path in path_list
        )
        return max(self.u_eff - worst_single, 0.0)

    def derive_parameters(
        self, theta: float, n: Optional[int] = None
    ) -> ProtocolParameters:
        """CPS parameters for the overlay (Appendix A translation)."""
        return derive_parameters(
            theta,
            self.d_eff,
            self.u_eff,
            self.graph.number_of_nodes() if n is None else n,
            f=self.f,
        )


def _path_timing(
    nodes: Sequence[int], timings: Dict[Edge, LinkTiming]
) -> PathTiming:
    total_max = 0.0
    total_min = 0.0
    for a, b in zip(nodes, nodes[1:]):
        key = (a, b) if (a, b) in timings else (b, a)
        try:
            link = timings[key]
        except KeyError:
            raise ConfigurationError(
                f"no timing given for link {a}-{b}"
            ) from None
        total_max += link.d
        total_min += link.d - link.u
    return PathTiming(tuple(nodes), total_max, total_min)


def simulate_full_connectivity(
    graph: nx.Graph,
    timings: Dict[Edge, LinkTiming],
    f: int,
    with_signatures: bool = True,
    balance: bool = True,
    theta: float = 1.0,
) -> SimulatedTopology:
    """Build the virtual fully connected overlay.

    Selects, for every node pair, the required number of vertex-disjoint
    paths (preferring low worst-case delay) and aggregates the end-to-end
    timing.

    ``balance`` applies the paper's closing prescription: *"one needs to
    balance the length (in terms of overall delay) of the utilized paths
    in order to keep u~ much smaller than d"*.  Relays on a fast path pad
    their forwarding with local-time holds so every path's worst-case
    delay matches the globally slowest one (``D*``).  A pad of nominal
    length ``D* - d_path`` elapses at least ``(D* - d_path)/theta`` real
    time on a drifting clock, so the balanced per-path uncertainty is
    ``u_path + (D* - d_path)(1 - 1/theta)`` — the overlay uncertainty
    drops from "spread of path lengths" to "per-path uncertainty plus a
    drift term", i.e. ``Theta(L (u + (theta-1) d))`` for ``L``-hop paths.

    Without balancing, the overlay's uncertainty is the raw spread
    between the fastest minimum and the slowest maximum, which for
    non-regular topologies is typically ``Theta(d_eff)`` and makes the
    derived CPS parameters infeasible — quantifying the paper's warning.

    Raises :class:`ConfigurationError` if the graph's connectivity is
    insufficient or a link's timing is missing.
    """
    if theta < 1.0:
        raise ConfigurationError(f"theta must be >= 1, got {theta}")
    check_connectivity(graph, f, with_signatures)
    needed = required_connectivity(f, with_signatures)
    missing = [
        edge
        for edge in graph.edges
        if edge not in timings and (edge[1], edge[0]) not in timings
    ]
    if missing:
        raise ConfigurationError(f"links without timing: {missing}")

    paths: Dict[Tuple[int, int], List[PathTiming]] = {}
    for src, dst in itertools.permutations(sorted(graph.nodes), 2):
        disjoint = list(nx.node_disjoint_paths(graph, src, dst))
        if len(disjoint) < needed:  # pragma: no cover - connectivity checked
            raise ConfigurationError(
                f"only {len(disjoint)} disjoint paths between {src} and "
                f"{dst}, need {needed}"
            )
        paths[(src, dst)] = sorted(
            (_path_timing(p, timings) for p in disjoint),
            key=lambda timing: timing.d,
        )[:needed]

    d_eff = max(
        timing.d for path_list in paths.values() for path_list in [path_list]
        for timing in path_list
    )
    if balance:
        u_eff = max(
            timing.u + (d_eff - timing.d) * (1.0 - 1.0 / theta)
            for path_list in paths.values()
            for timing in path_list
        )
    else:
        fastest_minimum = min(
            min(timing.d_min for timing in path_list)
            for path_list in paths.values()
        )
        u_eff = d_eff - fastest_minimum
    u_eff = min(u_eff, d_eff)
    return SimulatedTopology(graph, f, paths, d_eff, u_eff)


def circulant(n: int, jumps: Iterable[int]) -> nx.Graph:
    """A circulant graph — the canonical balanced sparse topology.

    ``circulant(n, [1, 2])`` is 4-regular with node connectivity 4: it
    tolerates f = 3 with signatures while every node has only 4 links.
    """
    jumps = list(jumps)
    if n < 3 or not jumps:
        raise ConfigurationError("need n >= 3 and at least one jump")
    return nx.circulant_graph(n, jumps)


def random_regular(n: int, degree: int = 4, seed: int = 0) -> nx.Graph:
    """A connected random ``degree``-regular graph.

    Random regular graphs are asymptotically almost surely
    ``degree``-connected, which makes them the natural "what does a
    *typical* balanced sparse network buy us" counterpart to the
    worst-case-designed circulant: with signatures they tolerate
    ``f = degree - 1`` while every node keeps ``degree`` links.  Samples
    are drawn with deterministic seeds and re-drawn (up to 64 times)
    until one achieves full connectivity ``degree``, so the result is a
    pure function of ``(n, degree, seed)``.
    """
    if n <= degree:
        raise ConfigurationError(
            f"random_regular needs n > degree, got n={n}, degree={degree}"
        )
    if (n * degree) % 2 != 0:
        raise ConfigurationError(
            f"n * degree must be even, got n={n}, degree={degree}"
        )
    for attempt in range(64):
        graph = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(graph) and (
            nx.node_connectivity(graph) == degree
        ):
            return graph
    raise ConfigurationError(  # pragma: no cover - vanishing probability
        f"no {degree}-connected {degree}-regular graph on {n} nodes "
        f"found in 64 attempts from seed {seed}"
    )


def small_world(
    n: int, k: int = 4, p: float = 0.25, seed: int = 0
) -> nx.Graph:
    """A connected Watts–Strogatz small-world graph.

    Starts from a ring where each node links to its ``k`` nearest
    neighbours and rewires each edge with probability ``p``.  Rewiring
    shortens average path length (good for the overlay's ``d_eff``) but
    *unbalances* the topology — exactly the regime where the paper's
    closing warning bites: unbalanced path lengths inflate ``u_eff``
    unless relays pad (see :func:`simulate_full_connectivity`).  The
    sample is deterministic in ``(n, k, p, seed)``.
    """
    if k >= n:
        raise ConfigurationError(
            f"small_world needs k < n, got n={n}, k={k}"
        )
    return nx.connected_watts_strogatz_graph(n, k, p, tries=200, seed=seed)


def uniform_timings(
    graph: nx.Graph, d: float, u: float
) -> Dict[Edge, LinkTiming]:
    """Identical timing on every link."""
    return {edge: LinkTiming(d, u) for edge in graph.edges}
