"""Logical clocks from pulses ([14, Ch. 9, Sec. 3.3.3/3.3.4]).

Pulse synchronization and bounded-skew/bounded-rate logical clocks are
equivalent up to minor order terms.  This module performs the standard
conversion: node ``v``'s logical clock assigns value ``i * nominal_period``
to its ``i``-th pulse and interpolates linearly in between (extrapolating
at the nominal rate after the last pulse).

Given CPS's guarantees (skew ``S``, period in ``[P_min, P_max]``), the
resulting logical clocks have

* skew at most ``S + (P_max - P_min)`` at all times, and
* rates within ``[nominal_period / P_max, nominal_period / P_min]``.

:func:`logical_skew` measures the realized skew of a set of logical clocks
on a time grid, which experiment E4 compares against the bound.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sim.errors import ConfigurationError


@dataclass(frozen=True)
class LogicalClock:
    """Piecewise-linear logical clock through ``(p_i, i * period)``."""

    pulse_times: Sequence[float]
    nominal_period: float

    def __post_init__(self) -> None:
        if len(self.pulse_times) < 2:
            raise ConfigurationError(
                "need at least two pulses to interpolate a logical clock"
            )
        if self.nominal_period <= 0:
            raise ConfigurationError("nominal_period must be positive")
        times = list(self.pulse_times)
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("pulse times must be increasing")

    def value(self, t: float) -> float:
        """Logical time at real time ``t``.

        Before the first pulse, extrapolates backwards at the first
        segment's rate; after the last pulse, at the last segment's rate.
        """
        times = self.pulse_times
        if t >= times[-1]:
            last_value = (len(times) - 1) * self.nominal_period
            last_rate = self.nominal_period / (times[-1] - times[-2])
            return last_value + last_rate * (t - times[-1])
        index = bisect.bisect_right(times, t) - 1
        index = max(min(index, len(times) - 2), 0)
        span = times[index + 1] - times[index]
        fraction = (t - times[index]) / span
        return (index + fraction) * self.nominal_period

    def rate_bounds(self) -> tuple:
        """Min/max slope over the interpolated segments."""
        rates = [
            self.nominal_period / (b - a)
            for a, b in zip(self.pulse_times, self.pulse_times[1:])
        ]
        return (min(rates), max(rates))


def build_logical_clocks(
    pulses: Dict[int, List[float]], nominal_period: float
) -> Dict[int, LogicalClock]:
    """One logical clock per node from a pulse-time map."""
    return {
        node: LogicalClock(tuple(times), nominal_period)
        for node, times in pulses.items()
        if len(times) >= 2
    }


def logical_skew(
    clocks: Dict[int, LogicalClock],
    start: float,
    end: float,
    samples: int = 200,
) -> float:
    """Maximum pairwise logical-clock difference over ``[start, end]``."""
    if not clocks or samples < 1:
        raise ConfigurationError("need clocks and at least one sample")
    worst = 0.0
    for i in range(samples):
        t = start + (end - start) * i / max(samples - 1, 1)
        values = [clock.value(t) for clock in clocks.values()]
        worst = max(worst, max(values) - min(values))
    return worst
