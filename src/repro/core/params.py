"""Protocol parameters for Algorithm CPS (Theorem 17 / Corollary 4).

The analysis ties together three quantities:

* the measurement error bound (defined before Lemma 12)

  ``delta = 2u + (theta^2 - 1) d + 2 (theta^3 - theta^2) S``;

* the Corollary 15 feasibility constraint on the nominal round length

  ``T >= (theta^2 + theta + 1) S + (theta + 1) d - 2u``;

* the Lemma 16 contraction condition

  ``S (2 - theta) >= 2 (2 theta - 1) delta + 2 (theta - 1) T``.

Because ``delta`` itself contains ``S``, we solve the self-consistent linear
system exactly.  With ``T`` tied to its feasibility bound, the closed form is

  ``S = N(theta, d, u) / D(theta)``,
  ``N = 2 (2θ-1) (2u + (θ²-1) d) + 2 (θ-1) ((θ+1) d - 2u)``,
  ``D = -8 θ^4 + 10 θ^3 - 4 θ^2 - θ + 4``,

which is positive for ``theta < THETA_MAX ≈ 1.0795``.  (The paper's
Corollary 4 quotes feasibility up to ``theta <= 1.11`` with the slightly
different constant bookkeeping of its appendix; both are
``Theta(u + (theta - 1) d)`` and we document the difference in
docs/EXPERIMENTS.md.)  ``S`` also serves as the bound on initial clock offsets:
CPS assumes ``H_v(0) in [0, S]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.sim.errors import ConfigurationError


class InfeasibleParameters(ConfigurationError):
    """The requested (theta, d, u, T) admit no valid skew bound S."""


def _lemma16_denominator(theta: float) -> float:
    """``D(theta)`` for the T-tied closed form (see module docstring)."""
    return (
        -8.0 * theta**4 + 10.0 * theta**3 - 4.0 * theta**2 - theta + 4.0
    )


def _fixed_t_denominator(theta: float) -> float:
    """Denominator when ``T`` is given: ``(2-θ) - 4(2θ-1)θ²(θ-1)``."""
    return (2.0 - theta) - 4.0 * (2.0 * theta - 1.0) * theta**2 * (
        theta - 1.0
    )


def _solve_theta_max() -> float:
    """Largest drift rate our derivation supports (root of ``D``)."""
    low, high = 1.0, 1.5
    for _ in range(200):
        mid = (low + high) / 2.0
        if _lemma16_denominator(mid) > 0:
            low = mid
        else:
            high = mid
    return low


#: Maximum supported hardware-clock drift rate (exclusive).
THETA_MAX = _solve_theta_max()


def max_faults(n: int) -> int:
    """Optimal resilience with signatures: ``ceil(n/2) - 1`` (paper's f)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return math.ceil(n / 2) - 1


@dataclass(frozen=True)
class ProtocolParameters:
    """Validated parameters for one CPS deployment.

    Attributes
    ----------
    n, f:
        System size and resilience (``f <= ceil(n/2) - 1``).
    theta:
        Maximum hardware clock rate (minimum normalized to 1).
    d, u:
        Maximum delay and delay uncertainty (honest links).
    T:
        Nominal round length (local-time units between pulses, before the
        correction ``Delta``).
    S:
        The proven skew bound; also the assumed bound on initial offsets.
    """

    n: int
    f: int
    theta: float
    d: float
    u: float
    T: float
    S: float

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"CPS needs n >= 2, got n={self.n}")
        if not 0 <= self.f <= max_faults(self.n):
            raise ConfigurationError(
                f"f={self.f} outside [0, ceil(n/2)-1={max_faults(self.n)}]"
            )
        if self.theta < 1.0:
            raise ConfigurationError(f"theta must be >= 1, got {self.theta}")
        if self.u < 0 or self.d <= 0:
            raise ConfigurationError(
                f"need d > 0 and u >= 0, got d={self.d}, u={self.u}"
            )
        if 2 * self.u >= self.d:
            raise ConfigurationError(
                f"TCB requires u < d/2 (finalize wait d - 2u must be "
                f"positive), got u={self.u}, d={self.d}"
            )
        if self.S <= 0 or self.T <= 0:
            raise ConfigurationError("S and T must be positive")

    # -- derived quantities (all straight from the paper) ---------------

    @property
    def delta(self) -> float:
        """Estimate error bound (before Lemma 12)."""
        return (
            2.0 * self.u
            + (self.theta**2 - 1.0) * self.d
            + 2.0 * (self.theta**3 - self.theta**2) * self.S
        )

    @property
    def dealer_send_offset(self) -> float:
        """Local-time delay before the dealer sends: ``theta * S``."""
        return self.theta * self.S

    @property
    def tcb_window(self) -> float:
        """Local-time acceptance window length after a pulse:
        ``theta (d + (theta + 1) S)`` (Figure 2)."""
        return self.theta * (self.d + (self.theta + 1.0) * self.S)

    @property
    def tcb_finalize_wait(self) -> float:
        """Local time between acceptance and output: ``d - 2u``."""
        return self.d - 2.0 * self.u

    @property
    def p_min_bound(self) -> float:
        """Theorem 17's minimum-period guarantee."""
        return (self.T - (self.theta + 1.0) * self.S) / self.theta

    @property
    def p_max_bound(self) -> float:
        """Theorem 17's maximum-period guarantee."""
        return self.T + 3.0 * self.S

    @property
    def consistency_window(self) -> float:
        """Lemma 11: max real-time spread of honest acceptances of one
        dealer: ``(1 - 1/theta) d + 2u / theta``."""
        return (1.0 - 1.0 / self.theta) * self.d + 2.0 * self.u / self.theta

    def check_feasible(self) -> None:
        """Verify the Lemma 16 and Corollary 15 preconditions hold."""
        t_floor = (
            (self.theta**2 + self.theta + 1.0) * self.S
            + (self.theta + 1.0) * self.d
            - 2.0 * self.u
        )
        if self.T < t_floor - 1e-9:
            raise InfeasibleParameters(
                f"T={self.T} below Corollary 15 floor {t_floor}"
            )
        lhs = self.S * (2.0 - self.theta)
        rhs = (
            2.0 * (2.0 * self.theta - 1.0) * self.delta
            + 2.0 * (self.theta - 1.0) * self.T
        )
        if lhs < rhs - 1e-9:
            raise InfeasibleParameters(
                f"Lemma 16 contraction violated: S(2-theta)={lhs} < {rhs}"
            )

    def with_system(self, n: int, f: Optional[int] = None) -> "ProtocolParameters":
        """Same timing parameters for a different system size."""
        new_f = max_faults(n) if f is None else f
        updated = replace(self, n=n, f=new_f)
        updated.check_feasible()
        return updated


def derive_parameters(
    theta: float,
    d: float,
    u: float,
    n: int,
    f: Optional[int] = None,
    T: Optional[float] = None,
    slack: float = 1.0,
) -> ProtocolParameters:
    """Compute a feasible ``(S, T)`` pair for the given model parameters.

    Parameters
    ----------
    theta, d, u:
        Model parameters (``1 <= theta < THETA_MAX``, ``0 <= u < d/2``).
    n, f:
        System size and resilience; ``f`` defaults to ``ceil(n/2) - 1``.
    T:
        Optional explicit round length.  If omitted, ``T`` is tied to its
        Corollary 15 floor (the fastest admissible pulse rate).
    slack:
        Multiplies the derived skew bound ``S`` (``>= 1``); useful to study
        how conservative the analysis is.

    Raises
    ------
    InfeasibleParameters
        If ``theta >= THETA_MAX`` (no S exists) or the explicit ``T`` is
        infeasible.
    """
    if theta < 1.0:
        raise ConfigurationError(f"theta must be >= 1, got {theta}")
    if slack < 1.0:
        raise ConfigurationError(f"slack must be >= 1, got {slack}")
    if f is None:
        f = max_faults(n)
    base = 2.0 * u + (theta**2 - 1.0) * d
    amplification = 2.0 * (2.0 * theta - 1.0)

    if T is None:
        denominator = _lemma16_denominator(theta)
        if denominator <= 0:
            raise InfeasibleParameters(
                f"theta={theta} >= THETA_MAX={THETA_MAX:.6f}: the Lemma 16 "
                "contraction cannot compensate the drift"
            )
        numerator = amplification * base + 2.0 * (theta - 1.0) * (
            (theta + 1.0) * d - 2.0 * u
        )
        s_value = slack * (numerator / denominator)
        if s_value <= 0:
            # Degenerate corner: theta == 1 and u == 0 — perfect clocks and
            # exact delays need no correction, but S must stay positive for
            # the algorithm's windows; pick a tiny S relative to d.
            s_value = 1e-9 * d
        t_value = (
            (theta**2 + theta + 1.0) * s_value + (theta + 1.0) * d - 2.0 * u
        )
    else:
        denominator = _fixed_t_denominator(theta)
        if denominator <= 0:
            raise InfeasibleParameters(
                f"theta={theta} too large for a fixed-T derivation"
            )
        s_value = slack * (
            (amplification * base + 2.0 * (theta - 1.0) * T) / denominator
        )
        if s_value <= 0:
            s_value = 1e-9 * d
        t_value = T

    params = ProtocolParameters(
        n=n, f=f, theta=theta, d=d, u=u, T=t_value, S=s_value
    )
    params.check_feasible()
    return params
