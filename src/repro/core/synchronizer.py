"""Round simulation on top of pulse synchronization (the intro application).

The paper motivates clock synchronization as a precise generalization of a
network synchronizer: if honest pulses have skew at most ``S`` and minimum
period at least ``S + d``, then a message sent at pulse ``i`` is delivered
before every honest node's pulse ``i + 1`` — pulses delimit simulated
lock-step rounds, each taking at most ``P_max`` real time (compared to the
``r (d + S)`` the intro quotes for a synchronizer built from logical
clocks).

Notably, the default CPS parameters *always* satisfy the separation
condition: ``P_min = (T - (theta+1) S) / theta >= S + d`` holds whenever
``T`` meets its Corollary 15 floor and ``d > 2u`` (a short calculation,
checked by :func:`supports_round_simulation` and asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.params import ProtocolParameters
from repro.sim.clocks import EPS
from repro.sim.errors import ConfigurationError


def supports_round_simulation(params: ProtocolParameters) -> bool:
    """Does ``P_min >= S + d`` hold for these parameters?"""
    return params.p_min_bound >= params.S + params.d - EPS


@dataclass
class RoundSchedule:
    """Rounds carved out of realized honest pulse times."""

    #: per round i (0-based): [start, deadline] = [max pulse i+1 times' ...]
    starts: List[float]
    ends: List[float]
    violations: List[int]

    @property
    def rounds(self) -> int:
        return len(self.starts)

    def durations(self) -> List[float]:
        return [b - a for a, b in zip(self.starts, self.ends)]


def verify_round_separation(
    pulses: Dict[int, List[float]], d: float
) -> RoundSchedule:
    """Check the synchronizer condition on realized pulses.

    Round ``i`` spans from the *last* honest pulse ``i`` to the *first*
    honest pulse ``i + 1``; simulation is sound iff that gap is at least
    ``d`` for every round (every round-``i`` message arrives before anyone
    starts round ``i + 1``).  Returns the schedule plus any violating
    round indices.
    """
    if not pulses:
        raise ConfigurationError("no pulses supplied")
    count = min(len(times) for times in pulses.values())
    if count < 2:
        raise ConfigurationError("need at least two pulses per node")
    starts: List[float] = []
    ends: List[float] = []
    violations: List[int] = []
    for i in range(count - 1):
        start = max(times[i] for times in pulses.values())
        end = min(times[i + 1] for times in pulses.values())
        starts.append(start)
        ends.append(end)
        if end - start < d - EPS:
            violations.append(i)
    return RoundSchedule(starts, ends, violations)


def synchronous_round_overhead(
    pulses: Dict[int, List[float]], d: float
) -> float:
    """Average realized round duration divided by the ideal ``d``.

    The paper's headline: with ``u << d`` and ``theta - 1 << 1``, each
    simulated round costs ``d + O(u + (theta-1) d) ≈ d`` — overhead close
    to 1.  Measured here as mean full-round time (pulse ``i`` to pulse
    ``i+1`` at the same node, averaged) over ``d``.
    """
    verify_round_separation(pulses, d)  # raises on a broken schedule
    count = min(len(times) for times in pulses.values())
    period_sum = 0.0
    samples = 0
    for times in pulses.values():
        for i in range(count - 1):
            period_sum += times[i + 1] - times[i]
            samples += 1
    return (period_sum / samples) / d if samples else float("nan")
