"""The paper's contribution: Crusader Pulse Synchronization and Theorem 5.

* :mod:`repro.core.params` — parameter derivation (Theorem 17/Corollary 4);
* :mod:`repro.core.tcb` — timed crusader broadcast (Figure 2);
* :mod:`repro.core.cps` — the pulse-synchronization protocol (Figure 3);
* :mod:`repro.core.attacks` — Byzantine strategies tailored to CPS;
* :mod:`repro.core.lower_bound` — the executable Theorem 5 construction;
* :mod:`repro.core.logical_clock`, :mod:`repro.core.synchronizer` — the
  applications the introduction motivates.
"""

from repro.core.attacks import (
    CpsEquivocatingSubsetAttack,
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    FastToFaultyDelayPolicy,
    cps_attack_catalog,
)
from repro.core.cps import (
    CpsNode,
    CpsRoundSummary,
    assemble_cps_simulation,
    build_cps_simulation,
    default_clocks,
)
from repro.core.logical_clock import (
    LogicalClock,
    build_logical_clocks,
    logical_skew,
)
from repro.core.lower_bound import (
    FixedPeriodProtocol,
    LowerBoundEngine,
    LowerBoundResult,
    ShiftFunction,
    run_lower_bound,
)
from repro.core.messages import TcbMessage, tcb_tag
from repro.core.params import (
    THETA_MAX,
    InfeasibleParameters,
    ProtocolParameters,
    derive_parameters,
    max_faults,
)
from repro.core.synchronizer import (
    RoundSchedule,
    supports_round_simulation,
    synchronous_round_overhead,
    verify_round_separation,
)
from repro.core.tcb import TcbInstance, TcbState, offset_estimate
from repro.core.topology import (
    LinkTiming,
    SimulatedTopology,
    check_connectivity,
    circulant,
    required_connectivity,
    simulate_full_connectivity,
    uniform_timings,
)

__all__ = [
    "CpsEquivocatingSubsetAttack",
    "CpsMimicDealerAttack",
    "CpsNode",
    "CpsRoundSummary",
    "CpsRushingEchoAttack",
    "FastToFaultyDelayPolicy",
    "FixedPeriodProtocol",
    "InfeasibleParameters",
    "LinkTiming",
    "LogicalClock",
    "LowerBoundEngine",
    "LowerBoundResult",
    "ProtocolParameters",
    "RoundSchedule",
    "ShiftFunction",
    "SimulatedTopology",
    "TcbInstance",
    "TcbMessage",
    "TcbState",
    "THETA_MAX",
    "assemble_cps_simulation",
    "build_cps_simulation",
    "build_logical_clocks",
    "check_connectivity",
    "circulant",
    "cps_attack_catalog",
    "default_clocks",
    "derive_parameters",
    "logical_skew",
    "max_faults",
    "offset_estimate",
    "required_connectivity",
    "run_lower_bound",
    "simulate_full_connectivity",
    "supports_round_simulation",
    "synchronous_round_overhead",
    "tcb_tag",
    "uniform_timings",
    "verify_round_separation",
]
