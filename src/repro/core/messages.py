"""Message payloads of the timed protocols (TCB / CPS).

A TCB instance for pulse ``r`` with dealer ``w`` carries exactly one piece
of information: ``<r>_w``, the dealer's signature on the pulse number.
Encoding ``r`` in the signed value distinguishes instances, "so that faulty
nodes cannot reuse old signatures to disrupt an instance" (Figure 2).
Direct messages and echoes carry the *same* signature; receivers tell them
apart by the authenticated channel's sender identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.crypto.signatures import Signature, verify


def tcb_tag(pulse_round: int) -> Tuple[str, int]:
    """What a TCB dealer signs for pulse number ``pulse_round``."""
    return ("tcb", pulse_round)


@dataclass(frozen=True)
class TcbMessage:
    """``<r>_dealer`` in transit (direct from the dealer, or an echo)."""

    pulse_round: int
    dealer: int
    signature: Signature

    def signatures(self) -> Tuple[Signature, ...]:
        return (self.signature,)

    def is_valid(self) -> bool:
        """Is the carried signature really ``<pulse_round>_dealer``?"""
        return verify(self.signature, self.dealer, tcb_tag(self.pulse_round))
