"""Algorithm CPS (Figure 3): Crusader Pulse Synchronization.

Each node ``v`` waits until local time ``S`` and then loops over pulses
``r = 1, 2, ...``:

1. generate pulse ``r`` at local time ``H_v(p^r_v)``;
2. act as dealer of its own ``TCB_r`` instance (send ``<r>_v`` at local
   time ``H_v(p^r_v) + theta S``) and participate as receiver in every
   other node's instance;
3. convert each accepted instance output ``h`` into an offset estimate
   ``Delta^r_{v,w} = h - H_v(p^r_v) - d + u - S`` (⊥ stays ⊥; the node's
   own estimate is 0);
4. apply the APA midpoint rule: with ``b`` ⊥ values, sort the non-⊥
   estimates, discard the ``f - b`` lowest and highest, and take the
   midpoint ``Delta^r_v`` of the spanned interval;
5. wait until local time ``H_v(p^r_v) + Delta^r_v + T`` for the next pulse.

Theorem 17: with the parameters of :mod:`repro.core.params`, this is a
``(ceil(n/2)-1)``-secure pulse-synchronization protocol with skew ``S``.

Ablation hooks (used by benchmarks A1-A3) allow disabling the echo
rejection rule, switching the discard rule to the signature-free ``f``
variant, and changing the dealer send offset.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.messages import TcbMessage, tcb_tag
from repro.core.params import ProtocolParameters
from repro.core.tcb import TcbInstance, offset_estimate
from repro.sim.clocks import EPS, HardwareClock, validate_initial_skew
from repro.sim.errors import ConfigurationError
from repro.sim.network import DelayPolicy, NetworkConfig
from repro.sim.runtime import NodeAPI, TimedProtocol
from repro.sim.scheduler import Simulation
from repro.sim.trace import Trace, TraceSpec
from repro.sync.approx_agreement import midpoint_rule
from repro.sync.crusader import BOT


@dataclass(frozen=True)
class CpsRoundSummary:
    """Diagnostics of one completed CPS round at one node."""

    pulse_round: int
    pulse_local: float
    estimates: Dict[int, Any]
    num_bot: int
    interval: Tuple[float, float]
    correction: float


class CpsNode(TimedProtocol):
    """One (honest) node executing Algorithm CPS."""

    def __init__(
        self,
        params: ProtocolParameters,
        echo_rejection: bool = True,
        discard_rule: str = "f-b",
        dealer_send_offset: Optional[float] = None,
        start_local: Optional[float] = None,
        start_round: Optional[int] = None,
        verify_signatures: bool = True,
        relay_echo: bool = True,
        window_filter: bool = True,
    ) -> None:
        if discard_rule not in ("f-b", "f", "none"):
            raise ConfigurationError(
                f"discard_rule must be 'f-b', 'f', or 'none', "
                f"got {discard_rule!r}"
            )
        self.params = params
        # First-pulse phase and round number; None = the Figure 3
        # defaults (local time S, round 1).  The resynchronization
        # wrapper (repro.dynamics.resync) injects the phase *and* the
        # cohort round a recovering node voted for — TCB instances are
        # tagged by round, so a rejoiner numbering its rounds from 1
        # would discard every cohort message as a mismatch.
        self.start_local = start_local
        self.start_round = start_round
        self.echo_rejection = echo_rejection
        self.discard_rule = discard_rule
        # Ablation toggles (see repro.ablation): trust-all signature
        # verification, direct relay (no echo amplification), and the
        # accept-all window (no TCB filtering).
        self.verify_signatures = verify_signatures
        self.relay_echo = relay_echo
        self.window_filter = window_filter
        self.dealer_send_offset = (
            params.dealer_send_offset
            if dealer_send_offset is None
            else dealer_send_offset
        )
        self.pulse_round = 0
        self.pulse_local = 0.0
        self.instances: Dict[int, TcbInstance] = {}
        self.round_complete = True
        self.summaries: List[CpsRoundSummary] = []

    # ------------------------------------------------------------------
    # TimedProtocol interface

    def on_start(self, api: NodeAPI) -> None:
        first = (
            self.params.S if self.start_local is None else self.start_local
        )
        if self.start_round is not None:
            self.pulse_round = self.start_round - 1
        api.set_timer(first, ("pulse",))

    def on_timer(self, api: NodeAPI, tag: Any) -> None:
        kind = tag[0]
        if kind == "pulse":
            self._begin_round(api)
            return
        if len(tag) >= 2 and tag[1] != self.pulse_round:
            return  # stale timer from an earlier round
        if kind == "dealer-send":
            signature = api.sign(tcb_tag(self.pulse_round))
            api.broadcast(
                TcbMessage(self.pulse_round, api.node_id, signature)
            )
        elif kind == "window-end":
            for instance in self.instances.values():
                instance.on_window_end()
            self._maybe_complete(api)
        elif kind == "finalize":
            dealer = tag[2]
            instance = self.instances.get(dealer)
            if instance is not None:
                instance.on_finalize()
            self._maybe_complete(api)

    def on_message(self, api: NodeAPI, sender: int, payload: Any) -> None:
        if not isinstance(payload, TcbMessage):
            return
        if payload.pulse_round != self.pulse_round or self.round_complete:
            # Early (pre-pulse) and stale receptions fall outside every
            # open window of Figure 2 and are ignored.
            return
        if self.verify_signatures and not payload.is_valid():
            return
        dealer = payload.dealer
        if dealer == api.node_id:
            return  # echoes of our own broadcast carry no information
        instance = self.instances.get(dealer)
        if instance is None or instance.resolved():
            return
        local = api.local_time()
        if sender == dealer:
            actions = instance.on_direct(local)
        else:
            actions = instance.on_echo(local)
        if actions.echo and self.relay_echo:
            api.broadcast(payload)
        if actions.set_finalize_timer is not None:
            api.set_timer(
                actions.set_finalize_timer,
                ("finalize", self.pulse_round, dealer),
            )
            # Observable acceptance (Lemma 11): conformance monitors
            # group these by (round, dealer) and bound their real-time
            # spread; instances later rejected to ⊥ are filtered out
            # via the round summary's estimates.
            api.annotate("tcb-accept", (self.pulse_round, dealer))
        if instance.resolved():
            self._maybe_complete(api)

    # ------------------------------------------------------------------
    # Round lifecycle

    def _begin_round(self, api: NodeAPI) -> None:
        self.pulse_round += 1
        self.pulse_local = api.local_time()
        self.round_complete = False
        api.pulse()
        api.set_timer(
            self.pulse_local + self.dealer_send_offset,
            ("dealer-send", self.pulse_round),
        )
        self.instances = {
            w: TcbInstance(
                dealer=w,
                pulse_round=self.pulse_round,
                pulse_local=self.pulse_local,
                window=self.params.tcb_window,
                finalize_wait=self.params.tcb_finalize_wait,
                echo_rejection=self.echo_rejection,
                window_filter=self.window_filter,
            )
            for w in range(api.n)
            if w != api.node_id
        }
        # The closing timer fires a hair *after* the window bound so that a
        # message arriving exactly at the bound (the Lemma 10 worst case)
        # is still processed first and accepted.
        api.set_timer(
            self.pulse_local + self.params.tcb_window + 2.0 * EPS,
            ("window-end", self.pulse_round),
        )

    def _maybe_complete(self, api: NodeAPI) -> None:
        if self.round_complete:
            return
        if not all(inst.resolved() for inst in self.instances.values()):
            return
        self.round_complete = True
        estimates: Dict[int, Any] = {api.node_id: 0.0}
        for dealer, instance in self.instances.items():
            if instance.output is BOT:
                estimates[dealer] = BOT
            else:
                estimates[dealer] = offset_estimate(
                    instance.output,
                    self.pulse_local,
                    self.params.d,
                    self.params.u,
                    self.params.S,
                )
        non_bot = [v for v in estimates.values() if v is not BOT]
        num_bot = api.n - len(non_bot)
        if self.discard_rule == "none":
            # apa=off ablation: single-shot vote — no ⊥-aware
            # discarding at all, the raw midpoint of every estimate.
            correction, interval = midpoint_rule(non_bot, 0, 0)
        else:
            effective_bot = num_bot if self.discard_rule == "f-b" else 0
            correction, interval = midpoint_rule(
                non_bot, effective_bot, self.params.f
            )
        summary = CpsRoundSummary(
            pulse_round=self.pulse_round,
            pulse_local=self.pulse_local,
            estimates=estimates,
            num_bot=num_bot,
            interval=interval,
            correction=correction,
        )
        self.summaries.append(summary)
        api.annotate("cps-round", summary)
        api.set_timer(
            self.pulse_local + correction + self.params.T, ("pulse",)
        )


# ----------------------------------------------------------------------
# Simulation assembly helpers


def default_clocks(
    params: ProtocolParameters,
    seed: int = 0,
    horizon: float = 0.0,
    style: str = "random",
) -> List[HardwareClock]:
    """Build a plausible clock ensemble for a CPS run.

    ``style`` selects the ensemble: ``"random"`` draws initial offsets in
    ``[0, S]`` and wandering rates in ``[1, theta]``; ``"extreme"`` puts
    half the nodes at rate 1 / offset 0 and half at rate theta / offset S
    (the adversarial corner the analysis is tight against).
    """
    rng = random.Random(seed)
    horizon = horizon or 200.0 * params.d
    clocks: List[HardwareClock] = []
    for node in range(params.n):
        if style == "extreme":
            if node % 2 == 0:
                clocks.append(
                    HardwareClock.constant_rate(
                        1.0, offset=0.0, theta=params.theta
                    )
                )
            else:
                clocks.append(
                    HardwareClock.constant_rate(
                        params.theta, offset=params.S, theta=params.theta
                    )
                )
        elif style == "random":
            clocks.append(
                HardwareClock.random_drift(
                    rng,
                    params.theta,
                    offset=rng.uniform(0.0, params.S),
                    horizon=horizon,
                    segment_length=max(horizon / 40.0, params.d),
                )
            )
        else:
            raise ConfigurationError(f"unknown clock style {style!r}")
    return clocks


def assemble_cps_simulation(
    params: ProtocolParameters,
    clocks: Optional[Sequence[HardwareClock]] = None,
    faulty: Sequence[int] = (),
    behavior=None,
    delay_policy: Optional[DelayPolicy] = None,
    u_tilde: Optional[float] = None,
    seed: int = 0,
    trace: TraceSpec = True,
    clock_style: str = "random",
    checks=None,
    dynamics=None,
    network_timing: Optional[Tuple[float, float]] = None,
    **node_kwargs: Any,
) -> Simulation:
    """Wire a ready-to-run event-engine CPS simulation.

    This is the low-level assembly step: explicit clocks, behaviours,
    and hooks, always on the event backend.  Registry-keyed
    construction and backend selection live in
    :func:`repro.build.build_simulation`, which most callers should
    use instead.

    ``node_kwargs`` are forwarded to :class:`CpsNode` (ablation hooks).
    Initial clock offsets are validated against the ``H_v(0) in [0, S]``
    assumption of Figure 3.  ``checks`` installs a streaming
    :class:`~repro.sim.runtime.SimulationChecks` observer (conformance
    monitors; see :mod:`repro.checks`); ``dynamics`` installs a
    :class:`~repro.sim.runtime.DynamicsHook` (churn schedules; see
    :mod:`repro.dynamics`).

    ``network_timing`` overrides the network's ``(d, u)`` independently
    of the protocol parameters — the ``overlay=off`` ablation runs the
    base-graph parameterization against the overlay network's real
    effective delays.
    """
    net_d, net_u = (
        (params.d, params.u) if network_timing is None else network_timing
    )
    config = NetworkConfig(params.n, net_d, net_u, u_tilde)
    if clocks is None:
        clocks = default_clocks(params, seed=seed, style=clock_style)
    validate_initial_skew(
        [clocks[v] for v in range(params.n) if v not in set(faulty)],
        params.S,
    )
    return Simulation(
        config=config,
        clocks=clocks,
        protocol_factory=lambda v: CpsNode(params, **node_kwargs),
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        f=params.f,
        trace=Trace.from_spec(trace),
        checks=checks,
        dynamics=dynamics,
    )


def build_cps_simulation(*args: Any, **kwargs: Any) -> Simulation:
    """Deprecated alias of :func:`assemble_cps_simulation`.

    Prefer :func:`repro.build.build_simulation` for registry-keyed
    cases and backend selection, or :func:`assemble_cps_simulation`
    for low-level wiring.  This shim forwards verbatim, so the
    returned simulation is identical to the facade's event backend.
    """
    warnings.warn(
        "build_cps_simulation is deprecated; use "
        "repro.build.build_simulation(case, backend=...) or, for "
        "low-level wiring, repro.core.cps.assemble_cps_simulation",
        DeprecationWarning,
        stacklevel=2,
    )
    return assemble_cps_simulation(*args, **kwargs)
