"""Algorithm TCB (Figure 2): timed crusader broadcast — per-dealer state.

From the view of non-dealer ``v`` participating in ``TCB_r`` with dealer
``u`` (all times are ``v``'s local times; ``P = H_v(p^r_v)`` is ``v``'s
pulse time):

* accept the first valid ``<r>_u`` received *from u* at a local time
  ``h`` in the open window ``(P, P + theta (d + (theta+1) S))``; if none
  arrives, output ⊥ at the window's end;
* upon acceptance, immediately forward (echo) ``<r>_u`` to all nodes;
* if a valid ``<r>_u`` is received from some *other* node ``z != u`` at a
  local time ``h'`` in ``(P, h + d - 2u)``, output ⊥ — the echo proves
  that someone plausibly received the dealer's broadcast too much earlier
  than we did;
* otherwise output ``h`` at local time ``h + d - 2u``.

The class below is a passive state machine: the enclosing protocol node
(:class:`~repro.core.cps.CpsNode`) feeds it receptions and timer
expirations and performs the sends/timer registrations it requests.
Keeping it passive makes it directly unit-testable and reusable (the
Lynch-Welch baseline uses a degenerate configuration of the same machine).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.clocks import EPS
from repro.sync.crusader import BOT


class TcbState(enum.Enum):
    """Lifecycle of one instance at one receiver."""

    WAITING = "waiting"          # no direct dealer message accepted yet
    ACCEPTED = "accepted"        # accepted at local time h; finalize pending
    DONE = "done"                # output fixed (a local time, or BOT)


@dataclass
class TcbActions:
    """What the enclosing node must do after feeding an event."""

    echo: bool = False                      # forward <r>_u to all nodes now
    set_finalize_timer: Optional[float] = None  # local time for finalize


@dataclass
class TcbInstance:
    """One receiver-side instance of TCB for (pulse_round, dealer).

    Parameters
    ----------
    pulse_local:
        ``H_v(p^r_v)`` — the receiver's local pulse time (window origin).
    window:
        Local-time length of the acceptance window,
        ``theta (d + (theta+1) S)``.
    finalize_wait:
        Local-time gap between acceptance and output, ``d - 2u``.
    echo_rejection:
        Ablation hook (A1): when False, echoes never cause ⊥.
    window_filter:
        Ablation hook (``tcb-filter``): when False the acceptance
        window stops filtering — direct dealer messages are accepted at
        *any* local time, and the window-end timeout no longer resolves
        a silent dealer's instance to ⊥ (the instance simply stays
        WAITING forever).  This is the paper-true cost of removing the
        window: per-round termination is exactly what it buys.
    """

    dealer: int
    pulse_round: int
    pulse_local: float
    window: float
    finalize_wait: float
    echo_rejection: bool = True
    window_filter: bool = True
    state: TcbState = TcbState.WAITING
    accept_local: Optional[float] = None
    earliest_echo: Optional[float] = None
    output: object = field(default=None)
    reject_reason: Optional[str] = None

    @property
    def window_end(self) -> float:
        return self.pulse_local + self.window

    def resolved(self) -> bool:
        return self.state is TcbState.DONE

    # ------------------------------------------------------------------
    # Event feeds (all return the actions the caller must perform)

    def on_direct(self, local_time: float) -> TcbActions:
        """A valid ``<r>_u`` arrived from the dealer itself."""
        actions = TcbActions()
        if self.state is not TcbState.WAITING:
            return actions
        if self.window_filter and not (
            self.pulse_local < local_time <= self.window_end + EPS
        ):
            # Outside the acceptance window: ignored.  (A too-early message
            # cannot be accepted later; the dealer would have to send again
            # — only a faulty dealer would.)  The closing boundary is
            # treated as inclusive: Lemma 10 proves arrival *at most* at
            # the window bound, and the worst case (slowest admissible
            # dealer, fastest receiver, maximal delay, maximal skew) hits
            # the bound exactly.
            return actions
        self.accept_local = local_time
        self.state = TcbState.ACCEPTED
        actions.echo = True
        deadline = local_time + self.finalize_wait
        if (
            self.echo_rejection
            and self.earliest_echo is not None
            and self.earliest_echo < deadline - EPS
        ):
            self._reject("echo-before-acceptance")
            return actions
        actions.set_finalize_timer = deadline
        return actions

    def on_echo(self, local_time: float) -> TcbActions:
        """A valid ``<r>_u`` arrived from some node other than the dealer."""
        actions = TcbActions()
        if self.state is TcbState.DONE:
            return actions
        if local_time <= self.pulse_local + EPS:
            # Strictly before (or at) the window origin: outside the open
            # rejection interval, ignored.
            return actions
        if self.earliest_echo is None or local_time < self.earliest_echo:
            self.earliest_echo = local_time
        if (
            self.echo_rejection
            and self.state is TcbState.ACCEPTED
            and self.accept_local is not None
            and local_time < self.accept_local + self.finalize_wait - EPS
        ):
            self._reject("echo-within-guard")
        return actions

    def on_window_end(self) -> TcbActions:
        """The acceptance window elapsed."""
        if self.state is TcbState.WAITING and self.window_filter:
            self.state = TcbState.DONE
            self.output = BOT
            self.reject_reason = "timeout"
        return TcbActions()

    def on_finalize(self) -> TcbActions:
        """Local time reached ``h + d - 2u`` after an acceptance."""
        if self.state is TcbState.ACCEPTED:
            self.state = TcbState.DONE
            self.output = self.accept_local
        return TcbActions()

    # ------------------------------------------------------------------

    def _reject(self, reason: str) -> None:
        self.state = TcbState.DONE
        self.output = BOT
        self.reject_reason = reason


def offset_estimate(
    accept_local: float,
    pulse_local: float,
    d: float,
    u: float,
    s_bound: float,
) -> float:
    """Algorithm CPS's estimate ``Delta^r_{v,u}`` from a TCB output.

    ``Delta = h - H_v(p^r_v) - d + u - S``; Lemma 12 shows
    ``Delta in [p_u - p_v, p_u - p_v + delta)`` for honest dealers.
    """
    return accept_local - pulse_local - d + u - s_bound
