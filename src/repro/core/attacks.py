"""Byzantine attack strategies specialized against TCB/CPS.

These behaviours understand the CPS message format and timing, and realize
the attack surfaces the paper's analysis is tight against:

* :class:`CpsMimicDealerAttack` — faulty dealers stay *undetected* (one
  signature, plausible timing) while skewing their apparent pulse time
  differently for different receivers, exploiting the full slack Lemma 11
  leaves them;
* :class:`CpsEquivocatingSubsetAttack` — faulty dealers address only a
  subset, producing asymmetric ⊥ patterns (the `b`-dependent discard rule
  must handle these correctly — ablation A2 shows what breaks otherwise);
* :class:`CpsRushingEchoAttack` — *only* meaningful when faulty links may
  undercut the honest minimum delay (``u_tilde > u``): faulty nodes
  re-echo honest signatures so fast that honest broadcasts get rejected,
  the attack behind the paper's Section 1 warning and Theorem 5;
* :class:`CpsCoordinatedOffsetAttack` — every faulty dealer presents the
  *same* extreme apparent offset (optionally flipping direction each
  round): where the mimic-split maximizes inconsistency between
  receivers, this maximizes the coordinated bias the ⊥-aware midpoint
  rule must absorb.

All of these are registered in the scenario registry
(:mod:`repro.scenarios`) under stable string keys, so campaign cases can
name them declaratively.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.messages import TcbMessage, tcb_tag
from repro.core.params import ProtocolParameters
from repro.sim.adversary import ByzantineBehavior, SilentAdversary
from repro.sim.network import DelayPolicy
from repro.sim.trace import DeliveryRecord


def timing_split_group(n: int) -> list:
    """The even-id half of the nodes, the canonical "group A".

    Timing-split attacks and partition delay policies need *some*
    bisection of the honest nodes; using the same one everywhere keeps
    grids comparable across experiments.
    """
    return [v for v in range(n) if v % 2 == 0]


class CpsMimicDealerAttack(ByzantineBehavior):
    """Faulty dealers broadcast on time, but split their apparent offset.

    On the first honest pulse of each round ``r``, every faulty node
    schedules its ``<r>`` broadcast at the time an honest dealer would use
    and delivers it *fast* (minimum faulty-link delay) to ``group_a`` and
    *slow* (maximum delay, shifted ``spread_fraction`` of the tolerated
    slack later) to everyone else.  The spread stays just inside the
    Lemma 11 consistency window, so no honest node rejects — the dealer
    contributes maximally inconsistent estimates while remaining accepted.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        group_a: Iterable[int],
        spread_fraction: float = 0.9,
        stagger: float = 0.0,
    ) -> None:
        self.params = params
        self.group_a: Set[int] = set(group_a)
        self.spread_fraction = spread_fraction
        # Extra real-time gap before the slow group's copy is sent.  With
        # the echo-rejection rule active any stagger beyond ~u gets the
        # dealer rejected; ablation A1 removes the rule and cranks this up.
        self.stagger = stagger
        self._scheduled_rounds: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._scheduled_rounds:
            return
        self._scheduled_rounds.add(index)
        # An honest dealer sends theta*S local time after its pulse, i.e.
        # between S and theta*S real time later; mimic the earliest.
        ctx.wake_at(time + self.params.S, ("mimic-send", index))

    def on_wakeup(self, ctx, tag) -> None:
        if not isinstance(tag, tuple):
            return
        if tag[0] == "mimic-send":
            pulse_round = tag[1]
            low, high = ctx.config.delay_bounds(False)
            # Keep the arrival spread a safe fraction of the uncertainty so
            # the echo-rejection guard (strict inequalities) never quite
            # triggers.
            slow_delay = low + self.spread_fraction * (high - low)
            for src in sorted(ctx.faulty):
                message = TcbMessage(
                    pulse_round, src, ctx.sign_as(src, tcb_tag(pulse_round))
                )
                for dst in ctx.honest:
                    if dst in self.group_a:
                        ctx.send_from(src, dst, message, low)
                    elif self.stagger <= 0.0:
                        ctx.send_from(src, dst, message, slow_delay)
            if self.stagger > 0.0:
                ctx.wake_at(
                    ctx.now + self.stagger, ("mimic-send-late", pulse_round)
                )
        elif tag[0] == "mimic-send-late":
            pulse_round = tag[1]
            low, high = ctx.config.delay_bounds(False)
            slow_delay = low + self.spread_fraction * (high - low)
            for src in sorted(ctx.faulty):
                message = TcbMessage(
                    pulse_round, src, ctx.sign_as(src, tcb_tag(pulse_round))
                )
                for dst in ctx.honest:
                    if dst not in self.group_a:
                        ctx.send_from(src, dst, message, slow_delay)

    def describe(self) -> str:
        return f"mimic-split(spread={self.spread_fraction})"


class CpsEquivocatingSubsetAttack(ByzantineBehavior):
    """Faulty dealers address only half the honest nodes.

    Recipients accept and echo; the excluded half sees echoes without a
    direct dealer message and outputs ⊥ (Figure 2's timeout/echo rules).
    This maximizes the *asymmetry* of ⊥ outputs across honest nodes, the
    scenario Lemmas 7/8 exist for.

    ``lateness`` delays the subset's copies by that much extra real
    time (still inside the Figure 2 acceptance window for lateness up
    to ``~S``): the addressed subset then computes a *late extreme*
    estimate the excluded half never sees.  The ⊥-aware ``f - b``
    discard absorbs the extremes; the ``apa=off`` single-shot vote
    does not, and the subsets drift apart.
    """

    def __init__(
        self, params: ProtocolParameters, lateness: float = 0.0
    ) -> None:
        self.params = params
        self.lateness = lateness
        self._scheduled_rounds: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._scheduled_rounds:
            return
        self._scheduled_rounds.add(index)
        ctx.wake_at(
            time + self.params.S + self.lateness, ("subset-send", index)
        )

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "subset-send"):
            return
        pulse_round = tag[1]
        honest = sorted(ctx.honest)
        subset = honest[: max(len(honest) // 2, 1)]
        for src in sorted(ctx.faulty):
            message = TcbMessage(
                pulse_round, src, ctx.sign_as(src, tcb_tag(pulse_round))
            )
            for dst in subset:
                ctx.send_from(src, dst, message, ctx.config.d)

    def describe(self) -> str:
        if self.lateness:
            return f"equivocating-subset(lateness={self.lateness})"
        return "equivocating-subset"


class CpsRushingEchoAttack(ByzantineBehavior):
    """Rush-echo honest signatures over fast faulty links.

    Whenever a faulty node receives an honest dealer's ``<r>`` message, it
    instantly re-echoes it to the configured victims at the minimum
    faulty-link delay ``d - u_tilde``.  If ``u_tilde > u`` (faulty links
    faster than honest ones), the echo can reach a victim more than
    ``d - 2u`` before the victim's own acceptance would finalize, forcing
    the victim to reject the *honest* dealer.

    With ``u_tilde = u`` the attack is harmless (Lemma 10 holds); the gap
    is exactly the paper's "network designers must ensure message delay is
    at least d - u even on links with one faulty endpoint".
    """

    def __init__(
        self,
        victims: Optional[Iterable[int]] = None,
        target_dealers: Optional[Iterable[int]] = None,
    ) -> None:
        self.victims = None if victims is None else set(victims)
        self.target_dealers = (
            None if target_dealers is None else set(target_dealers)
        )
        self._echoed: Set[Tuple[int, int]] = set()

    def on_deliver(self, ctx, record: DeliveryRecord) -> None:
        payload = record.payload
        if not isinstance(payload, TcbMessage):
            return
        if payload.dealer in ctx.faulty:
            return
        if (
            self.target_dealers is not None
            and payload.dealer not in self.target_dealers
        ):
            return
        key = (payload.pulse_round, payload.dealer)
        if key in self._echoed:
            return
        self._echoed.add(key)
        low, _high = ctx.config.delay_bounds(False)
        victims = ctx.honest if self.victims is None else sorted(self.victims)
        src = record.dst  # the faulty node that just learned the signature
        for dst in victims:
            if dst != payload.dealer:
                ctx.send_from(src, dst, payload, low)

    def describe(self) -> str:
        return "rushing-echo"


class FastToFaultyDelayPolicy(DelayPolicy):
    """Delay policy partnering the rushing-echo attack.

    Honest-to-honest messages take the maximum delay ``d`` (so direct
    dealer messages arrive as late as possible) while anything touching a
    faulty node takes the minimum faulty-link delay (so the adversary
    learns signatures as early as the model permits).
    """

    def delay(self, config, src, dst, send_time, payload, link_is_honest):
        low, high = config.delay_bounds(link_is_honest)
        return high if link_is_honest else low

    def describe(self) -> str:
        return "fast-to-faulty"


class CpsCoordinatedOffsetAttack(ByzantineBehavior):
    """All faulty dealers present one coordinated extreme apparent offset.

    Every faulty node broadcasts its ``<r>`` message at the time an
    honest dealer would and delivers it to *every* honest node with the
    same delay, pinned ``offset_fraction`` of the way into the
    admissible window.  Because all copies of a dealer's message arrive
    with identical delay, honest receivers compute mutually consistent
    estimates and never reject (Lemma 11's guard sees nothing wrong) —
    but all ``f`` faulty estimates sit at the same extreme, so the
    ⊥-aware midpoint of Figure 3 is dragged coherently instead of being
    split.

    With ``alternate=True`` the extreme flips every pulse round,
    rocking the correction instead of pushing it steadily — the
    oscillating variant stresses the Lemma 16 contraction rather than
    the steady-state bias.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        offset_fraction: float = 1.0,
        alternate: bool = True,
    ) -> None:
        if not 0.0 <= offset_fraction <= 1.0:
            raise ValueError(
                f"offset_fraction must lie in [0, 1], "
                f"got {offset_fraction}"
            )
        self.params = params
        self.offset_fraction = offset_fraction
        self.alternate = alternate
        self._scheduled_rounds: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._scheduled_rounds:
            return
        self._scheduled_rounds.add(index)
        ctx.wake_at(time + self.params.S, ("coordinated-send", index))

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "coordinated-send"):
            return
        pulse_round = tag[1]
        low, high = ctx.config.delay_bounds(False)
        push_late = self.alternate and pulse_round % 2 == 1
        span = high - low
        if push_late:
            delay = high - (1.0 - self.offset_fraction) * span
        else:
            delay = low + (1.0 - self.offset_fraction) * span
        for src in sorted(ctx.faulty):
            message = TcbMessage(
                pulse_round, src, ctx.sign_as(src, tcb_tag(pulse_round))
            )
            for dst in ctx.honest:
                ctx.send_from(src, dst, message, delay)

    def describe(self) -> str:
        flavor = "alternating" if self.alternate else "steady"
        return (
            f"coordinated-offset({flavor}, "
            f"fraction={self.offset_fraction})"
        )


class CpsEarlyExtremeAttack(ByzantineBehavior):
    """Predictively timed broadcasts that land just after each pulse.

    An ``<r>`` message accepted a *small* local-time gap after the
    receiver's pulse decodes (Lemma 12) to an extreme negative offset
    estimate ``≈ -(d + S)`` — the dealer looks almost a full delay
    bound *ahead*.  Honest dealers can never produce such an arrival
    (their broadcasts travel a real delay in ``[d-u, d]``), so the only
    way to land there is to *send before the receiver's pulse*: the
    attack observes each round's first honest pulse, extrapolates the
    next round's pulse times by the nominal period ``T``, and times one
    broadcast per faulty dealer to arrive ``margin`` after the
    predicted first pulse — inside every acceptance window, near its
    origin.

    Only the even-id half of the honest nodes is addressed, so the
    drag is *asymmetric*: the addressed half is yanked a half-delay
    early every round while the excluded half (which just times the
    dealer out to ⊥) keeps the nominal period.  All delivered copies
    arrive at one real instant, so acceptances are mutually consistent
    (Lemma 11 sees nothing) and no echo-rejection fires.  The defense
    is the APA vote itself: with ``b = 0`` the ``f - b`` discard drops
    exactly these ``f`` coordinated extremes, and with ``b = f`` the
    excluded half discards nothing it needs to.  The ``apa=off``
    single-shot vote averages the extremes in, and the two halves
    drift apart.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        margin: Optional[float] = None,
    ) -> None:
        self.params = params
        # Arrival lands this much real time after the predicted first
        # pulse of the round: > S so every honest node has pulsed, yet
        # far below d so the estimate stays extreme.
        self.margin = 2.0 * params.S if margin is None else margin
        self._seen_rounds: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._seen_rounds:
            return
        self._seen_rounds.add(index)
        low, _high = ctx.config.delay_bounds(False)
        wake = time + self.params.T + self.margin - low
        if wake > ctx.now:
            ctx.wake_at(wake, ("early-send", index + 1))

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "early-send"):
            return
        pulse_round = tag[1]
        low, _high = ctx.config.delay_bounds(False)
        targets = [v for v in ctx.honest if v % 2 == 0]
        for src in sorted(ctx.faulty):
            message = TcbMessage(
                pulse_round, src, ctx.sign_as(src, tcb_tag(pulse_round))
            )
            for dst in targets:
                ctx.send_from(src, dst, message, low)

    def describe(self) -> str:
        return f"early-extreme(margin={self.margin})"


class CpsForgingImpersonatorAttack(ByzantineBehavior):
    """Forge ``<r>`` messages in honest dealers' names.

    Every faulty node signs ``<r>`` with its *own* key but claims an
    honest dealer as the sender, delivering the forgery to every honest
    receiver at the minimum delay around the time real round-``r``
    traffic flows.  Under the paper's model this is the canonical
    no-op: :meth:`TcbMessage.is_valid` verifies the signature against
    the claimed dealer, so honest nodes drop the forgery on arrival
    (and the simulator's knowledge guard is satisfied, because the
    payload carries only the forger's own signature).

    With signature verification ablated (``signatures=off`` — the
    trust-all verify), the forgery lands as an *echo* (sender is not
    the claimed dealer) inside the Figure 2 guard interval, so the
    echo-rejection rule forces honest receivers to ⊥ the *honest*
    dealer — which is precisely why the construction needs signatures
    at all (Theorem 5's unforgeability assumption).
    """

    def __init__(
        self,
        params: ProtocolParameters,
        rounds: Optional[int] = None,
    ) -> None:
        self.params = params
        # None = forge every round; an int bounds the attack's length.
        self.rounds = rounds
        self._scheduled_rounds: Set[int] = set()

    def on_pulse(self, ctx, node: int, index: int, time: float) -> None:
        if index in self._scheduled_rounds:
            return
        if self.rounds is not None and index > self.rounds:
            return
        self._scheduled_rounds.add(index)
        # Launch alongside the honest dealer broadcasts: the forgery
        # must arrive inside the victims' acceptance windows, early
        # enough to precede each real acceptance's finalize deadline.
        ctx.wake_at(time + self.params.S, ("forge-send", index))

    def on_wakeup(self, ctx, tag) -> None:
        if not (isinstance(tag, tuple) and tag[0] == "forge-send"):
            return
        pulse_round = tag[1]
        low, _high = ctx.config.delay_bounds(False)
        for src in sorted(ctx.faulty):
            signature = ctx.sign_as(src, tcb_tag(pulse_round))
            for victim in ctx.honest:
                forged = TcbMessage(pulse_round, victim, signature)
                for dst in ctx.honest:
                    if dst != victim:
                        ctx.send_from(src, dst, forged, low)

    def describe(self) -> str:
        bound = "all" if self.rounds is None else self.rounds
        return f"forging-impersonator(rounds={bound})"


def cps_attack_catalog(
    params: ProtocolParameters,
) -> Dict[str, ByzantineBehavior]:
    """The standard attack suite used by the E4/E5 sweeps."""
    half = timing_split_group(params.n)
    return {
        "silent": SilentAdversary(),
        "mimic-split": CpsMimicDealerAttack(params, half),
        "equivocating-subset": CpsEquivocatingSubsetAttack(params),
    }
