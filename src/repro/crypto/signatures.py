"""Symbolic digital signatures with perfect correctness and unforgeability.

The model section of the paper assumes a PKI in which every node ``v`` can
create a signature ``<m>_v`` on a message ``m`` via ``Sign(sk_v, m)`` and
anybody can check it via ``Verify(pk_v, sig, m)``; creating a signature
without the secret key is impossible.

We realize this symbolically.  A :class:`Signature` is an immutable value
carrying the signer identity, the signed payload, and an opaque *mint token*
that only the legitimate :class:`~repro.crypto.pki.KeyPair` possesses.
Constructing a ``Signature`` with a wrong token raises
:class:`SignatureError`, so within a simulation the mere existence of a
``Signature`` object proves it was produced by the matching key pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Hashable, Iterator, Tuple


class SignatureError(Exception):
    """Raised on attempts to mint a signature without the secret key."""


@dataclass(frozen=True)
class Signature:
    """An unforgeable signature ``<value>_signer``.

    Instances must be created through :meth:`repro.crypto.pki.KeyPair.sign`;
    direct construction requires the key pair's private mint token and is
    rejected otherwise.

    Attributes
    ----------
    signer:
        Identifier of the signing node.
    value:
        The signed payload.  Must be hashable so signatures can live in
        sets/dict keys (the simulator deduplicates knowledge by signature).
    """

    signer: int
    value: Hashable
    _token: object = field(repr=False, compare=False)

    def __post_init__(self) -> None:
        from repro.crypto import pki

        if not pki.is_valid_token(self.signer, self._token):
            raise SignatureError(
                f"attempt to forge a signature of node {self.signer}"
            )

    def key(self) -> Tuple[int, Hashable]:
        """Canonical identity of this signature (signer, value).

        Two signatures by the same signer on the same value are considered
        the same object of knowledge: our scheme is deterministic, which is
        the conservative choice for the adversary-knowledge bookkeeping
        (a randomized scheme would only give faulty nodes *more* distinct
        strings to replay, never fewer).
        """
        return (self.signer, self.value)


@lru_cache(maxsize=1 << 16)
def _verify_memo(
    sig_signer: int, sig_value: Hashable, signer: int, value: Hashable
) -> bool:
    """Content-addressed verification cache.

    Keyed by (signer, payload digest) on both the signature's and the
    claimed side: ``lru_cache`` hashes the 4-tuple (the digest) and falls
    back to full equality on collision, so memoized answers are exact.
    Protocols re-verify the same signature chains every round (the signed
    relay and chain-relay baselines verify whole chains per message), so
    the deep payload comparisons are paid once per distinct content.
    """
    return sig_signer == signer and sig_value == value


def verify(signature: Signature, signer: int, value: Hashable) -> bool:
    """Check that ``signature`` is ``signer``'s signature on ``value``.

    Mirrors the paper's ``Verify(pk_v, sig, m)``.  Because forging raises at
    construction time, verification reduces to comparing the claimed signer
    and payload.  Perfect correctness (``Verify(pk, Sign(sk, m), m) = 1``)
    holds by construction.  Results are memoized content-addressed via
    :func:`_verify_memo`; unhashable ``value`` objects (never produced by
    the in-repo protocols) fall back to direct comparison.
    """
    try:
        return _verify_memo(signature.signer, signature.value, signer, value)
    except TypeError:
        return signature.signer == signer and signature.value == value


def verify_cache_stats() -> Any:
    """The memoized-verify hit/miss counters (``functools.CacheInfo``)."""
    return _verify_memo.cache_info()


def verify_cache_counters() -> dict:
    """JSON-ready verification-cache stats with a derived hit rate.

    Consumed by ``repro perf run`` (printed per case and stored in the
    ``BENCH_*.json`` meta) and by the telemetry layer's per-trial
    ``crypto.verify.*`` counters.  ``hit_rate`` is ``None`` for
    workloads that never verify a signature.
    """
    info = _verify_memo.cache_info()
    lookups = info.hits + info.misses
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "hit_rate": info.hits / lookups if lookups else None,
    }


def clear_verify_cache() -> None:
    """Drop all memoized verification results (used by perf harnesses)."""
    _verify_memo.cache_clear()


def collect_signatures(payload: Any) -> Iterator[Signature]:
    """Yield every :class:`Signature` reachable inside ``payload``.

    Walks tuples/lists/frozensets/dicts and objects exposing a
    ``signatures()`` method (the convention used by protocol message
    payloads).  The simulator uses this to (a) record which signatures a
    faulty node learns from a delivered message and (b) validate that a
    faulty node only sends signatures it already knows.
    """
    if isinstance(payload, Signature):
        yield payload
        return
    if isinstance(payload, (tuple, list, set, frozenset)):
        for item in payload:
            yield from collect_signatures(item)
        return
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from collect_signatures(key)
            yield from collect_signatures(value)
        return
    signatures = getattr(payload, "signatures", None)
    if callable(signatures):
        for item in signatures():
            yield from collect_signatures(item)
