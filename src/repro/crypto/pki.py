"""Public-key infrastructure for the symbolic signature scheme.

Every node is issued a :class:`KeyPair` by a
:class:`PublicKeyInfrastructure`.  The key pair holds a private *mint token*
(an anonymous object) that is registered in a process-global token table;
:class:`~repro.crypto.signatures.Signature` construction checks the token
against that table, so only the holder of the key pair can mint signatures
for its identity.

Multiple simulations may run concurrently in one process: tokens are unique
objects per ``PublicKeyInfrastructure`` instance, and re-issuing a PKI for
the same node ids simply registers additional valid tokens.  This mirrors
the paper's static PKI assumption ("every node v has a public key pk_v that
all other nodes agree on").
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

from repro.crypto.signatures import Signature

# Global registry: node id -> set of valid mint tokens.  Identity of the
# token object is the secret; holding a reference to it is holding sk_v.
_TOKENS: Dict[int, Set[int]] = {}
_TOKEN_OBJECTS: List[object] = []  # keep tokens alive so ids stay unique


def is_valid_token(signer: int, token: object) -> bool:
    """Return whether ``token`` is a registered secret key for ``signer``."""
    return id(token) in _TOKENS.get(signer, set())


class KeyPair:
    """A node's signing capability (``sk_v`` plus implicit ``pk_v``)."""

    def __init__(self, node_id: int, token: object) -> None:
        self.node_id = node_id
        self._token = token

    def sign(self, value: Hashable) -> Signature:
        """Produce ``<value>_node`` (the paper's ``Sign(sk_v, m)``)."""
        return Signature(self.node_id, value, self._token)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyPair(node_id={self.node_id})"


class PublicKeyInfrastructure:
    """Issues key pairs for the ``n`` nodes of a system.

    The PKI is trusted setup: honest nodes receive their key pair from the
    simulator, and the adversary receives the key pairs of corrupted nodes
    (it "may use corrupted nodes' secrets to generate signatures for them").
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = n
        self._key_pairs: Dict[int, KeyPair] = {}
        for node_id in range(n):
            token = object()
            _TOKEN_OBJECTS.append(token)
            _TOKENS.setdefault(node_id, set()).add(id(token))
            self._key_pairs[node_id] = KeyPair(node_id, token)

    def key_pair(self, node_id: int) -> KeyPair:
        """Hand out ``sk_{node_id}``.  Only the simulator should call this."""
        try:
            return self._key_pairs[node_id]
        except KeyError:
            raise KeyError(
                f"node {node_id} is not part of this PKI (n={self.n})"
            ) from None

    def node_ids(self) -> range:
        """All identities covered by this PKI."""
        return range(self.n)
