"""Cryptographic substrate: a symbolic (Dolev-Yao style) signature scheme.

The paper treats signatures as ideal objects: a signature ``<m>_v`` on a
message ``m`` with respect to node ``v``'s public key can only be produced
with knowledge of ``v``'s secret key, and verification is perfectly correct.
This package provides exactly that abstraction.  Unforgeability is enforced
*by construction*: :class:`~repro.crypto.signatures.Signature` objects can
only be minted through a :class:`~repro.crypto.pki.KeyPair`'s signing handle,
and the simulation layer additionally tracks *when* each signature became
known to the adversary (see :mod:`repro.sim.knowledge`).
"""

from repro.crypto.pki import KeyPair, PublicKeyInfrastructure
from repro.crypto.signatures import (
    Signature,
    SignatureError,
    collect_signatures,
    verify,
)

__all__ = [
    "KeyPair",
    "PublicKeyInfrastructure",
    "Signature",
    "SignatureError",
    "collect_signatures",
    "verify",
]
