"""Algorithm APA (Figure 1) and its iteration (Theorem 9, Corollary 2).

One APA iteration is two synchronous rounds: every node crusader-broadcasts
its current value (n parallel CB instances), then applies the *midpoint
rule*: with ``b`` instances resolving to ⊥, sort the non-⊥ values, discard
the lowest ``f - b`` and highest ``f - b``, and output the midpoint of the
interval spanned by the rest.

Theorem 9: at ``f = ceil(n/2) - 1`` this is ``(ell, ell/2, f)``-secure —
the honest value range at least halves per iteration while staying inside
the honest input range.  Corollary 2: iterating ``ceil(log2(ell/eps))``
times (``2*ceil(log2(ell/eps))`` rounds) reaches any target range ``eps``.

The midpoint rule here (:func:`midpoint_rule`) is the exact decision rule
Algorithm CPS applies to its timed offset estimates, so the timed protocol
imports it from this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.errors import ConfigurationError, SimulationError
from repro.sync.crusader import (
    BOT,
    CbEcho,
    CbValue,
    resolve_crusader,
    signed_value_tag,
)
from repro.sync.round_model import (
    BROADCAST,
    RoundMessage,
    SyncAdversary,
    SyncNode,
    SynchronousNetwork,
)


def midpoint_rule(
    values: Sequence[float], num_bot: int, f: int
) -> Tuple[float, Tuple[float, float]]:
    """Apply APA's select-and-midpoint step.

    Parameters
    ----------
    values:
        The non-⊥ values received (the node's own value included).
    num_bot:
        ``b``, the number of instances that resolved to ⊥ — each one proves
        its dealer faulty, so only ``f - b`` *undetected* faults can be
        hiding among ``values`` on either extreme.
    f:
        The resilience parameter.

    Returns ``(midpoint, (low, high))`` where ``[low, high]`` is the
    interval spanned by the retained values.
    """
    if num_bot < 0:
        raise ConfigurationError(f"num_bot must be >= 0, got {num_bot}")
    discard = max(f - num_bot, 0)
    ordered = sorted(values)
    if len(ordered) <= 2 * discard:
        raise SimulationError(
            f"midpoint rule under-determined: {len(ordered)} values, "
            f"discarding {discard} per side — outside the model "
            f"(more than f corruptions?)"
        )
    kept = ordered[discard : len(ordered) - discard]
    interval = (kept[0], kept[-1])
    return (interval[0] + interval[1]) / 2.0, interval


@dataclass
class ApaIterationRecord:
    """Per-iteration diagnostics for one node."""

    iteration: int
    received: Dict[int, Any]
    num_bot: int
    interval: Tuple[float, float]
    value: float


class ApaNode(SyncNode):
    """A node running ``iterations`` APA iterations (2 rounds each)."""

    def __init__(self, input_value: float, iterations: int) -> None:
        super().__init__()
        if iterations < 1:
            raise ConfigurationError("need at least one iteration")
        self.value = float(input_value)
        self.iterations = iterations
        self.history: List[ApaIterationRecord] = []
        self._directs: Dict[int, CbValue] = {}
        self._observed: List[CbValue] = []

    # ------------------------------------------------------------------

    def _instance(self, iteration: int, dealer: int) -> Hashable:
        return ("apa", iteration, dealer)

    def begin_round(self, round_no: int) -> Dict[Any, Any]:
        assert self.ctx is not None
        iteration, phase = divmod(round_no - 1, 2)
        if iteration >= self.iterations:
            return {}
        if phase == 0:
            self._directs = {}
            self._observed = []
            instance = self._instance(iteration, self.ctx.node_id)
            signature = self.ctx.sign(signed_value_tag(instance, self.value))
            return {
                BROADCAST: CbValue(
                    instance, self.ctx.node_id, self.value, signature
                )
            }
        echoes = tuple(self._directs.values())
        return {BROADCAST: CbEcho(echoes)} if echoes else {}

    def end_round(self, round_no: int, inbox: Dict[int, Any]) -> None:
        assert self.ctx is not None
        iteration, phase = divmod(round_no - 1, 2)
        if iteration >= self.iterations:
            return
        if phase == 0:
            for sender, payload in inbox.items():
                if isinstance(payload, CbValue) and payload.dealer == sender:
                    self._directs[sender] = payload
                    self._observed.append(payload)
            return
        for payload in inbox.values():
            if isinstance(payload, CbEcho):
                self._observed.extend(payload.items)
        received: Dict[int, Any] = {}
        for dealer in range(self.ctx.n):
            instance = self._instance(iteration, dealer)
            received[dealer] = resolve_crusader(
                instance, dealer, self._directs.get(dealer), self._observed
            )
        non_bot = [v for v in received.values() if v is not BOT]
        num_bot = self.ctx.n - len(non_bot)
        midpoint, interval = midpoint_rule(non_bot, num_bot, self.ctx.f)
        self.value = midpoint
        self.history.append(
            ApaIterationRecord(iteration, received, num_bot, interval, midpoint)
        )
        if iteration + 1 == self.iterations:
            self.output = self.value


# ----------------------------------------------------------------------
# Adversaries exercising APA


class ApaExtremeAdversary(SyncAdversary):
    """Faulty dealers consistently claim extreme values.

    The strongest *undetectable* value attack: every faulty dealer behaves
    exactly like an honest dealer (no equivocation, so never ⊥) but inputs
    ``low`` or ``high`` alternately, maximally stretching the received
    ranges.  Theorem 9's halving must hold regardless.
    """

    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high
        self._values: Dict[Tuple[int, int], float] = {}
        self._sent: Dict[Tuple[int, int], CbValue] = {}

    def round_messages(self, ctx, round_no, honest_messages):
        iteration, phase = divmod(round_no - 1, 2)
        messages: List[RoundMessage] = []
        faulty = sorted(ctx.faulty)
        if phase == 0:
            for index, src in enumerate(faulty):
                value = self.low if index % 2 == 0 else self.high
                instance = ("apa", iteration, src)
                item = CbValue(
                    instance,
                    src,
                    value,
                    ctx.sign_as(src, signed_value_tag(instance, value)),
                )
                self._sent[(iteration, src)] = item
                for dst in range(ctx.n):
                    messages.append(RoundMessage(src, dst, item))
        else:
            for src in faulty:
                item = self._sent.get((iteration, src))
                if item is None:
                    continue
                echo = CbEcho((item,))
                for dst in range(ctx.n):
                    messages.append(RoundMessage(src, dst, echo))
        return messages

    def describe(self) -> str:
        return f"extreme-values({self.low}, {self.high})"


class ApaSplitAdversary(SyncAdversary):
    """Faulty dealers send values only to half the honest nodes.

    The other half sees the value only through echoes and outputs ⊥ for
    that dealer, producing the asymmetric ⊥ patterns Lemmas 7/8 reason
    about.  Values alternate between the extremes.
    """

    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high

    def round_messages(self, ctx, round_no, honest_messages):
        iteration, phase = divmod(round_no - 1, 2)
        if phase != 0:
            return []
        messages: List[RoundMessage] = []
        honest = sorted(ctx.honest)
        half = honest[: max(len(honest) // 2, 1)]
        for index, src in enumerate(sorted(ctx.faulty)):
            value = self.low if index % 2 == 0 else self.high
            instance = ("apa", iteration, src)
            item = CbValue(
                instance,
                src,
                value,
                ctx.sign_as(src, signed_value_tag(instance, value)),
            )
            for dst in half:
                messages.append(RoundMessage(src, dst, item))
        return messages

    def describe(self) -> str:
        return f"split-bot({self.low}, {self.high})"


class ApaEquivocatingAdversary(SyncAdversary):
    """Faulty dealers sign *different* values for different honest nodes.

    Honest echoes spread the conflicting signatures, so crusader broadcast
    degrades these dealers to ⊥ everywhere (or to a single consistent value
    for nodes that happened to see only one) — exactly the behaviour the
    signature scheme buys.
    """

    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high

    def round_messages(self, ctx, round_no, honest_messages):
        iteration, phase = divmod(round_no - 1, 2)
        if phase != 0:
            return []
        messages: List[RoundMessage] = []
        for src in sorted(ctx.faulty):
            instance = ("apa", iteration, src)
            for position, dst in enumerate(range(ctx.n)):
                value = self.low if position % 2 == 0 else self.high
                item = CbValue(
                    instance,
                    src,
                    value,
                    ctx.sign_as(src, signed_value_tag(instance, value)),
                )
                messages.append(RoundMessage(src, dst, item))
        return messages

    def describe(self) -> str:
        return f"equivocating({self.low}, {self.high})"


# ----------------------------------------------------------------------
# Convenience runner


@dataclass
class ApaResult:
    """Outcome of an iterated-APA execution."""

    outputs: Dict[int, float]
    nodes: Dict[int, ApaNode]
    inputs: Dict[int, float]
    iterations: int

    def range_at(self, iteration: int) -> float:
        """Honest value range after ``iteration`` iterations (0 = inputs)."""
        if iteration == 0:
            values = list(self.inputs.values())
        else:
            values = [
                node.history[iteration - 1].value
                for node in self.nodes.values()
            ]
        return max(values) - min(values)

    def ranges(self) -> List[float]:
        """Honest range trajectory, index 0 = initial inputs."""
        return [self.range_at(i) for i in range(self.iterations + 1)]


def run_apa(
    inputs: Dict[int, float],
    n: int,
    f: int,
    faulty: Iterable[int] = (),
    adversary: Optional[SyncAdversary] = None,
    iterations: int = 1,
    seed: int = 0,
) -> ApaResult:
    """Run iterated APA and return outputs plus per-iteration diagnostics.

    ``inputs`` must cover every honest node (faulty entries are ignored —
    the adversary chooses what faulty nodes claim).
    """
    faulty_set = set(faulty)
    nodes = {
        v: ApaNode(inputs[v], iterations)
        for v in range(n)
        if v not in faulty_set
    }
    network = SynchronousNetwork(
        dict(nodes), n, f, faulty_set, adversary, seed=seed
    )
    outputs = network.run(2 * iterations)
    honest_inputs = {v: inputs[v] for v in nodes}
    return ApaResult(outputs, nodes, honest_inputs, iterations)


def iterations_for_target(initial_range: float, target: float) -> int:
    """Corollary 2: iterations needed to shrink ``initial_range`` to
    ``target`` (each iteration halves; two rounds per iteration)."""
    import math

    if target <= 0:
        raise ConfigurationError("target range must be positive")
    if initial_range <= target:
        return 0
    return int(math.ceil(math.log2(initial_range / target)))
