"""Algorithm CB (Figure 4): synchronous crusader broadcast with signatures.

A designated dealer ``v`` holds an input and every node outputs a value or
``⊥`` such that, for up to ``f = ceil(n/2) - 1`` corruptions:

* **Validity** — if the dealer is honest, every honest node outputs the
  dealer's input;
* **Crusader consistency** — if some honest node outputs a value
  ``o != ⊥``, every honest node outputs ``o`` or ``⊥``.

Protocol (2 rounds): the dealer signs and broadcasts its input; every node
echoes what it received; a node outputs ``⊥`` if it saw two conflicting
values validly signed by the dealer (proof of equivocation) or no valid
dealer value at all, and the received value otherwise.

The module exposes both a standalone :class:`CrusaderBroadcastNode` (single
dealer, used directly in tests and experiment E2) and the pure resolution
helper :func:`resolve_crusader` that Algorithm APA reuses for its ``n``
parallel instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.crypto.signatures import Signature, verify
from repro.sync.round_model import BROADCAST, SyncNode


class _Bot:
    """The ⊥ output (distinct from every protocol value)."""

    _instance: Optional["_Bot"] = None

    def __new__(cls) -> "_Bot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


#: The singleton ⊥ value.
BOT = _Bot()


def signed_value_tag(instance: Hashable, value: Hashable) -> Tuple:
    """What a dealer signs for a crusader-broadcast value."""
    return ("cb", instance, value)


@dataclass(frozen=True)
class CbValue:
    """A dealer's (claimed) crusader-broadcast value.

    ``signature`` must be the dealer's signature on
    ``signed_value_tag(instance, value)``; receivers validate this against
    the instance's designated dealer.
    """

    instance: Hashable
    dealer: int
    value: Hashable
    signature: Signature

    def signatures(self) -> Tuple[Signature, ...]:
        return (self.signature,)

    def is_valid(self) -> bool:
        """Does the carried signature actually bind dealer/instance/value?"""
        return verify(
            self.signature,
            self.dealer,
            signed_value_tag(self.instance, self.value),
        )


@dataclass(frozen=True)
class CbEcho:
    """Round-2 echo: a bundle of dealer values a node relays."""

    items: Tuple[CbValue, ...]

    def signatures(self) -> Tuple[Signature, ...]:
        return tuple(item.signature for item in self.items)


def resolve_crusader(
    instance: Hashable,
    dealer: int,
    direct: Optional[CbValue],
    observed: Iterable[CbValue],
) -> Any:
    """Compute a node's crusader-broadcast output.

    Parameters
    ----------
    direct:
        The value received *from the dealer itself* in round 1 (or ``None``).
    observed:
        Every ``CbValue`` for this instance the node has seen (round-1
        direct reception plus all round-2 echoes, from anyone).

    Returns the dealer's value, or :data:`BOT` on missing/invalid direct
    value or any proof of equivocation (two valid dealer signatures on
    different values).
    """
    valid_values = {
        item.value
        for item in observed
        if item.instance == instance and item.dealer == dealer
        and item.is_valid()
    }
    if direct is not None and (
        direct.instance != instance
        or direct.dealer != dealer
        or not direct.is_valid()
    ):
        direct = None
    if direct is not None:
        valid_values.add(direct.value)
    if len(valid_values) >= 2:
        return BOT
    if direct is None:
        return BOT
    return direct.value


class CbEquivocatingDealer:
    """Standalone-CB adversary: the faulty dealer signs different values
    for different recipients (and echoes one of them in round 2).

    Crusader consistency must still hold: honest nodes that see both
    signed values output ⊥; no two honest nodes output different non-⊥
    values.  Importable as a :class:`~repro.sync.round_model.SyncAdversary`.
    """

    def __init__(self, dealer: int, value_a, value_b) -> None:
        self.dealer = dealer
        self.value_a = value_a
        self.value_b = value_b
        self._sent = {}

    def round_messages(self, ctx, round_no, honest_messages):
        from repro.sync.round_model import RoundMessage

        instance = ("cb-standalone", self.dealer)
        messages = []
        if round_no == 1:
            for position, dst in enumerate(range(ctx.n)):
                value = self.value_a if position % 2 == 0 else self.value_b
                item = CbValue(
                    instance,
                    self.dealer,
                    value,
                    ctx.sign_as(
                        self.dealer, signed_value_tag(instance, value)
                    ),
                )
                self._sent[dst] = item
                messages.append(RoundMessage(self.dealer, dst, item))
        return messages

    def describe(self) -> str:
        return f"cb-equivocating({self.value_a}/{self.value_b})"


class CbSubsetDealer:
    """Standalone-CB adversary: the faulty dealer addresses only a subset.

    The excluded nodes learn the value only via echoes and output ⊥ — the
    legal "crusader" outcome mixing a value with ⊥ across honest nodes.
    """

    def __init__(self, dealer: int, value, subset) -> None:
        self.dealer = dealer
        self.value = value
        self.subset = set(subset)

    def round_messages(self, ctx, round_no, honest_messages):
        from repro.sync.round_model import RoundMessage

        instance = ("cb-standalone", self.dealer)
        if round_no != 1:
            return []
        item = CbValue(
            instance,
            self.dealer,
            self.value,
            ctx.sign_as(self.dealer, signed_value_tag(instance, self.value)),
        )
        return [
            RoundMessage(self.dealer, dst, item)
            for dst in sorted(self.subset)
        ]

    def describe(self) -> str:
        return "cb-subset"


class CrusaderBroadcastNode(SyncNode):
    """Standalone 2-round crusader broadcast (single designated dealer)."""

    def __init__(self, dealer: int, input_value: Hashable = None) -> None:
        super().__init__()
        self.dealer = dealer
        self.input_value = input_value
        self._direct: Optional[CbValue] = None
        self._observed: List[CbValue] = []
        self.instance: Hashable = ("cb-standalone", dealer)

    def begin_round(self, round_no: int) -> Dict[Any, Any]:
        assert self.ctx is not None
        if round_no == 1:
            if self.ctx.node_id != self.dealer:
                return {}
            signature = self.ctx.sign(
                signed_value_tag(self.instance, self.input_value)
            )
            return {
                BROADCAST: CbValue(
                    self.instance, self.dealer, self.input_value, signature
                )
            }
        if round_no == 2:
            if self._direct is None:
                return {}
            return {BROADCAST: CbEcho((self._direct,))}
        return {}

    def end_round(self, round_no: int, inbox: Dict[int, Any]) -> None:
        if round_no == 1:
            payload = inbox.get(self.dealer)
            if isinstance(payload, CbValue):
                self._direct = payload
                self._observed.append(payload)
        elif round_no == 2:
            for payload in inbox.values():
                if isinstance(payload, CbEcho):
                    self._observed.extend(payload.items)
            self.output = resolve_crusader(
                self.instance, self.dealer, self._direct, self._observed
            )
