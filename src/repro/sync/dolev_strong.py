"""Dolev-Strong authenticated broadcast (used as a baseline substrate).

The classic signature-based broadcast [16]: the dealer signs and sends its
value; in round ``k`` a node accepts a value carried by a chain of ``k``
distinct signatures starting with the dealer's, and (if ``k <= f``) relays
it with its own signature appended.  After ``f + 1`` rounds all honest nodes
have extracted the same value set; they output the unique value if there is
exactly one, else a default (⊥).

This tolerates any ``f < n - 1`` corruptions, but costs ``f + 1`` rounds —
which is exactly why consensus-based clock synchronization pays a
``Theta(n (u + (theta-1) d))`` skew (experiment E6 / the chain-relay
baseline): timing information funnelled through signature chains of length
up to ``f + 1`` accumulates one hop's uncertainty per link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Set, Tuple

from repro.crypto.signatures import Signature, verify
from repro.sync.crusader import BOT
from repro.sync.round_model import BROADCAST, SyncNode


def ds_tag(instance: Hashable, value: Hashable) -> Tuple:
    """What every signer signs for a Dolev-Strong value."""
    return ("ds", instance, value)


@dataclass(frozen=True)
class DsMessage:
    """A value plus its signature chain (dealer first, relayers appended)."""

    instance: Hashable
    dealer: int
    value: Hashable
    chain: Tuple[Signature, ...]

    def signatures(self) -> Tuple[Signature, ...]:
        return self.chain

    def is_valid_at_round(self, round_no: int) -> bool:
        """Chain sanity for acceptance in ``round_no``.

        Needs at least ``round_no`` distinct signers, the first being the
        dealer, and every signature binding the same ``(instance, value)``.
        """
        if len(self.chain) < round_no:
            return False
        if not self.chain or self.chain[0].signer != self.dealer:
            return False
        signers = [sig.signer for sig in self.chain]
        if len(set(signers)) != len(signers):
            return False
        tag = ds_tag(self.instance, self.value)
        return all(verify(sig, sig.signer, tag) for sig in self.chain)


class DolevStrongNode(SyncNode):
    """One node of a single Dolev-Strong broadcast instance.

    Runs for ``f + 1`` rounds; sets :attr:`output` after the last round.
    """

    def __init__(
        self,
        dealer: int,
        input_value: Hashable = None,
        instance: Hashable = "ds-standalone",
    ) -> None:
        super().__init__()
        self.dealer = dealer
        self.input_value = input_value
        self.instance = instance
        self.extracted: Set[Hashable] = set()
        self._to_relay: List[DsMessage] = []

    def begin_round(self, round_no: int) -> Dict[Any, Any]:
        assert self.ctx is not None
        if round_no == 1 and self.ctx.node_id == self.dealer:
            signature = self.ctx.sign(ds_tag(self.instance, self.input_value))
            self.extracted.add(self.input_value)
            return {
                BROADCAST: DsMessage(
                    self.instance, self.dealer, self.input_value, (signature,)
                )
            }
        if self._to_relay:
            sends = {BROADCAST: tuple(self._to_relay)}
            self._to_relay = []
            return sends
        return {}

    def end_round(self, round_no: int, inbox: Dict[int, Any]) -> None:
        assert self.ctx is not None
        for payload in inbox.values():
            messages = (
                payload if isinstance(payload, tuple) else (payload,)
            )
            for message in messages:
                if not isinstance(message, DsMessage):
                    continue
                if message.instance != self.instance:
                    continue
                if message.dealer != self.dealer:
                    continue
                if not message.is_valid_at_round(round_no):
                    continue
                if message.value in self.extracted:
                    continue
                if any(
                    sig.signer == self.ctx.node_id for sig in message.chain
                ):
                    continue
                self.extracted.add(message.value)
                if round_no <= self.ctx.f:
                    own = self.ctx.sign(ds_tag(self.instance, message.value))
                    self._to_relay.append(
                        DsMessage(
                            self.instance,
                            self.dealer,
                            message.value,
                            message.chain + (own,),
                        )
                    )
        if round_no >= self.ctx.f + 1:
            if len(self.extracted) == 1:
                self.output = next(iter(self.extracted))
            else:
                self.output = BOT
