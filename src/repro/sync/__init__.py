"""Synchronous-round substrate and protocols (Section 2 of the paper).

Provides the compute-send-receive round engine with a rushing adversary,
crusader broadcast (Algorithm CB, Figure 4), iterated approximate agreement
(Algorithm APA, Figure 1 / Theorem 9 / Corollary 2), and Dolev-Strong
authenticated broadcast (baseline substrate).
"""

from repro.sync.approx_agreement import (
    ApaEquivocatingAdversary,
    ApaExtremeAdversary,
    ApaNode,
    ApaResult,
    ApaSplitAdversary,
    iterations_for_target,
    midpoint_rule,
    run_apa,
)
from repro.sync.crusader import (
    BOT,
    CbEcho,
    CbValue,
    CrusaderBroadcastNode,
    resolve_crusader,
    signed_value_tag,
)
from repro.sync.dolev_strong import DolevStrongNode, DsMessage, ds_tag
from repro.sync.round_model import (
    BROADCAST,
    RoundMessage,
    SyncAdversary,
    SyncAdversaryContext,
    SyncNode,
    SyncNodeContext,
    SynchronousNetwork,
)

__all__ = [
    "ApaEquivocatingAdversary",
    "ApaExtremeAdversary",
    "ApaNode",
    "ApaResult",
    "ApaSplitAdversary",
    "BOT",
    "BROADCAST",
    "CbEcho",
    "CbValue",
    "CrusaderBroadcastNode",
    "DolevStrongNode",
    "DsMessage",
    "RoundMessage",
    "SyncAdversary",
    "SyncAdversaryContext",
    "SyncNode",
    "SyncNodeContext",
    "SynchronousNetwork",
    "ds_tag",
    "iterations_for_target",
    "midpoint_rule",
    "resolve_crusader",
    "run_apa",
    "signed_value_tag",
]
