"""Synchronous compute-send-receive rounds with a rushing adversary.

Section 2 of the paper analyzes Algorithms CB and APA in the classic
synchronous model: computation proceeds in rounds; in each round every node
sends messages, the *rushing* adversary observes the honest messages of the
round and only then chooses the faulty nodes' messages, and all messages are
delivered before the next round.

:class:`SynchronousNetwork` implements exactly that loop.  Signatures use
the same symbolic scheme as the timed world; the adversary's knowledge
consists of all signatures appearing in honest messages of rounds up to and
including the current one (rushing), plus everything corrupted keys can
sign.  Faulty messages are knowledge-checked, so forgeries raise.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.crypto.pki import PublicKeyInfrastructure
from repro.crypto.signatures import Signature, collect_signatures
from repro.sim.errors import ConfigurationError, ForgeryError

BROADCAST = "broadcast"


@dataclass(frozen=True)
class RoundMessage:
    """One message of a synchronous round."""

    src: int
    dst: int
    payload: Any


class SyncNodeContext:
    """Per-node capabilities in the synchronous world (identity + signing)."""

    def __init__(self, node_id: int, n: int, f: int, key_pair) -> None:
        self.node_id = node_id
        self.n = n
        self.f = f
        self._key_pair = key_pair

    def sign(self, value: Hashable) -> Signature:
        return self._key_pair.sign(value)


class SyncNode(abc.ABC):
    """An honest participant of a synchronous protocol.

    The network calls :meth:`attach` once, then alternates
    :meth:`begin_round` (collect sends) and :meth:`end_round` (deliver the
    round's inbox) until :attr:`output` is set for all honest nodes or the
    round limit is reached.
    """

    def __init__(self) -> None:
        self.ctx: Optional[SyncNodeContext] = None
        self.output: Any = None

    def attach(self, ctx: SyncNodeContext) -> None:
        self.ctx = ctx

    @abc.abstractmethod
    def begin_round(self, round_no: int) -> Dict[Any, Any]:
        """Messages to send this round.

        Returns a mapping ``dst -> payload``; the special key ``BROADCAST``
        sends the payload to every node (including self-delivery, which the
        synchronous abstraction permits and CB/APA rely on: a node "receives"
        its own broadcast).
        """

    @abc.abstractmethod
    def end_round(self, round_no: int, inbox: Dict[int, Any]) -> None:
        """Process the round's deliveries (``sender -> payload``)."""


class SyncAdversaryContext:
    """Observation and action surface for the rushing adversary."""

    def __init__(
        self,
        network: "SynchronousNetwork",
        rng: random.Random,
    ) -> None:
        self._network = network
        self.rng = rng

    @property
    def n(self) -> int:
        return self._network.n

    @property
    def f(self) -> int:
        return self._network.f

    @property
    def faulty(self) -> Set[int]:
        return set(self._network.faulty)

    @property
    def honest(self) -> List[int]:
        return list(self._network.honest)

    def sign_as(self, faulty_id: int, value: Hashable) -> Signature:
        if faulty_id not in self._network.faulty:
            raise ConfigurationError(
                f"cannot sign for honest node {faulty_id}"
            )
        return self._network.pki.key_pair(faulty_id).sign(value)

    def knows(self, signature: Signature) -> bool:
        if signature.signer in self._network.faulty:
            return True
        return signature.key() in self._network.known_signatures


class SyncAdversary:
    """Produces the faulty nodes' messages each round (default: silent)."""

    def round_messages(
        self,
        ctx: SyncAdversaryContext,
        round_no: int,
        honest_messages: List[RoundMessage],
    ) -> List[RoundMessage]:
        return []

    def describe(self) -> str:
        return type(self).__name__


class SynchronousNetwork:
    """Runs a synchronous protocol under a rushing adversary."""

    def __init__(
        self,
        nodes: Dict[int, SyncNode],
        n: int,
        f: int,
        faulty: Iterable[int] = (),
        adversary: Optional[SyncAdversary] = None,
        seed: int = 0,
    ) -> None:
        self.n = n
        self.f = f
        self.faulty: Set[int] = set(faulty)
        if len(self.faulty) > f:
            raise ConfigurationError(
                f"{len(self.faulty)} corruptions exceed declared f={f}"
            )
        self.honest: List[int] = [v for v in range(n) if v not in self.faulty]
        missing = [v for v in self.honest if v not in nodes]
        if missing:
            raise ConfigurationError(f"no protocol node for honest {missing}")
        self.nodes = {v: nodes[v] for v in self.honest}
        self.pki = PublicKeyInfrastructure(n)
        self.adversary = adversary or SyncAdversary()
        self.known_signatures: Set[Tuple[int, Hashable]] = set()
        self._ctx = SyncAdversaryContext(self, random.Random(seed))
        self.rounds_executed = 0
        for v, node in self.nodes.items():
            node.attach(SyncNodeContext(v, n, f, self.pki.key_pair(v)))

    def _expand(self, src: int, sends: Dict[Any, Any]) -> List[RoundMessage]:
        messages: List[RoundMessage] = []
        for dst, payload in sends.items():
            if dst == BROADCAST:
                for real_dst in range(self.n):
                    messages.append(RoundMessage(src, real_dst, payload))
            else:
                messages.append(RoundMessage(src, int(dst), payload))
        return messages

    def run_round(self, round_no: int) -> None:
        """Execute one compute-send-receive round."""
        honest_messages: List[RoundMessage] = []
        for v in self.honest:
            honest_messages.extend(
                self._expand(v, self.nodes[v].begin_round(round_no))
            )
        # Rushing: the adversary sees this round's honest messages (and
        # thereby learns their signatures) before choosing its own.
        for message in honest_messages:
            for signature in collect_signatures(message.payload):
                self.known_signatures.add(signature.key())
        faulty_messages = self.adversary.round_messages(
            self._ctx, round_no, list(honest_messages)
        )
        for message in faulty_messages:
            if message.src not in self.faulty:
                raise ConfigurationError(
                    f"adversary sent from honest node {message.src}"
                )
            for signature in collect_signatures(message.payload):
                if not self._ctx.knows(signature):
                    raise ForgeryError(
                        f"sync adversary used unknown signature "
                        f"{signature.key()} in round {round_no}"
                    )
        inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in self.honest}
        for message in honest_messages + faulty_messages:
            if message.dst in inboxes:
                inboxes[message.dst][message.src] = message.payload
        for v in self.honest:
            self.nodes[v].end_round(round_no, inboxes[v])
        self.rounds_executed += 1

    def run(self, rounds: int) -> Dict[int, Any]:
        """Run ``rounds`` rounds; return honest outputs (may contain None)."""
        for round_no in range(1, rounds + 1):
            self.run_round(round_no)
        return {v: self.nodes[v].output for v in self.honest}
