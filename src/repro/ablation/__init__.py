"""Protocol ablation engine: per-component importance, empirically.

The paper proves that each CPS mechanism is *necessary* by theorem;
this package demonstrates it by measurement.  Every switchable
component (:data:`~repro.build.ABLATABLE_COMPONENTS`) is paired with a
challenge scenario on which the full protocol holds all its bounds and
the one-component-removed protocol breaks at least one conformance
monitor — the monitor-flip set is the component's measured importance.

Layers:

``components``
    The catalog: name, validated off-behaviour, paper reference, and
    the engineered challenge case per component.
``plan``
    :class:`AblationSpec` -> baseline-plus-one-off (optionally
    pairwise) matrix as an ordinary campaign spec (stable case keys,
    caching, pools, adaptive replication).
``report``
    Importance payload (monitor flips + skew deltas), byte-stable for
    the committed ``results/ablation.json`` artifact, plus the table
    renderers.

CLI surface: ``repro ablate plan | run | report``; the generated
catalog document is ``docs/ABLATIONS.md``.
"""

from repro.ablation.components import (
    AblationComponent,
    COMPONENT_INDEX,
    COMPONENTS,
)
from repro.ablation.plan import (
    ABLATION_BUILDER,
    ABLATION_CAMPAIGN_NAME,
    ABLATION_SEED,
    AblationSpec,
    PlannedRun,
    ablation_campaign_spec,
    planned_runs,
    planned_trials,
)
from repro.ablation.report import (
    ablation_payload_bytes,
    ablation_report,
    ablation_table,
    monitor_flips,
    render_ablation_table,
)

__all__ = [
    "AblationComponent",
    "COMPONENTS",
    "COMPONENT_INDEX",
    "ABLATION_BUILDER",
    "ABLATION_CAMPAIGN_NAME",
    "ABLATION_SEED",
    "AblationSpec",
    "PlannedRun",
    "ablation_campaign_spec",
    "planned_runs",
    "planned_trials",
    "ablation_payload_bytes",
    "ablation_report",
    "ablation_table",
    "monitor_flips",
    "render_ablation_table",
]
