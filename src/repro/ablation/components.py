"""The ablation catalog: every CPS mechanism the engine can switch off.

Each :class:`AblationComponent` names one protocol mechanism, the
validated *off*-behaviour the simulator substitutes (see
:mod:`repro.build` for the wiring), the paper guarantee the mechanism
carries, and — the part that makes the ablation *informative* rather
than decorative — a **challenge case**: a registry-keyed scenario under
which the full protocol provably holds its bounds while the ablated
protocol measurably breaks at least one conformance monitor.

The challenge cases are the result of adversary engineering, not
guesswork; each docstring-style ``paper_ref`` records the argument:

* ``signatures`` — a forging impersonator signs ``<r>`` with its own
  key while claiming honest dealers as senders.  Real verification
  drops the forgery at every receiver; trust-all verification lets the
  forged echo land inside the ``d - 2u`` guard interval, ⊥-ing every
  honest dealer (Theorem 5's unforgeability assumption, weaponized).
* ``echo-amplification`` — staggered mimic dealers present different
  timings to the two receiver halves.  With relaying on, the fast
  half's echoes reach the slow half before its acceptances finalize
  and the inconsistent copies are rejected; without relaying both
  survive, violating the Lemma 13 consistency window.
* ``tcb-filter`` — no adversary needed: a silent dealer's instance can
  only resolve to ⊥ *because* the acceptance window times out.
  Without the window there is no timeout, rounds never complete, and
  per-round termination (what the window buys) fails as liveness.
* ``apa`` — predictively-timed broadcasts arrive just after half the
  receivers' pulses, decoding to consistent extreme-negative offset
  estimates that only the ⊥-aware ``f - b`` discard absorbs.  The
  single-shot vote averages them in, dragging the targeted half away
  from the rest (the Figure 3 discard's breaking case).
* ``overlay`` — a sparse graph with the Appendix A translation
  removed: the protocol runs with base-model parameters while the
  network keeps the overlay's longer effective delays, so honest
  estimates carry error the skew bound never budgeted for.
* ``resync`` — a crash-recover wave with the listen-then-join wrapper
  removed: recovering nodes rejoin cold at round 1 and never contract
  back into the stable cohort's envelope (Lemma 16 has nothing to
  contract *from*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.checks.conformance import CPS_BASE_CASE, TOPOLOGY_N

#: Pulses for churn-mode challenge rows (matches the conformance
#: engine's quick churn tier: every scheduled event must fire and the
#: rejoiner needs room to catch up).  Carried in the case dict so the
#: content hash pins it independently of the measurement tier.
CHURN_CHALLENGE_PULSES = 14


@dataclass(frozen=True)
class AblationComponent:
    """One switchable protocol mechanism and its breaking scenario."""

    name: str
    mechanism: str
    off_behavior: str
    paper_ref: str
    challenge: Mapping[str, Any] = field(default_factory=dict)
    #: Which conformance check set judges the challenge: ``"cps"``
    #: (Theorem 17 / Lemma 11 monitors) or ``"churn"`` (stabilization).
    mode: str = "cps"

    def __post_init__(self) -> None:
        if self.mode not in ("cps", "churn"):
            raise ValueError(
                f"mode must be 'cps' or 'churn', got {self.mode!r}"
            )
        if "ablate" in self.challenge:
            raise ValueError(
                "challenge cases must not carry 'ablate'; the plan "
                "generator adds it"
            )

    def baseline_case(self) -> Dict[str, Any]:
        """The challenge scenario with the full protocol."""
        return dict(self.challenge)

    def ablated_case(self) -> Dict[str, Any]:
        """The challenge scenario with this component switched off."""
        case = dict(self.challenge)
        case["ablate"] = [self.name]
        return case


def _cps_challenge(**overrides: Any) -> Dict[str, Any]:
    case = dict(CPS_BASE_CASE)
    case.update(overrides)
    return case


#: The catalog, sorted by component name (the canonical order every
#: plan, report, and document uses).
COMPONENTS: Tuple[AblationComponent, ...] = (
    AblationComponent(
        name="apa",
        mechanism="⊥-aware approximate agreement (f - b discard)",
        off_behavior=(
            "single-shot vote: the midpoint of every non-⊥ estimate, "
            "no discarding at all"
        ),
        paper_ref=(
            "Figure 3 / Theorem 9: discarding f - b extremes per side "
            "is what absorbs f coordinated extreme estimates"
        ),
        challenge=_cps_challenge(adversary="early-extreme"),
    ),
    AblationComponent(
        name="echo-amplification",
        mechanism="TCB echo relay (forward every acceptance)",
        off_behavior=(
            "direct relay only: acceptances are never echoed, so "
            "cross-receiver evidence of inconsistent dealer timing "
            "never circulates"
        ),
        paper_ref=(
            "Figure 2 / Lemma 13: the echo is what makes a dealer's "
            "timing a *crusader* broadcast"
        ),
        challenge=_cps_challenge(
            adversary="mimic-split",
            adversary_params={"stagger": 0.07},
        ),
    ),
    AblationComponent(
        name="overlay",
        mechanism="Appendix A sparse-graph parameter translation",
        off_behavior=(
            "base-model parameters on the overlay network: the "
            "protocol budgets for (d, u) while messages really "
            "traverse (d_eff, u_eff) multi-hop paths"
        ),
        paper_ref=(
            "Appendix A: f + 1 vertex-disjoint paths give effective "
            "delay bounds the derived parameters must use"
        ),
        challenge={
            "n": TOPOLOGY_N,
            "theta": 1.001,
            "d": 1.0,
            "u": 0.02,
            "topology": "circulant",
            "adversary": "silent",
            "delay": "maximum",
            "drift": "extreme",
        },
    ),
    AblationComponent(
        name="resync",
        mechanism="listen-then-join resynchronization wrapper",
        off_behavior=(
            "cold join: recovering nodes restart at round 1 with no "
            "median-vote phase estimate"
        ),
        paper_ref=(
            "Section 6 / Lemma 16: convergence contracts an existing "
            "estimate — a cold joiner has none"
        ),
        challenge={
            **_cps_challenge(),
            "churn": "crash-recover-wave",
            "pulses": CHURN_CHALLENGE_PULSES,
        },
        mode="churn",
    ),
    AblationComponent(
        name="signatures",
        mechanism="signature verification on every TCB message",
        off_behavior=(
            "trust-all verify: any message claiming dealer u is "
            "treated as validly signed by u"
        ),
        paper_ref=(
            "Theorem 5: unforgeability is the assumption; forged "
            "echoes inside the d - 2u guard ⊥ every honest dealer"
        ),
        challenge=_cps_challenge(adversary="forging-impersonator"),
    ),
    AblationComponent(
        name="tcb-filter",
        mechanism="TCB acceptance window (timeout to ⊥)",
        off_behavior=(
            "accept-all window: direct messages accepted at any local "
            "time and silent dealers never time out to ⊥"
        ),
        paper_ref=(
            "Figure 2 / Lemma 10: the window bounds acceptance times "
            "*and* is the only path to per-round termination under "
            "silent faults"
        ),
        challenge=_cps_challenge(),
    ),
)

COMPONENT_INDEX: Dict[str, AblationComponent] = {
    component.name: component for component in COMPONENTS
}
