"""Ablation plan generation: catalog -> campaign grid.

:class:`AblationSpec` selects components (did-you-mean validated) and
expands into a baseline-plus-one-off matrix — for every selected
component, its challenge scenario once with the full protocol and once
with that single component switched off — optionally extended pairwise
(each selected pair, run on both members' challenge scenarios with both
components off).

The expansion is an ordinary :class:`~repro.campaigns.spec.CampaignSpec`
(name ``ABLATION``, builder ``cps-ablation``), so every planned run gets
the campaign engine's stable content-addressed ``case_key``, result-store
caching, process-pool execution, and adaptive ``--ci-width`` replication
for free.  Baseline cases carry no ``ablate`` key at all, so they hash
identically to the same scenarios anywhere else in the repo.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.ablation.components import COMPONENT_INDEX
from repro.build import ABLATABLE_COMPONENTS, resolve_ablation
from repro.campaigns.spec import (
    CampaignSpec,
    MeasurementSpec,
    ScenarioSpec,
    TrialPlan,
)

#: Campaign identity: the seed keys every derived per-case seed, so it
#: is part of the committed artifact's reproducibility contract.
ABLATION_CAMPAIGN_NAME = "ABLATION"
ABLATION_SEED = 53
ABLATION_BUILDER = "cps-ablation"

#: Measurement tiers.  Churn challenge rows override pulses via their
#: case dict (see :data:`~repro.ablation.components
#: .CHURN_CHALLENGE_PULSES`); the builder honours the case key.
MEASUREMENTS = {
    "quick": MeasurementSpec(pulses=10, warmup=2),
    "full": MeasurementSpec(pulses=20, warmup=2),
}


@dataclass(frozen=True)
class PlannedRun:
    """One row of the ablation matrix.

    ``component`` names the challenge scenario's owner; ``ablate`` is
    the (sorted) set of components switched off — empty for a baseline
    row.  ``case`` is the full registry-keyed case dict the campaign
    engine executes.
    """

    component: str
    ablate: Tuple[str, ...]
    mode: str
    case: Dict[str, Any]

    @property
    def variant(self) -> str:
        return "baseline" if not self.ablate else "-".join(
            self.ablate
        ) + "=off"

    @property
    def label(self) -> str:
        return f"{self.component}/{self.variant}"


@dataclass(frozen=True)
class AblationSpec:
    """What to ablate: component selection plus matrix shape.

    ``components`` empty means *all* of
    :data:`~repro.build.ABLATABLE_COMPONENTS`.  ``pairwise`` extends
    the baseline-plus-one-off matrix with every selected pair switched
    off together, run on both members' challenge scenarios (interaction
    effects: a pair whose joint flip set exceeds the union of the
    singles is more than the sum of its parts).
    """

    components: Tuple[str, ...] = field(default_factory=tuple)
    pairwise: bool = False
    seed: int = ABLATION_SEED

    def selected(self) -> Tuple[str, ...]:
        """The validated, sorted component selection."""
        return (
            resolve_ablation(self.components)
            or ABLATABLE_COMPONENTS
        )


def planned_runs(spec: AblationSpec) -> List[PlannedRun]:
    """Expand the spec into ordered matrix rows.

    Order is deterministic: per component (sorted), baseline then
    one-off; then, pairwise, per sorted pair, both members' challenge
    scenarios.  The order is load-bearing — it is the campaign grid
    order, so it must be a pure function of the spec.
    """
    runs: List[PlannedRun] = []
    selected = spec.selected()
    for name in selected:
        component = COMPONENT_INDEX[name]
        runs.append(
            PlannedRun(
                component=name,
                ablate=(),
                mode=component.mode,
                case=component.baseline_case(),
            )
        )
        runs.append(
            PlannedRun(
                component=name,
                ablate=(name,),
                mode=component.mode,
                case=component.ablated_case(),
            )
        )
    if spec.pairwise:
        for first, second in itertools.combinations(selected, 2):
            for owner in (first, second):
                component = COMPONENT_INDEX[owner]
                case = component.baseline_case()
                case["ablate"] = sorted((first, second))
                runs.append(
                    PlannedRun(
                        component=owner,
                        ablate=tuple(sorted((first, second))),
                        mode=component.mode,
                        case=case,
                    )
                )
    return runs


def ablation_campaign_spec(
    spec: AblationSpec = AblationSpec(),
) -> CampaignSpec:
    """The ablation matrix as a campaign engine spec."""
    cases = tuple(run.case for run in planned_runs(spec))
    return CampaignSpec(
        name=ABLATION_CAMPAIGN_NAME,
        description=(
            "Protocol ablation matrix: per-component importance for "
            "every theorem bound (baseline-plus-one-off"
            + (" + pairwise" if spec.pairwise else "")
            + ")"
        ),
        seed=spec.seed,
        scenarios=(
            ScenarioSpec(builder=ABLATION_BUILDER, cases={"*": cases}),
        ),
        measurements=dict(MEASUREMENTS),
    )


def planned_trials(
    spec: AblationSpec, scale: str
) -> List[Tuple[PlannedRun, TrialPlan]]:
    """Matrix rows zipped with their resolved campaign trial plans.

    The zip is positional (the grid is exactly the planned-run cases in
    order); the case-equality assertion turns any future drift between
    the two expansions into a loud failure instead of a silently
    misattributed report.
    """
    runs = planned_runs(spec)
    plans = ablation_campaign_spec(spec).trials_for(scale)
    if len(runs) != len(plans):  # pragma: no cover - structural guard
        raise RuntimeError(
            f"ablation plan drift: {len(runs)} runs vs "
            f"{len(plans)} trial plans"
        )
    paired = list(zip(runs, plans))
    for run, plan in paired:
        if dict(plan.case) != run.case:  # pragma: no cover
            raise RuntimeError(
                f"ablation plan drift at {run.label}: "
                f"{plan.case!r} != {run.case!r}"
            )
    return paired
