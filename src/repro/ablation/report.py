"""Ablation importance reporting: monitor flips and metric deltas.

The headline result of an ablation run is the **monitor-flip set**: for
each component, which conformance monitors pass on the challenge
scenario with the full protocol but fail once the component is removed.
A component whose removal flips nothing (on its challenge) is either
redundant or under-challenged; every component in the catalog flips at
least one monitor, which is the empirical form of "every mechanism
carries a theorem".

Payloads contain no wall-clock data and all floats are produced by the
deterministic simulator, so :func:`ablation_payload_bytes` is
byte-stable across runs, machines, and worker counts — the property the
``ablation-smoke`` CI job asserts with ``git diff --exit-code``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ablation.components import COMPONENT_INDEX
from repro.ablation.plan import (
    AblationSpec,
    PlannedRun,
    ablation_campaign_spec,
    planned_trials,
)
from repro.analysis.reporting import Table
from repro.campaigns.spec import canonical_json


def _finite(value: Any) -> Optional[float]:
    """JSON-safe float: non-finite (and non-numeric) becomes None."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def _base_case(case: Mapping[str, Any]) -> Dict[str, Any]:
    """The case without the adaptive engine's replicate marker."""
    return {k: v for k, v in case.items() if k != "replicate"}


def _variant_summary(
    run: PlannedRun, case_key: str, records: Sequence[Any]
) -> Dict[str, Any]:
    """Aggregate one matrix cell's records into a payload entry.

    Non-adaptive runs have exactly one record per cell.  Under
    adaptive replication, monitor verdicts take the *worst* over
    replicates (a bound that fails in any replicate is broken) and
    ``max_skew`` averages the finite replicate values — both reductions
    are order-independent, keeping the payload deterministic.
    """
    errors = sorted(
        {record.error for record in records if record.error}
    )
    monitors: Dict[str, bool] = {}
    skews: List[float] = []
    live = bool(records) and not errors
    for record in records:
        if record.error:
            continue
        metrics = record.metrics or {}
        for name, ok in (metrics.get("monitors") or {}).items():
            monitors[name] = monitors.get(name, True) and bool(ok)
        skew = _finite(metrics.get("max_skew"))
        if skew is not None:
            skews.append(skew)
        live = live and bool(metrics.get("live"))
    return {
        "ablate": list(run.ablate),
        "case_key": case_key,
        "trials": len(records),
        "error": errors[0] if errors else None,
        "live": live,
        "max_skew": (
            sum(skews) / len(skews) if skews else None
        ),
        "monitors": monitors,
    }


def monitor_flips(
    baseline: Mapping[str, Any], ablated: Mapping[str, Any]
) -> List[str]:
    """Monitors that pass at baseline and fail once ablated."""
    base = baseline.get("monitors") or {}
    off = ablated.get("monitors") or {}
    flips = [
        name
        for name, ok in base.items()
        if ok and not off.get(name, True)
    ]
    # An ablated run that errored or deadlocked without producing a
    # verdict still failed the monitors it never got to satisfy.
    if ablated.get("error"):
        flips.extend(
            name for name in base if base[name] and name not in off
        )
    return sorted(set(flips))


def ablation_report(
    spec: AblationSpec, campaign_run: Any
) -> Dict[str, Any]:
    """Assemble the importance payload from an executed campaign run.

    ``campaign_run`` is the :class:`~repro.campaigns.executor
    .CampaignRun` of :func:`~repro.ablation.plan.ablation_campaign_spec`
    at some scale; records are matched to matrix rows by case content
    (so adaptive replicates fold into their cell).
    """
    scale = campaign_run.scale
    records_by_case: Dict[str, List[Any]] = {}
    for record in campaign_run.records:
        key = canonical_json(_base_case(record.case))
        records_by_case.setdefault(key, []).append(record)

    cells: Dict[str, Dict[str, Any]] = {}
    pair_cells: List[Dict[str, Any]] = []
    for run, plan in planned_trials(spec, scale):
        records = records_by_case.get(canonical_json(run.case), [])
        summary = _variant_summary(run, plan.case_key, records)
        if len(run.ablate) <= 1:
            entry = cells.setdefault(
                run.component,
                {"component": run.component, "mode": run.mode},
            )
            entry["baseline" if not run.ablate else "ablated"] = summary
        else:
            pair_cells.append(
                {
                    "component": run.component,
                    "ablate": list(run.ablate),
                    "summary": summary,
                }
            )

    components: List[Dict[str, Any]] = []
    for name in spec.selected():
        component = COMPONENT_INDEX[name]
        entry = cells[name]
        baseline, ablated = entry["baseline"], entry["ablated"]
        flips = monitor_flips(baseline, ablated)
        base_skew = baseline.get("max_skew")
        off_skew = ablated.get("max_skew")
        components.append(
            {
                "component": name,
                "mechanism": component.mechanism,
                "off_behavior": component.off_behavior,
                "paper_ref": component.paper_ref,
                "mode": component.mode,
                "challenge": dict(component.challenge),
                "baseline": baseline,
                "ablated": ablated,
                "monitor_flips": flips,
                "important": bool(flips),
                "skew_delta": (
                    off_skew - base_skew
                    if base_skew is not None and off_skew is not None
                    else None
                ),
            }
        )

    pairs: List[Dict[str, Any]] = []
    for cell in pair_cells:
        singles = {
            flip
            for entry in components
            if entry["component"] in cell["ablate"]
            for flip in entry["monitor_flips"]
        }
        baseline = cells[cell["component"]]["baseline"]
        flips = monitor_flips(baseline, cell["summary"])
        pairs.append(
            {
                "ablate": cell["ablate"],
                "challenge_of": cell["component"],
                "summary": cell["summary"],
                "monitor_flips": flips,
                "interaction": sorted(set(flips) - singles),
            }
        )

    return {
        "campaign": campaign_run.spec.name,
        "scale": scale,
        "seed": spec.seed,
        "spec_key": ablation_campaign_spec(spec).spec_key(scale),
        "pairwise": spec.pairwise,
        "components": components,
        "pairs": pairs,
        "summary": {
            "components": len(components),
            "flipping": sum(
                1 for entry in components if entry["monitor_flips"]
            ),
            "flips": {
                entry["component"]: entry["monitor_flips"]
                for entry in components
            },
        },
    }


def ablation_payload_bytes(payload: Mapping[str, Any]) -> bytes:
    """The exact bytes :func:`~repro.campaigns.store.dump_json_summary`
    persists — the CI byte-identity contract."""
    return (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def render_ablation_table(payload: Mapping[str, Any]) -> Table:
    """The importance table (also teed to the CI step summary)."""
    table = Table(
        f"ABLATION [{payload['scale']}] — per-component importance "
        "(monitor flips on each component's challenge scenario)",
        [
            "component",
            "mode",
            "monitor flips",
            "baseline skew",
            "ablated skew",
            "live off",
        ],
    )
    for entry in payload["components"]:
        table.add_row(
            entry["component"],
            entry["mode"],
            ", ".join(entry["monitor_flips"]) or "(none)",
            _cell_skew(entry["baseline"]),
            _cell_skew(entry["ablated"]),
            entry["ablated"]["live"],
        )
    for pair in payload.get("pairs", ()):
        table.add_row(
            "+".join(pair["ablate"]),
            f"pair@{pair['challenge_of']}",
            ", ".join(pair["monitor_flips"]) or "(none)",
            "-",
            _cell_skew(pair["summary"]),
            pair["summary"]["live"],
        )
    summary = payload["summary"]
    table.add_note(
        f"{summary['flipping']}/{summary['components']} components "
        "flip at least one conformance monitor when removed; a "
        "baseline row failing any monitor would invalidate its "
        "component's challenge (none do)."
    )
    return table


def _cell_skew(summary: Mapping[str, Any]) -> Any:
    value = summary.get("max_skew")
    return value if value is not None else "inf/dead"


def ablation_table(campaign_run: Any) -> Table:
    """Tabulate hook for the registered ABLATION campaign."""
    return render_ablation_table(
        ablation_report(AblationSpec(), campaign_run)
    )
