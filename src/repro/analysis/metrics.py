"""Pulse-synchronization metrics (Definition 3, measured).

All functions take a ``pulses`` map ``node -> [p_1, p_2, ...]`` (honest
nodes only — pass :meth:`SimulationResult.honest_pulses`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.errors import ConfigurationError

Pulses = Dict[int, List[float]]

#: Numerical slack applied to bound comparisons (matches the experiment
#: tables and the conformance monitors).
TOLERANCE = 1e-9


def common_pulse_count(pulses: Pulses) -> int:
    """Number of pulses every node has generated."""
    if not pulses:
        raise ConfigurationError("no pulse data")
    return min(len(times) for times in pulses.values())


def pulse_skew(pulses: Pulses, index: int) -> float:
    """``max_v p_{v,i} - min_v p_{v,i}`` (0-based ``index``)."""
    values = [times[index] for times in pulses.values()]
    return max(values) - min(values)


def skew_trajectory(pulses: Pulses, skip: int = 0) -> List[float]:
    """Per-pulse skew, optionally skipping warm-up pulses."""
    count = common_pulse_count(pulses)
    return [pulse_skew(pulses, i) for i in range(skip, count)]


def max_skew(pulses: Pulses, skip: int = 0) -> float:
    """Worst per-pulse skew (Definition 3's S, measured)."""
    trajectory = skew_trajectory(pulses, skip)
    if not trajectory:
        raise ConfigurationError(f"no pulses left after skipping {skip}")
    return max(trajectory)


def min_period(pulses: Pulses) -> float:
    """``inf_i (min_v p_{v,i+1} - max_v p_{v,i})`` — Definition 3."""
    count = common_pulse_count(pulses)
    if count < 2:
        raise ConfigurationError("need two pulses for a period")
    return min(
        min(times[i + 1] for times in pulses.values())
        - max(times[i] for times in pulses.values())
        for i in range(count - 1)
    )


def max_period(pulses: Pulses) -> float:
    """``sup_i (max_v p_{v,i+1} - min_v p_{v,i})`` — Definition 3."""
    count = common_pulse_count(pulses)
    if count < 2:
        raise ConfigurationError("need two pulses for a period")
    return max(
        max(times[i + 1] for times in pulses.values())
        - min(times[i] for times in pulses.values())
        for i in range(count - 1)
    )


def check_liveness(pulses: Pulses, expected: int) -> bool:
    """Did every node output at least ``expected`` pulses, in order?"""
    for times in pulses.values():
        if len(times) < expected:
            return False
        if any(b <= a for a, b in zip(times, times[1:])):
            return False
    return True


@dataclass(frozen=True)
class PulseReport:
    """Summary statistics of one run."""

    nodes: int
    pulses: int
    max_skew: float
    steady_skew: float
    min_period: float
    max_period: float

    @staticmethod
    def from_pulses(pulses: Pulses, warmup: int = 2) -> "PulseReport":
        count = common_pulse_count(pulses)
        warmup = min(warmup, max(count - 1, 0))
        return PulseReport(
            nodes=len(pulses),
            pulses=count,
            max_skew=max_skew(pulses),
            steady_skew=max_skew(pulses, skip=warmup),
            min_period=min_period(pulses),
            max_period=max_period(pulses),
        )


def convergence_rounds(
    trajectory: Sequence[float], floor: float, factor: float = 1.05
) -> int:
    """First pulse index whose skew is within ``factor * floor``.

    Returns ``len(trajectory)`` if the trajectory never gets there.
    """
    for index, value in enumerate(trajectory):
        if value <= floor * factor:
            return index
    return len(trajectory)


# ----------------------------------------------------------------------
# Stabilization metrics (churn / membership dynamics)
#
# Under a fault schedule pulse *indices* stop aligning across nodes — a
# node that missed three rounds is three indices behind — so the static
# Definition 3 metrics above do not apply to disrupted nodes.  The
# churn metrics instead align by *time*: a disrupted node's pulse is
# compared against the nearest pulse of each reference (never-disrupted)
# node, and re-synchronization is judged on that envelope.
# ----------------------------------------------------------------------


def nearest_pulse_gap(times: Sequence[float], t: float) -> float:
    """``min_i |times[i] - t|`` over a *sorted* pulse train (inf if
    empty)."""
    if not times:
        return float("inf")
    index = bisect_left(times, t)
    best = float("inf")
    if index < len(times):
        best = times[index] - t
    if index > 0:
        best = min(best, t - times[index - 1])
    return best


def alignment_envelope(
    pulses: Pulses, reference: Sequence[int], t: float, bound: float
) -> Optional[float]:
    """Worst nearest-pulse gap of time ``t`` against the reference
    cohort.

    A reference node only participates while its recorded train covers
    ``t`` (i.e. ``t <= last pulse + bound``) — runs stop mid-round, and
    a train truncated *before* ``t`` would report a spurious gap.
    Returns ``None`` when no reference covers ``t`` (the pulse is not
    evaluable, e.g. the run's final instants).
    """
    worst: Optional[float] = None
    for node in reference:
        times = pulses.get(node, [])
        if not times or t > times[-1] + bound:
            continue
        gap = nearest_pulse_gap(times, t)
        if worst is None or gap > worst:
            worst = gap
    return worst


@dataclass(frozen=True)
class StabilizationReport:
    """Re-synchronization summary of one node after one activation.

    ``pulses_to_resync`` counts the node's pulses from the activation up
    to and including the first pulse from which *every* later evaluable
    pulse stays within ``bound`` of the reference cohort (``None`` when
    the node never restabilizes — including when it never pulses again).
    ``envelope`` is the worst evaluable post-resync gap; ``trajectory``
    the full per-pulse envelope sequence (``nan`` for non-evaluable
    pulses).
    """

    node: int
    activated_at: float
    pulses_to_resync: Optional[int]
    envelope: float
    trajectory: Tuple[float, ...]

    @property
    def resynced(self) -> bool:
        return self.pulses_to_resync is not None


def stabilization_report(
    pulses: Pulses,
    node: int,
    activated_at: float,
    reference: Sequence[int],
    bound: float,
) -> StabilizationReport:
    """Judge one node's re-synchronization after an activation at
    ``activated_at`` against the ``reference`` cohort (nodes active and
    honest throughout; compare with ``bound`` = the skew bound ``S``).
    """
    post = [t for t in pulses.get(node, []) if t > activated_at]
    envelopes = [
        alignment_envelope(pulses, reference, t, bound) for t in post
    ]
    # Last offending pulse decides the resync index; trailing
    # non-evaluable pulses (run truncation) are neutral.
    resync_index: Optional[int] = 0 if post else None
    for index, value in enumerate(envelopes):
        if value is not None and value > bound + TOLERANCE:
            resync_index = index + 1
    if resync_index is not None and resync_index >= len(post):
        resync_index = None  # never settled (or never pulsed again)
    settled = (
        envelopes[resync_index:] if resync_index is not None else []
    )
    evaluable = [value for value in settled if value is not None]
    if resync_index is not None and not evaluable:
        # Every settled pulse fell outside reference coverage: there is
        # no evidence of alignment, so do not claim re-synchronization.
        resync_index = None
    return StabilizationReport(
        node=node,
        activated_at=activated_at,
        pulses_to_resync=(
            resync_index + 1 if resync_index is not None else None
        ),
        envelope=max(evaluable) if evaluable else float("nan"),
        trajectory=tuple(
            float("nan") if value is None else value
            for value in envelopes
        ),
    )
