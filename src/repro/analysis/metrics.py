"""Pulse-synchronization metrics (Definition 3, measured).

All functions take a ``pulses`` map ``node -> [p_1, p_2, ...]`` (honest
nodes only — pass :meth:`SimulationResult.honest_pulses`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sim.errors import ConfigurationError

Pulses = Dict[int, List[float]]


def common_pulse_count(pulses: Pulses) -> int:
    """Number of pulses every node has generated."""
    if not pulses:
        raise ConfigurationError("no pulse data")
    return min(len(times) for times in pulses.values())


def pulse_skew(pulses: Pulses, index: int) -> float:
    """``max_v p_{v,i} - min_v p_{v,i}`` (0-based ``index``)."""
    values = [times[index] for times in pulses.values()]
    return max(values) - min(values)


def skew_trajectory(pulses: Pulses, skip: int = 0) -> List[float]:
    """Per-pulse skew, optionally skipping warm-up pulses."""
    count = common_pulse_count(pulses)
    return [pulse_skew(pulses, i) for i in range(skip, count)]


def max_skew(pulses: Pulses, skip: int = 0) -> float:
    """Worst per-pulse skew (Definition 3's S, measured)."""
    trajectory = skew_trajectory(pulses, skip)
    if not trajectory:
        raise ConfigurationError(f"no pulses left after skipping {skip}")
    return max(trajectory)


def min_period(pulses: Pulses) -> float:
    """``inf_i (min_v p_{v,i+1} - max_v p_{v,i})`` — Definition 3."""
    count = common_pulse_count(pulses)
    if count < 2:
        raise ConfigurationError("need two pulses for a period")
    return min(
        min(times[i + 1] for times in pulses.values())
        - max(times[i] for times in pulses.values())
        for i in range(count - 1)
    )


def max_period(pulses: Pulses) -> float:
    """``sup_i (max_v p_{v,i+1} - min_v p_{v,i})`` — Definition 3."""
    count = common_pulse_count(pulses)
    if count < 2:
        raise ConfigurationError("need two pulses for a period")
    return max(
        max(times[i + 1] for times in pulses.values())
        - min(times[i] for times in pulses.values())
        for i in range(count - 1)
    )


def check_liveness(pulses: Pulses, expected: int) -> bool:
    """Did every node output at least ``expected`` pulses, in order?"""
    for times in pulses.values():
        if len(times) < expected:
            return False
        if any(b <= a for a, b in zip(times, times[1:])):
            return False
    return True


@dataclass(frozen=True)
class PulseReport:
    """Summary statistics of one run."""

    nodes: int
    pulses: int
    max_skew: float
    steady_skew: float
    min_period: float
    max_period: float

    @staticmethod
    def from_pulses(pulses: Pulses, warmup: int = 2) -> "PulseReport":
        count = common_pulse_count(pulses)
        warmup = min(warmup, max(count - 1, 0))
        return PulseReport(
            nodes=len(pulses),
            pulses=count,
            max_skew=max_skew(pulses),
            steady_skew=max_skew(pulses, skip=warmup),
            min_period=min_period(pulses),
            max_period=max_period(pulses),
        )


def convergence_rounds(
    trajectory: Sequence[float], floor: float, factor: float = 1.05
) -> int:
    """First pulse index whose skew is within ``factor * floor``.

    Returns ``len(trajectory)`` if the trajectory never gets there.
    """
    for index, value in enumerate(trajectory):
        if value <= floor * factor:
            return index
    return len(trajectory)
