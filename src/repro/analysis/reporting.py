"""Plain-text tables and CSV output (no external dependencies).

Every experiment returns a :class:`Table`; benchmarks print it, the CLI
shows it, and the benchmark harness persists CSV snapshots
(``docs/EXPERIMENTS.md`` catalogs how to regenerate each table).
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence


def format_value(value: Any, precision: int = 6) -> str:
    """Human-friendly cell formatting (engineering-ish floats)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision - 2}e}"
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A titled, column-ordered result table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self, precision: int = 6) -> str:
        """ASCII rendering with aligned columns."""
        header = [str(c) for c in self.columns]
        body = [
            [format_value(cell, precision) for cell in row]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def to_markdown(self, precision: int = 6) -> str:
        """GitHub-flavoured markdown rendering (for generated docs)."""
        header = "| " + " | ".join(str(c) for c in self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        lines = [header, rule]
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(format_value(cell, precision) for cell in row)
                + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


def ratio(measured: float, bound: float) -> float:
    """``measured / bound`` with a sane 0/0 convention."""
    if bound == 0:
        return math.inf if measured > 0 else 0.0
    return measured / bound


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))
