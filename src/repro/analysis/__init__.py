"""Measurement, theory bounds, reporting, and the experiment registry."""

from repro.analysis.metrics import (
    PulseReport,
    check_liveness,
    common_pulse_count,
    convergence_rounds,
    max_period,
    max_skew,
    min_period,
    pulse_skew,
    skew_trajectory,
)
from repro.analysis.reporting import Table, format_value, geometric_mean, ratio
from repro.analysis.runner import TrialOutcome, run_pulse_trial, sweep

__all__ = [
    "PulseReport",
    "Table",
    "TrialOutcome",
    "check_liveness",
    "common_pulse_count",
    "convergence_rounds",
    "format_value",
    "geometric_mean",
    "max_period",
    "max_skew",
    "min_period",
    "pulse_skew",
    "ratio",
    "run_pulse_trial",
    "skew_trajectory",
    "sweep",
]
