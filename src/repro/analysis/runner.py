"""Experiment execution helpers (one place for run-and-measure plumbing)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.metrics import PulseReport, check_liveness
from repro.sim.scheduler import Simulation, SimulationResult


@dataclass
class TrialOutcome:
    """A measured run: report + the raw result for deeper inspection."""

    report: Optional[PulseReport]
    result: Optional[SimulationResult]
    live: bool
    error: Optional[str] = None


def run_pulse_trial(
    simulation: Simulation,
    pulses: int,
    warmup: int = 2,
    until: Optional[float] = None,
) -> TrialOutcome:
    """Run a wired simulation for ``pulses`` pulses and summarize it.

    Protocol-level failures (e.g. the midpoint rule becoming
    under-determined in an ablation) are captured as ``error`` rather than
    propagated, so sweeps can tabulate them.
    """
    try:
        result = simulation.run(max_pulses=pulses, until=until)
    except Exception as exc:  # noqa: BLE001 - sweeps tabulate failures
        return TrialOutcome(None, None, False, f"{type(exc).__name__}: {exc}")
    honest = result.honest_pulses()
    live = check_liveness(honest, pulses)
    if not live:
        return TrialOutcome(None, result, False, "liveness violated")
    return TrialOutcome(
        PulseReport.from_pulses(honest, warmup=warmup), result, True
    )


def sweep(
    configurations: List[Dict[str, Any]],
    build: Callable[..., Simulation],
    pulses: int,
    warmup: int = 2,
) -> List[Dict[str, Any]]:
    """Run ``build(**config)`` for each configuration; attach outcomes."""
    rows = []
    for config in configurations:
        outcome = run_pulse_trial(build(**config), pulses, warmup=warmup)
        record = dict(config)
        record["outcome"] = outcome
        rows.append(record)
    return rows
