"""Experiment execution helpers (one place for run-and-measure plumbing)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.metrics import PulseReport, check_liveness
from repro.sim.scheduler import Simulation, SimulationResult


@dataclass
class TrialOutcome:
    """A measured run: report + the raw result for deeper inspection."""

    report: Optional[PulseReport]
    result: Optional[SimulationResult]
    live: bool
    error: Optional[str] = None


def run_pulse_trial(
    simulation: Simulation,
    pulses: int,
    warmup: int = 2,
    until: Optional[float] = None,
) -> TrialOutcome:
    """Run a wired simulation for ``pulses`` pulses and summarize it.

    Protocol-level failures (e.g. the midpoint rule becoming
    under-determined in an ablation) are captured as ``error`` rather than
    propagated, so sweeps can tabulate them.
    """
    try:
        result = simulation.run(max_pulses=pulses, until=until)
    except Exception as exc:  # noqa: BLE001 - sweeps tabulate failures
        return TrialOutcome(None, None, False, f"{type(exc).__name__}: {exc}")
    honest = result.honest_pulses()
    live = check_liveness(honest, pulses)
    if not live:
        return TrialOutcome(None, result, False, "liveness violated")
    return TrialOutcome(
        PulseReport.from_pulses(honest, warmup=warmup), result, True
    )


def _sweep_trial(
    build: Callable[..., Simulation],
    pulses: int,
    warmup: int,
    config: Dict[str, Any],
) -> TrialOutcome:
    """Top-level worker for :func:`sweep` (picklable for pool mode)."""
    return run_pulse_trial(build(**config), pulses, warmup=warmup)


def sweep(
    configurations: List[Dict[str, Any]],
    build: Callable[..., Simulation],
    pulses: int,
    warmup: int = 2,
    seed: Optional[int] = None,
    workers: int = 1,
) -> List[Dict[str, Any]]:
    """Run ``build(**config)`` for each configuration; attach outcomes.

    Compatibility shim over :mod:`repro.campaigns.executor` — new code
    should declare a :class:`~repro.campaigns.spec.CampaignSpec` instead.

    With ``seed`` set, every configuration that does not pin its own
    ``seed`` gets one derived from ``seed`` and the *canonical* content
    of the configuration (independent of dict-key ordering and of the
    execution schedule), and that seed is passed to ``build`` explicitly;
    serial and parallel sweeps therefore produce identical records.  With
    ``workers > 1`` the trials run on a process pool, which requires
    ``build`` to be picklable (a module-level function).
    """
    import functools

    from repro.campaigns.executor import ExecutionPolicy, map_trials
    from repro.campaigns.spec import derive_seed

    calls: List[Dict[str, Any]] = []
    seeds: List[Optional[int]] = []
    for config in configurations:
        call = dict(config)
        derived: Optional[int] = None
        if seed is not None and "seed" not in call:
            derived = derive_seed(
                seed, getattr(build, "__name__", "build"), config
            )
            call["seed"] = derived
        calls.append(call)
        seeds.append(derived)

    outcomes = map_trials(
        functools.partial(_sweep_trial, build, pulses, warmup),
        calls,
        ExecutionPolicy(workers=workers),
    )
    rows = []
    for config, derived, outcome in zip(configurations, seeds, outcomes):
        record = dict(config)
        if derived is not None:
            record["seed"] = derived
        record["outcome"] = outcome
        rows.append(record)
    return rows
