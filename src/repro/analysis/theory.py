"""Closed-form bounds from the paper (the "paper" column of every table).

Everything here is a direct transcription of a stated claim; experiments
compare these numbers against measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.baselines.chain_relay import ChainParameters
from repro.baselines.srikanth_toueg import StParameters
from repro.core.params import ProtocolParameters


def cps_skew_bound(params: ProtocolParameters) -> float:
    """Theorem 17: skew at most ``S``."""
    return params.S


def cps_min_period_bound(params: ProtocolParameters) -> float:
    """Theorem 17: ``P_min >= (T - (theta+1) S) / theta``."""
    return params.p_min_bound


def cps_max_period_bound(params: ProtocolParameters) -> float:
    """Theorem 17: ``P_max <= T + 3 S``."""
    return params.p_max_bound


def estimate_error_bound(params: ProtocolParameters) -> float:
    """Lemmas 12/13: ``delta = 2u + (theta^2-1) d + 2(theta^3-theta^2) S``."""
    return params.delta


def tcb_consistency_bound(params: ProtocolParameters) -> float:
    """Lemma 11: honest acceptances of one dealer within
    ``(1 - 1/theta) d + 2u/theta`` real time."""
    return params.consistency_window


def apa_halving_bound(initial_range: float, iteration: int) -> float:
    """Theorem 9: range after ``iteration`` iterations is
    ``<= initial / 2^iteration``."""
    return initial_range / (2.0 ** iteration)


def apa_round_count(initial_range: float, target: float) -> int:
    """Corollary 2: ``2 * ceil(log2(ell / eps))`` rounds suffice."""
    if target <= 0:
        raise ValueError("target must be positive")
    if initial_range <= target:
        return 0
    return 2 * math.ceil(math.log2(initial_range / target))


def lower_bound_skew(u_tilde: float) -> float:
    """Theorem 5: expected skew at least ``2 * u_tilde / 3``."""
    return 2.0 * u_tilde / 3.0


def fault_free_lower_bound(u: float, theta: float, d: float) -> float:
    """[4]: ``u + (theta - 1) d`` order lower bound without faults (we use
    ``u/2 + (1 - 1/theta) d / 2``-style constants loosely; reported as the
    order term the paper quotes)."""
    return u + (theta - 1.0) * d


def st_skew_bound(params: StParameters) -> float:
    """Θ(d) for threshold-relay pulsers ([28]/[21]/[2])."""
    return params.skew_bound


def chain_skew_bound(params: ChainParameters) -> float:
    """Θ(f (u + (theta-1) d)) for chain-relay timing."""
    return params.skew_bound


@dataclass(frozen=True)
class ResilienceClaims:
    """The resilience table of the introduction."""

    n: int

    @property
    def signatures_optimal(self) -> int:
        return math.ceil(self.n / 2) - 1

    @property
    def no_signatures(self) -> int:
        return math.ceil(self.n / 3) - 1

    @property
    def lynch_welch(self) -> int:
        return max((self.n - 1) // 3, 0)


def summary(params: ProtocolParameters) -> Dict[str, float]:
    """All CPS bounds in one map (used by the CLI's ``params`` command)."""
    return {
        "S (skew bound)": params.S,
        "T (round length)": params.T,
        "delta (estimate error)": params.delta,
        "P_min bound": params.p_min_bound,
        "P_max bound": params.p_max_bound,
        "TCB window (local)": params.tcb_window,
        "TCB finalize wait": params.tcb_finalize_wait,
        "Lemma 11 window": params.consistency_window,
        "fault-free order bound": fault_free_lower_bound(
            params.u, params.theta, params.d
        ),
    }
