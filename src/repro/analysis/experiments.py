"""Experiments E1-E10, ablations A1-A3, and the STRESS campaign.

The paper is a theory paper without an empirical section, so each
experiment operationalizes one stated claim (theorem/lemma/corollary) or
one comparison from the introduction.  Every function returns a
:class:`~repro.analysis.reporting.Table`; benchmarks, the CLI, and the
generated ``docs/EXPERIMENTS.md`` all render these.

``scale="quick"`` keeps runtimes in seconds (CI-friendly);
``scale="full"`` covers wider sweeps.  The campaign-ported experiments
(E1/E4/E5/E6, plus the registry-driven STRESS campaign) additionally
accept any scale a spec declares a tier for — E5 and STRESS define
``"stress"`` tiers whose cases name scenario-registry entries.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from repro.ablation import (
    AblationSpec,
    ablation_campaign_spec,
    ablation_report,
    ablation_table,
    render_ablation_table,
)
from repro.analysis import metrics, theory
from repro.analysis.reporting import Table
from repro.analysis.runner import run_pulse_trial
from repro.baselines.lynch_welch import lw_max_faults
from repro.campaigns import (
    CampaignDefinition,
    CampaignRun,
    CampaignSpec,
    MeasurementSpec,
    ScenarioSpec,
    execute_campaign,
    register_campaign,
)
from repro.campaigns.builders import (
    APA_ADVERSARIES,
    CPS_ADVERSARIES,
    E6_ALGORITHMS,
    cps_group_a as _cps_group_a,
)
from repro.core.attacks import (
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    FastToFaultyDelayPolicy,
)
from repro.core.cps import CpsNode, assemble_cps_simulation
from repro.core.lower_bound import FixedPeriodProtocol, run_lower_bound
from repro.core.params import derive_parameters, max_faults
from repro.sim.adversary import SilentAdversary
from repro.sim.clocks import HardwareClock
from repro.sim.network import RandomDelayPolicy
from repro.sync.crusader import (
    BOT,
    CbEquivocatingDealer,
    CbSubsetDealer,
    CrusaderBroadcastNode,
)
from repro.sync.round_model import SynchronousNetwork

# Canonical model parameters of the "typical regime" (u << d, theta-1 << 1)
# the introduction argues about.  d normalizes the time unit.
TYPICAL = {"theta": 1.001, "d": 1.0, "u": 0.01}


# ======================================================================
# E1 — Theorem 9 / Corollary 2: APA convergence
# ======================================================================


def e1_campaign() -> CampaignSpec:
    """The E1 grid as a declarative campaign."""
    adversaries = tuple(APA_ADVERSARIES)
    return CampaignSpec(
        name="E1",
        description="APA convergence (Theorem 9, Corollary 2)",
        scenarios=(
            ScenarioSpec(
                builder="apa-convergence",
                base={"initial_range": 64.0, "target": 1.0},
                axes={
                    "quick": {"n": (5, 9), "adversary": adversaries},
                    "full": {
                        "n": (5, 9, 16, 25),
                        "adversary": adversaries,
                    },
                },
            ),
        ),
        measurements={"*": MeasurementSpec(pulses=0, warmup=0)},
    )


def e1_table(run: CampaignRun) -> Table:
    """Assemble the E1 table from campaign trial records."""
    table = Table(
        "E1 — APA convergence (Theorem 9, Corollary 2)",
        [
            "n",
            "f",
            "adversary",
            "iterations",
            "rounds",
            "initial range",
            "final range",
            "bound (l/2^k)",
            "halved every iter",
            "validity ok",
        ],
    )
    nan = float("nan")
    for record in run.records:
        m = record.metrics
        table.add_row(
            record.case["n"],
            m.get("f", max_faults(record.case["n"])),
            record.case["adversary"],
            m.get("iterations", 0),
            m.get("rounds", 0),
            m.get("initial_range", nan),
            m.get("final_range", nan),
            m.get("halving_bound", nan),
            m.get("halved", False),
            m.get("validity", False),
        )
    table.add_note(
        "Corollary 2: 2*ceil(log2(l/eps)) rounds reach eps at resilience "
        "ceil(n/2)-1."
    )
    return table


def e1_apa_convergence(scale: str = "quick") -> Table:
    """Honest range halves per APA iteration, for every adversary."""
    return e1_table(execute_campaign(e1_campaign(), scale=scale))


# ======================================================================
# E2 — Figure 4: crusader broadcast properties
# ======================================================================


def e2_crusader(scale: str = "quick") -> Table:
    """Validity and crusader consistency of Algorithm CB."""
    sizes = [4, 7] if scale == "quick" else [4, 7, 10, 15]
    table = Table(
        "E2 — Crusader broadcast (Figure 4)",
        [
            "n",
            "f",
            "scenario",
            "outputs",
            "validity ok",
            "consistency ok",
        ],
    )
    for n in sizes:
        f = max_faults(n)
        scenarios = []
        # Honest dealer, all-silent faulty.
        faulty = list(range(n - f, n))
        scenarios.append(("honest-dealer", 0, faulty, None))
        # Faulty dealer equivocating 0/1.
        scenarios.append(
            (
                "equivocating-dealer",
                n - 1,
                faulty,
                CbEquivocatingDealer(n - 1, 0, 1),
            )
        )
        # Faulty dealer sending only to a subset.
        honest = [v for v in range(n) if v not in faulty]
        scenarios.append(
            (
                "subset-dealer",
                n - 1,
                faulty,
                CbSubsetDealer(n - 1, 1, honest[: len(honest) // 2 + 1]),
            )
        )
        for name, dealer, faulty_set, adversary in scenarios:
            nodes = {
                v: CrusaderBroadcastNode(dealer, input_value=1)
                for v in range(n)
                if v not in faulty_set
            }
            network = SynchronousNetwork(
                dict(nodes), n, f, faulty_set, adversary
            )
            outputs = network.run(2)
            values = set(outputs.values())
            non_bot = {v for v in values if v is not BOT}
            if dealer not in faulty_set:
                validity = values == {1}
            else:
                validity = True  # vacuous for faulty dealers
            consistency = len(non_bot) <= 1
            rendered = ", ".join(
                f"{node}:{output!r}" for node, output in sorted(outputs.items())
            )
            table.add_row(n, f, name, rendered, validity, consistency)
    return table


# ======================================================================
# E3 — Lemmas 10-13: TCB acceptance and estimate accuracy
# ======================================================================


def e3_tcb_accuracy(scale: str = "quick") -> Table:
    """Measured estimate errors against the delta bound."""
    if scale == "quick":
        configs = [(1.0005, 0.01), (1.002, 0.05), (1.005, 0.1)]
    else:
        configs = [
            (1.0002, 0.005),
            (1.0005, 0.01),
            (1.001, 0.02),
            (1.002, 0.05),
            (1.005, 0.1),
            (1.01, 0.2),
        ]
    table = Table(
        "E3 — TCB estimate accuracy (Lemmas 10-13)",
        [
            "theta",
            "u",
            "honest accepts",
            "validity err max",
            "delta bound",
            "within (L12)",
            "faulty consistency err",
            "within (L13)",
        ],
    )
    n, pulses = 6, 10
    for theta, u in configs:
        params = derive_parameters(theta, 1.0, u, n)
        faulty = list(range(n - params.f, n))
        behavior = CpsMimicDealerAttack(params, _cps_group_a(n))
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=behavior,
            delay_policy=RandomDelayPolicy(seed=7),
            seed=11,
        )
        outcome = run_pulse_trial(simulation, pulses)
        assert outcome.result is not None and outcome.live, outcome.error
        honest_pulses = outcome.result.honest_pulses()
        honest = sorted(honest_pulses)
        validity_err = 0.0
        consistency_err = 0.0
        accepts = 0
        rejections_of_honest = 0
        for v in honest:
            node = simulation.protocol(v)
            for summary in node.summaries:
                r = summary.pulse_round - 1
                for w, estimate in summary.estimates.items():
                    if w == v:
                        continue
                    if w in honest:
                        if estimate is BOT:
                            rejections_of_honest += 1
                            continue
                        accepts += 1
                        true_offset = (
                            honest_pulses[w][r] - honest_pulses[v][r]
                        )
                        error = estimate - true_offset
                        validity_err = max(
                            validity_err, abs(error) if error < 0 else error
                        )
        # Lemma 13: pairwise consistency for faulty dealers.
        for r in range(pulses):
            for x in faulty:
                per_node = {}
                for v in honest:
                    summaries = simulation.protocol(v).summaries
                    if r < len(summaries):
                        estimate = summaries[r].estimates.get(x)
                        if estimate is not BOT and estimate is not None:
                            per_node[v] = estimate
                for v in per_node:
                    for w in per_node:
                        if v == w:
                            continue
                        gap = (
                            per_node[v]
                            - per_node[w]
                            - (
                                honest_pulses[w][r]
                                - honest_pulses[v][r]
                            )
                        )
                        consistency_err = max(consistency_err, abs(gap))
        table.add_row(
            theta,
            u,
            accepts,
            validity_err,
            params.delta,
            validity_err < params.delta + 1e-9,
            consistency_err,
            consistency_err < params.delta + 1e-9,
        )
    table.add_note(
        "Lemma 10 additionally guarantees zero honest-dealer rejections "
        "when faulty links respect d-u; asserted in the test suite."
    )
    return table


# ======================================================================
# E4 — Theorem 17 / Corollary 4: CPS skew
# ======================================================================


def _cps_adversaries(params) -> Dict[str, Callable[[], object]]:
    """Adversary factories bound to ``params`` (used by E9)."""
    return {
        name: (lambda make=make: make(params))
        for name, make in CPS_ADVERSARIES.items()
    }


def e4_campaign() -> CampaignSpec:
    """The E4 grid: (n, u, theta) systems crossed with the attack suite."""
    return CampaignSpec(
        name="E4",
        description="CPS skew vs bound (Theorem 17 / Corollary 4)",
        scenarios=(
            ScenarioSpec(
                builder="cps-skew",
                base={"d": 1.0, "seed": 3, "clock_style": "extreme"},
                axes={"*": {"adversary": tuple(CPS_ADVERSARIES)}},
                cases={
                    "quick": (
                        {"n": 6, "u": 0.01, "theta": 1.001},
                        {"n": 9, "u": 0.05, "theta": 1.002},
                    ),
                    "full": (
                        {"n": 6, "u": 0.01, "theta": 1.001},
                        {"n": 9, "u": 0.05, "theta": 1.002},
                        {"n": 12, "u": 0.01, "theta": 1.0005},
                        {"n": 16, "u": 0.1, "theta": 1.005},
                    ),
                },
            ),
        ),
        measurements={
            "quick": MeasurementSpec(pulses=15, warmup=5),
            "full": MeasurementSpec(pulses=30, warmup=5),
        },
    )


def e4_table(run: CampaignRun) -> Table:
    """Assemble the E4 table from campaign trial records."""
    table = Table(
        "E4 — CPS skew vs bound (Theorem 17 / Corollary 4)",
        [
            "n",
            "f",
            "u",
            "theta",
            "adversary",
            "max skew",
            "steady skew",
            "bound S",
            "within",
            "live",
        ],
    )
    for record in run.records:
        case = record.case
        m = record.metrics
        table.add_row(
            case["n"],
            m.get("f", max_faults(case["n"])),
            case["u"],
            case["theta"],
            case["adversary"],
            m.get("max_skew", float("nan")),
            m.get("steady_skew", float("nan")),
            m.get("bound_S", float("nan")),
            m.get("within", False),
            m.get("live", False),
        )
    table.add_note(
        "f = ceil(n/2)-1 everywhere — beyond the ceil(n/3)-1 barrier of "
        "the signature-free setting."
    )
    return table


def e4_cps_skew(scale: str = "quick") -> Table:
    """Measured worst-case skew against the proven bound S."""
    return e4_table(execute_campaign(e4_campaign(), scale=scale))


# ======================================================================
# E5 — resilience range: CPS vs Lynch-Welch across f
# ======================================================================


_E5_N = 9


def e5_campaign() -> CampaignSpec:
    """The E5 grid: fault count crossed with {CPS, Lynch-Welch}.

    The ``stress`` tier additionally crosses the grid with registry-named
    delay policies — the same resilience question asked under an eclipse
    and a flickering partition instead of only the static timing split.
    """
    f_axis = tuple(range(max_faults(_E5_N) + 1))
    algorithms = ("CPS", "Lynch-Welch")
    return CampaignSpec(
        name="E5",
        description="Resilience range (CPS vs Lynch-Welch)",
        scenarios=(
            ScenarioSpec(
                builder="cps-vs-lw-resilience",
                base={
                    "n": _E5_N,
                    "theta": 1.001,
                    "d": 1.0,
                    "u": 0.02,
                    "seed": 5,
                },
                axes={
                    "*": {"f": f_axis, "algorithm": algorithms},
                    "stress": {
                        "f": f_axis,
                        "algorithm": algorithms,
                        "delay": (
                            "skewing",
                            "eclipse",
                            "flicker-partition",
                        ),
                    },
                },
            ),
        ),
        measurements={
            "quick": MeasurementSpec(pulses=30, warmup=8),
            "full": MeasurementSpec(pulses=60, warmup=8),
            "stress": MeasurementSpec(pulses=40, warmup=8),
        },
    )


def e5_table(run: CampaignRun) -> Table:
    """Assemble the E5 table from campaign trial records.

    Stress-tier records carry a registry-named ``delay`` case key; the
    extra column appears only then, so quick/full tables stay
    byte-identical to the pre-registry output.
    """
    with_delay = any("delay" in record.case for record in run.records)
    table = Table(
        "E5 — Resilience range (CPS vs Lynch-Welch)",
        [
            "f",
            "algorithm",
            *(["delay"] if with_delay else []),
            "tolerated by design",
            "max skew",
            "steady skew",
            "bound",
            "steady within",
        ],
    )
    n = _E5_N
    for record in run.records:
        m = record.metrics
        n = record.case["n"]
        table.add_row(
            record.case["f"],
            record.case["algorithm"],
            *([record.case.get("delay", "skewing")] if with_delay else []),
            m.get("tolerated", False),
            m.get("max_skew", float("inf")),
            m.get("steady_skew", float("inf")),
            m.get("bound", float("nan")),
            m.get("steady_within", False),
        )
    table.add_note(
        f"n={n}: LW tolerates f <= {lw_max_faults(n)}; CPS tolerates "
        f"f <= {max_faults(n)} (Theorem 17).  Beyond its tolerance LW "
        "stops contracting: the timing split pins each group to a "
        "different honest extreme and drift accumulates unchecked."
    )
    return table


def e5_resilience(scale: str = "quick") -> Table:
    """Same timing attack against CPS and LW for f = 0..ceil(n/2)-1."""
    return e5_table(execute_campaign(e5_campaign(), scale=scale))


# ======================================================================
# E6 — introduction comparison table: all four algorithms
# ======================================================================


def e6_campaign() -> CampaignSpec:
    """The E6 grid: system size crossed with all four algorithms."""
    return CampaignSpec(
        name="E6",
        description="Algorithm comparison (introduction / related work)",
        scenarios=(
            ScenarioSpec(
                builder="algorithm-comparison",
                base={**TYPICAL, "seed": 1},
                axes={
                    "quick": {"n": (5, 9), "algorithm": E6_ALGORITHMS},
                    "full": {
                        "n": (5, 9, 13, 17),
                        "algorithm": E6_ALGORITHMS,
                    },
                },
            ),
        ),
        measurements={
            "quick": MeasurementSpec(pulses=10, warmup=3),
            "full": MeasurementSpec(pulses=20, warmup=3),
        },
    )


def e6_table(run: CampaignRun) -> Table:
    """Assemble the E6 table from campaign trial records."""
    table = Table(
        "E6 — Algorithm comparison (introduction / related work)",
        [
            "algorithm",
            "n",
            "f",
            "theory skew",
            "steady skew",
            "skew / d",
        ],
    )
    for record in run.records:
        m = record.metrics
        table.add_row(
            record.case["algorithm"],
            record.case["n"],
            m.get("f", max_faults(record.case["n"])),
            m.get("theory_skew", float("nan")),
            m.get("steady_skew", float("inf")),
            m.get("skew_over_d", float("inf")),
        )
    table.add_note(
        "Typical regime u << d, theta-1 << 1: CPS and LW sit near "
        "u + (theta-1)d, signed relays near d, chain relays grow with f."
    )
    return table


def e6_baselines(scale: str = "quick") -> Table:
    """Skew of CPS vs the three baselines in the typical regime."""
    return e6_table(execute_campaign(e6_campaign(), scale=scale))


# ======================================================================
# E7 — Theorem 5: lower bound construction
# ======================================================================


def e7_lower_bound(scale: str = "quick") -> Table:
    """The three-execution adversary vs CPS and a fixed-period pulser."""
    d = 1.0
    theta = 1.02
    u_tildes = [0.15, 0.45, 0.9] if scale == "quick" else [
        0.05, 0.15, 0.3, 0.45, 0.6, 0.9,
    ]
    table = Table(
        "E7 — Lower bound (Theorem 5)",
        [
            "protocol",
            "u~",
            "max exec skew",
            "bound 2u~/3",
            ">= bound",
            "identity sum",
            "2u~",
            "well-defined",
        ],
    )
    cps_params = derive_parameters(theta, d, 0.0, 3, f=1)

    def protocols():
        yield "CPS (n=3)", lambda _v: CpsNode(cps_params)
        yield "fixed-period", lambda _v: FixedPeriodProtocol(2.0 * d)

    for name, factory in protocols():
        for u_tilde in u_tildes:
            # Run until well past the fast clocks' saturation time
            # 2*u_tilde / (3 (theta-1)); periods are ~2d.
            saturation = 2.0 * u_tilde / (3.0 * (theta - 1.0))
            pulses = int(math.ceil(saturation / (1.5 * d))) + 6
            result = run_lower_bound(
                factory, theta, d, u_tilde, max_pulses=pulses
            )
            saturated = result.saturated_pulse_indices()
            index = saturated[-1] if saturated else (
                result.common_pulse_count() - 1
            )
            measured = result.max_skew_at(index)
            identity = result.theorem_identity(index)
            table.add_row(
                name,
                u_tilde,
                measured,
                theory.lower_bound_skew(u_tilde),
                measured >= theory.lower_bound_skew(u_tilde) - 1e-9,
                identity,
                2.0 * u_tilde,
                True,  # run_lower_bound(check=True) raised otherwise
            )
    table.add_note(
        "CPS derived with u=0: its claimed S is "
        f"{cps_params.S:.4f} — the adversary exceeds it whenever "
        "2u~/3 > S, i.e. the skew is governed by u~, not u."
    )
    return table


# ======================================================================
# E8 — skew degradation when faulty links undercut d - u
# ======================================================================


def e8_utilde_degradation(scale: str = "quick") -> Table:
    """CPS under the rushing-echo attack for growing u_tilde / u."""
    n = 6
    theta, d, u = 1.0005, 1.0, 0.01
    multipliers = [1, 4, 16] if scale == "quick" else [1, 2, 4, 8, 16, 32]
    pulses = 12 if scale == "quick" else 25
    params = derive_parameters(theta, d, u, n)
    faulty = list(range(n - params.f, n))
    table = Table(
        "E8 — Skew vs faulty-link uncertainty (Section 1 discussion)",
        [
            "u~/u",
            "u~",
            "measured skew",
            "bound S (for u)",
            "within S",
            "honest-dealer rejections",
        ],
    )
    for multiplier in multipliers:
        u_tilde = min(u * multiplier, d * 0.45)
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=CpsRushingEchoAttack(),
            delay_policy=FastToFaultyDelayPolicy(),
            u_tilde=u_tilde,
            seed=2,
            clock_style="extreme",
        )
        outcome = run_pulse_trial(simulation, pulses)
        rejections = 0
        if outcome.result is not None:
            for record in outcome.result.trace.protocol_events("cps-round"):
                summary = record.details
                rejections += sum(
                    1
                    for w, estimate in summary.estimates.items()
                    if estimate is BOT and w not in set(faulty)
                )
        measured = (
            outcome.report.max_skew if outcome.report else float("inf")
        )
        table.add_row(
            multiplier,
            u_tilde,
            measured,
            params.S,
            measured <= params.S + 1e-9,
            rejections,
        )
    table.add_note(
        "u~ = u: Lemma 10 holds, zero honest rejections, skew <= S.  "
        "u~ > u: rushed echoes force honest-dealer rejections and the "
        "skew bound no longer holds (Theorem 5 explains why it cannot)."
    )
    return table


# ======================================================================
# E9 — Theorem 17 period bounds
# ======================================================================


def e9_periods(scale: str = "quick") -> Table:
    """Measured P_min / P_max against the Theorem 17 bounds."""
    systems = (
        [(6, 0.01, 1.001)]
        if scale == "quick"
        else [(6, 0.01, 1.001), (9, 0.05, 1.002), (12, 0.1, 1.005)]
    )
    pulses = 15 if scale == "quick" else 30
    table = Table(
        "E9 — Period bounds (Theorem 17)",
        [
            "n",
            "adversary",
            "P_min measured",
            "P_min bound",
            "P_max measured",
            "P_max bound",
            "within",
        ],
    )
    for n, u, theta in systems:
        params = derive_parameters(theta, 1.0, u, n)
        faulty = list(range(n - params.f, n))
        for name, make in _cps_adversaries(params).items():
            simulation = assemble_cps_simulation(
                params,
                faulty=faulty,
                behavior=make(),
                delay_policy=RandomDelayPolicy(seed=13),
                seed=13,
                clock_style="extreme",
            )
            outcome = run_pulse_trial(simulation, pulses)
            if outcome.report is None:
                table.add_row(n, name, *(float("nan"),) * 4, False)
                continue
            report = outcome.report
            within = (
                report.min_period >= params.p_min_bound - 1e-9
                and report.max_period <= params.p_max_bound + 1e-9
            )
            table.add_row(
                n,
                name,
                report.min_period,
                params.p_min_bound,
                report.max_period,
                params.p_max_bound,
                within,
            )
    return table


# ======================================================================
# E10 — Lemma 16 dynamics: convergence from the worst allowed start
# ======================================================================


def e10_convergence(scale: str = "quick") -> Table:
    """Per-pulse skew trajectory from maximal initial offsets."""
    n = 6
    theta, d, u = 1.0005, 1.0, 0.02
    pulses = 12 if scale == "quick" else 25
    params = derive_parameters(theta, d, u, n)
    faulty = list(range(n - params.f, n))
    clocks = [
        HardwareClock.constant_rate(
            1.0 if v % 2 == 0 else theta,
            offset=0.0 if v % 2 == 0 else params.S,
            theta=theta,
        )
        for v in range(n)
    ]
    simulation = assemble_cps_simulation(
        params,
        clocks=clocks,
        faulty=faulty,
        behavior=SilentAdversary(),
        delay_policy=RandomDelayPolicy(seed=4),
        seed=4,
    )
    outcome = run_pulse_trial(simulation, pulses, warmup=0)
    assert outcome.result is not None and outcome.live, outcome.error
    trajectory = metrics.skew_trajectory(outcome.result.honest_pulses())
    table = Table(
        "E10 — Convergence trajectory (Lemma 16)",
        ["pulse", "skew", "bound S", "halving ref", "floor 2*delta"],
    )
    reference = trajectory[0]
    floor = 2.0 * params.delta
    for index, value in enumerate(trajectory):
        table.add_row(
            index + 1,
            value,
            params.S,
            max(reference / (2.0 ** index), floor),
            floor,
        )
    table.add_note(
        "Lemma 16: skew' <= skew/2 + delta (+ drift terms); the trajectory "
        "contracts geometrically to an O(delta) floor."
    )
    return table


# ======================================================================
# Ablations
# ======================================================================


def a1_no_echo_rejection(scale: str = "quick") -> Table:
    """Disable Figure 2's echo-rejection rule; let dealers stagger sends.

    The rule's purpose is timed crusader consistency (Lemma 13): two
    honest nodes accepting the same dealer must compute estimates that
    agree up to ``delta``.  A faulty dealer staggering its sends violates
    that by the stagger amount — unless the rushed echo of the early copy
    gets it rejected.
    """
    n = 6
    theta, d, u = 1.0005, 1.0, 0.01
    pulses = 10
    params = derive_parameters(theta, d, u, n)
    faulty = list(range(n - params.f, n))
    stagger = 1.5 * params.delta  # beyond what Lemma 13 permits
    table = Table(
        "A1 — Echo rejection ablation",
        [
            "echo rejection",
            "stagger",
            "faulty accepted",
            "max consistency err",
            "delta bound",
            "within delta",
        ],
    )
    for enabled in (True, False):
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=CpsMimicDealerAttack(
                params, _cps_group_a(n), stagger=stagger
            ),
            seed=6,
            echo_rejection=enabled,
        )
        outcome = run_pulse_trial(simulation, pulses)
        assert outcome.result is not None and outcome.live, outcome.error
        honest_pulses = outcome.result.honest_pulses()
        honest = sorted(honest_pulses)
        accepted = 0
        worst = 0.0
        for r in range(pulses):
            for x in faulty:
                per_node = {}
                for v in honest:
                    summaries = simulation.protocol(v).summaries
                    if r < len(summaries):
                        estimate = summaries[r].estimates.get(x)
                        if estimate is not None and estimate is not BOT:
                            per_node[v] = estimate
                accepted += len(per_node)
                for v in per_node:
                    for w in per_node:
                        if v == w:
                            continue
                        gap = abs(
                            per_node[v]
                            - per_node[w]
                            - (honest_pulses[w][r] - honest_pulses[v][r])
                        )
                        worst = max(worst, gap)
        table.add_row(
            enabled,
            stagger,
            accepted,
            worst,
            params.delta,
            worst <= params.delta + 1e-9,
        )
    table.add_note(
        "With the rule the staggered dealer is either rejected or its "
        "estimates agree within delta; without it, honest nodes accept "
        "estimates a full stagger apart — the Lemma 13 invariant breaks "
        "and with it the Theorem 17 analysis."
    )
    return table


def a2_discard_rule(scale: str = "quick") -> Table:
    """Replace the f-b discard with the signature-free fixed-f discard."""
    n = 6
    theta, d, u = 1.0005, 1.0, 0.02
    pulses = 10
    params = derive_parameters(theta, d, u, n)
    faulty = list(range(n - params.f, n))
    table = Table(
        "A2 — Discard rule ablation (f-b vs f)",
        ["rule", "f", "outcome", "measured skew", "bound S"],
    )
    for rule in ("f-b", "f"):
        simulation = assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=SilentAdversary(),
            seed=8,
            discard_rule=rule,
        )
        outcome = run_pulse_trial(simulation, pulses)
        if outcome.report is None:
            table.add_row(
                rule, params.f, outcome.error, float("nan"), params.S
            )
        else:
            table.add_row(
                rule,
                params.f,
                "ok",
                outcome.report.max_skew,
                params.S,
            )
    table.add_note(
        "At f = ceil(n/2)-1 with silent faulty nodes, discarding a fixed f "
        "per side leaves no values at all: the ⊥-aware rule is what makes "
        "optimal resilience possible."
    )
    return table


def a3_send_offset(scale: str = "quick") -> Table:
    """Drop the theta*S dealer send offset; honest broadcasts get missed."""
    n = 6
    theta, d, u = 1.04, 1.0, 0.45  # regime with S > d - u
    pulses = 8
    params = derive_parameters(theta, d, u, n)
    table = Table(
        "A3 — Dealer send offset ablation",
        [
            "send offset",
            "S",
            "d-u",
            "honest ⊥ outputs",
            "measured skew",
            "within S",
        ],
    )
    for offset in (params.dealer_send_offset, 0.0):
        simulation = assemble_cps_simulation(
            params,
            faulty=[],
            seed=9,
            clock_style="extreme",
            dealer_send_offset=offset,
        )
        outcome = run_pulse_trial(simulation, pulses)
        bots = 0
        if outcome.result is not None:
            for record in outcome.result.trace.protocol_events("cps-round"):
                bots += sum(
                    1
                    for estimate in record.details.estimates.values()
                    if estimate is BOT
                )
        measured = (
            outcome.report.max_skew if outcome.report else float("inf")
        )
        table.add_row(
            offset,
            params.S,
            params.d - params.u,
            bots,
            measured,
            measured <= params.S + 1e-9,
        )
    table.add_note(
        "With S > d-u, a dealer sending at its pulse reaches fast nodes "
        "before slow nodes have pulsed; the theta*S wait is what makes "
        "Lemma 10 hold."
    )
    return table


# ======================================================================
# STRESS — registry-driven scenario campaign
# ======================================================================


def stress_campaign() -> CampaignSpec:
    """Scenario-registry cross products: adversary x delay x drift, plus
    sparse topologies through the Appendix A overlay.

    Every axis value is a scenario-registry key (validated at plan
    time), so extending the stress surface is a registry entry plus one
    tuple element here — no builder code changes.
    """
    return CampaignSpec(
        name="STRESS",
        description=(
            "Registry-driven stress scenarios "
            "(adversary x delay x drift x topology)"
        ),
        seed=17,
        scenarios=(
            ScenarioSpec(
                builder="cps-stress",
                base={"d": 1.0, "u": 0.02, "theta": 1.001},
                axes={
                    "quick": {
                        "n": (6,),
                        "adversary": (
                            "coordinated-offset",
                            "mimic-split",
                        ),
                        "delay": ("eclipse", "skewing"),
                        "drift": ("mixed",),
                    },
                    "full": {
                        "n": (6, 9),
                        "adversary": (
                            "silent",
                            "mimic-split",
                            "equivocating-subset",
                            "coordinated-offset",
                            "replay",
                        ),
                        "delay": (
                            "skewing",
                            "eclipse",
                            "flicker-partition",
                            "random",
                        ),
                        "drift": ("extreme", "mixed", "staggered"),
                    },
                    "stress": {
                        "n": (9, 16, 25),
                        "adversary": (
                            "silent",
                            "mimic-split",
                            "equivocating-subset",
                            "coordinated-offset",
                            "replay",
                            "rushing-echo",
                        ),
                        "delay": (
                            "skewing",
                            "eclipse",
                            "flicker-partition",
                            "biased-partition",
                            "random",
                        ),
                        "drift": ("extreme", "mixed", "staggered"),
                    },
                },
            ),
            ScenarioSpec(
                builder="cps-stress",
                base={
                    "d": 1.0,
                    "u": 0.02,
                    "theta": 1.001,
                    "adversary": "silent",
                    "delay": "random",
                    "drift": "random",
                },
                axes={
                    "quick": {
                        "n": (8,),
                        "topology": ("circulant", "random-regular"),
                    },
                    "full": {
                        "n": (8, 12),
                        "topology": (
                            "complete",
                            "circulant",
                            "random-regular",
                            "small-world",
                        ),
                    },
                    "stress": {
                        "n": (12, 16),
                        "topology": (
                            "complete",
                            "circulant",
                            "random-regular",
                            "small-world",
                        ),
                    },
                },
            ),
        ),
        measurements={
            "quick": MeasurementSpec(pulses=8, warmup=3),
            "full": MeasurementSpec(pulses=15, warmup=5),
            "stress": MeasurementSpec(pulses=25, warmup=5),
        },
    )


def stress_table(run: CampaignRun) -> Table:
    """Assemble the STRESS table from campaign trial records."""
    table = Table(
        "STRESS — registry-driven scenarios "
        "(adversary x delay x drift x topology)",
        [
            "n",
            "f",
            "topology",
            "adversary",
            "delay",
            "drift",
            "max skew",
            "steady skew",
            "bound S",
            "within",
            "live",
        ],
    )
    for record in run.records:
        case = record.case
        m = record.metrics
        table.add_row(
            case["n"],
            m.get("f", float("nan")),
            case.get("topology", "-"),
            case.get("adversary", "silent"),
            case.get("delay", "maximum"),
            case.get("drift", "random"),
            m.get("max_skew", float("inf")),
            m.get("steady_skew", float("inf")),
            m.get("bound_S", float("nan")),
            m.get("within", False),
            m.get("live", False),
        )
    table.add_note(
        "Every scenario axis value is a registry key (repro scenarios "
        "list); topology rows run CPS on the Appendix A overlay and "
        "compare against the overlay-derived bound."
    )
    return table


def stress_scenarios(scale: str = "quick") -> Table:
    """Registry-named adversary/delay/drift/topology cross products."""
    return stress_table(execute_campaign(stress_campaign(), scale=scale))


# ======================================================================
# CHURN-STRESS — fault schedules over the registry scenarios
# ======================================================================


def churn_campaign() -> CampaignSpec:
    """Every churn profile against CPS, crossed with drift (and, at
    full scale, size and delay) axes.

    Campaign-native like STRESS: each ``churn`` axis value names a
    registry profile (``repro scenarios list --kind churn``), the fault
    schedules spend the resilience budget on crashes/joins/handoffs,
    and rejoining nodes restart behind the listen-then-join wrapper.
    """
    profiles = (
        "single-crash",
        "rolling-crashes",
        "crash-recover-wave",
        "late-join-cohort",
        "flapping-node",
        "adversary-handoff",
    )
    return CampaignSpec(
        name="CHURN-STRESS",
        description=(
            "Fault-schedule stress: crash / recovery / late-join / "
            "adversary-handoff dynamics"
        ),
        seed=29,
        scenarios=(
            ScenarioSpec(
                builder="cps-churn",
                base={"d": 1.0, "u": 0.02, "theta": 1.001},
                axes={
                    "quick": {
                        "n": (6,),
                        "churn": profiles,
                        "drift": ("extreme",),
                    },
                    "full": {
                        "n": (6, 9),
                        "churn": profiles,
                        "drift": ("extreme", "mixed"),
                        "delay": ("maximum", "random"),
                    },
                },
            ),
        ),
        measurements={
            # Rejoiners must catch up to the pulse quota after their
            # outage, so churn runs use a higher budget than STRESS.
            "quick": MeasurementSpec(pulses=14, warmup=3),
            "full": MeasurementSpec(pulses=24, warmup=4),
        },
    )


def churn_table(run: CampaignRun) -> Table:
    """Assemble the CHURN-STRESS table from campaign trial records."""
    table = Table(
        "CHURN-STRESS — fault schedules "
        "(crash / recover / late-join / handoff)",
        [
            "n",
            "f",
            "churn",
            "drift",
            "delay",
            "disruptions",
            "resynced",
            "resync pulses",
            "envelope",
            "cohort skew",
            "bound S",
            "cohort within",
        ],
    )
    for record in run.records:
        case = record.case
        m = record.metrics
        table.add_row(
            case["n"],
            m.get("f", float("nan")),
            case.get("churn", "-"),
            case.get("drift", "random"),
            case.get("delay", "maximum"),
            m.get("disruptions", 0),
            m.get("resynced", False),
            m.get("resync_pulses", 0),
            m.get("envelope", float("nan")),
            m.get("cohort_skew", float("inf")),
            m.get("bound_S", float("nan")),
            m.get("cohort_within", False),
        )
    table.add_note(
        "Crashed, dormant, and corrupted nodes all spend the f budget; "
        "'resync pulses' is the worst pulses-to-resync over the "
        "schedule's recoveries/joins (time-aligned against the stable "
        "cohort), 'cohort skew' the index-aligned Definition 3 skew of "
        "the never-disturbed nodes."
    )
    return table


def churn_scenarios(scale: str = "quick") -> Table:
    """Fault-schedule dynamics: crashes, recoveries, joins, handoffs."""
    return churn_table(execute_campaign(churn_campaign(), scale=scale))


# ======================================================================
# FUZZ — sharded property-based search for bound violations
# ======================================================================


def fuzz_campaign() -> CampaignSpec:
    """Sharded fuzz budgets over the strategy spaces of
    :mod:`repro.fuzz`.

    Each trial is one :func:`repro.fuzz.search` run; the ``shard`` axis
    exists solely to vary the derived per-trial seed, so ``--workers``
    fans independent search shards across the pool.  The valid spaces
    must report zero counterexamples; the ``known-bad`` shards (full
    scale) must each find one — they regression-test the oracle itself.
    """
    return CampaignSpec(
        name="FUZZ",
        description=(
            "Property-based fuzz shards: theorem-bound counterexample "
            "search over valid and known-bad strategy spaces"
        ),
        seed=43,
        scenarios=(
            ScenarioSpec(
                builder="fuzz-probe",
                base={},
                axes={
                    "quick": {
                        "strategy": ("valid",),
                        "budget": (25,),
                        "shard": (0, 1),
                    },
                    "full": {
                        "strategy": ("cps", "churn"),
                        "budget": (75,),
                        "shard": (0, 1, 2, 3),
                    },
                },
            ),
            ScenarioSpec(
                builder="fuzz-probe",
                base={"strategy": "known-bad", "budget": 20},
                axes={
                    "quick": {"shard": (0,)},
                    "full": {"shard": (0, 1)},
                },
            ),
        ),
        measurements={
            # The search loop owns its pulse counts (they are part of
            # each synthesized case); the tier only sets trace level.
            "quick": MeasurementSpec(pulses=0, warmup=0),
            "full": MeasurementSpec(pulses=0, warmup=0),
        },
    )


def fuzz_table(run: CampaignRun) -> Table:
    """Assemble the FUZZ table from campaign trial records."""
    table = Table(
        "FUZZ — property-based counterexample search "
        "(sharded strategy spaces)",
        [
            "strategy",
            "shard",
            "budget",
            "executions",
            "found",
            "ok",
            "counterexample",
            "interesting",
        ],
    )
    for record in run.records:
        case = record.case
        m = record.metrics
        table.add_row(
            case.get("strategy", "valid"),
            case.get("shard", 0),
            case.get("budget", 0),
            m.get("executions", 0),
            m.get("found", False),
            m.get("ok", False),
            m.get("counterexample_id", "") or "-",
            m.get("interesting", 0),
        )
    table.add_note(
        "'ok' means the shard ended the way its space predicts: valid "
        "spaces find nothing, the known-bad space (E8's u_tilde >> u "
        "regime) always yields a shrunk counterexample; reproduce any "
        "row with repro fuzz run --strategy S --budget B --seed "
        "<derived>."
    )
    return table


def fuzz_scenarios(scale: str = "quick") -> Table:
    """Sharded property-based search over the fuzz strategy spaces."""
    return fuzz_table(execute_campaign(fuzz_campaign(), scale=scale))


# ======================================================================
# E9-SCALE — vectorized-backend scale study to n = 10,000
# ======================================================================


def e9_scale_campaign() -> CampaignSpec:
    """Skew vs the Theorem 17 bound at n = 100 / 1,000 / 10,000 on the
    vectorized backend (silent adversary, maximum delays, extreme
    drift).

    The event engine dispatches every message individually — at
    n = 10,000 a single pulse round models ~10^8 deliveries, far past
    its reach — so this is the one campaign whose measurement pins
    ``backend="vectorized"``: the round-batched numpy engine
    (:mod:`repro.sim.vectorized`) computes the same protocol semantics
    in a handful of block operations per round, and the differential
    suite pins it verdict- and pulse-identical to the event engine at
    small n.  The u = 0.01 base keeps theta = 1.001 feasible while the
    extreme drift profile exercises the piecewise clock fast paths.
    """
    return CampaignSpec(
        name="E9-SCALE",
        description=(
            "Vectorized-backend scale study: skew vs bound at "
            "n = 100 / 1,000 / 10,000"
        ),
        seed=29,
        scenarios=(
            ScenarioSpec(
                builder="cps-stress",
                base={
                    "theta": 1.001,
                    "d": 1.0,
                    "u": 0.01,
                    "adversary": "silent",
                    "delay": "maximum",
                    "drift": "extreme",
                },
                axes={
                    "quick": {"n": (100, 1000, 10000)},
                    "full": {"n": (100, 1000, 10000)},
                    "stress": {"n": (1000, 10000)},
                },
            ),
        ),
        measurements={
            "quick": MeasurementSpec(
                pulses=5, warmup=2, backend="vectorized"
            ),
            "full": MeasurementSpec(
                pulses=8, warmup=2, backend="vectorized"
            ),
            "stress": MeasurementSpec(
                pulses=12, warmup=3, backend="vectorized"
            ),
        },
    )


def e9_scale_table(run: CampaignRun) -> Table:
    """Assemble the E9-SCALE table from campaign trial records."""
    table = Table(
        "E9-SCALE — vectorized backend at n = 100 / 1,000 / 10,000 "
        "(silent adversary, maximum delays, extreme drift)",
        [
            "n",
            "f",
            "max skew",
            "steady skew",
            "bound S",
            "within",
            "live",
            "modeled events",
        ],
    )
    for record in run.records:
        m = record.metrics
        table.add_row(
            record.case["n"],
            m.get("f", float("nan")),
            m.get("max_skew", float("inf")),
            m.get("steady_skew", float("inf")),
            m.get("bound_S", float("nan")),
            m.get("within", False),
            m.get("live", False),
            m.get("events", 0),
        )
    table.add_note(
        "Runs on the round-batched numpy backend "
        "(repro.sim.vectorized; see docs/VECTORIZED.md); 'modeled "
        "events' counts the deliveries the event engine would have "
        "dispatched, so events/second is comparable across backends. "
        "The differential suite (tests/test_vectorized.py) pins both "
        "backends verdict-identical at small n."
    )
    return table


def e9_scale_study(scale: str = "quick") -> Table:
    """Vectorized scale study: the bound holds out to n = 10,000."""
    return e9_scale_table(
        execute_campaign(e9_scale_campaign(), scale=scale)
    )


def ablation_matrix(scale: str = "quick") -> Table:
    """Per-component ablation importance (see :mod:`repro.ablation`).

    Executes the baseline-plus-one-off challenge matrix and renders the
    monitor-flip table; ``repro ablate run`` is the full surface
    (stores, pools, adaptive replication, the committed JSON artifact).
    """
    spec = AblationSpec()
    run = execute_campaign(ablation_campaign_spec(spec), scale=scale)
    return render_ablation_table(ablation_report(spec, run))


# ======================================================================
# Registry
# ======================================================================

EXPERIMENTS: Dict[str, Callable[..., Table]] = {
    "E1": e1_apa_convergence,
    "E2": e2_crusader,
    "E3": e3_tcb_accuracy,
    "E4": e4_cps_skew,
    "E5": e5_resilience,
    "E6": e6_baselines,
    "E7": e7_lower_bound,
    "E8": e8_utilde_degradation,
    "E9": e9_periods,
    "E10": e10_convergence,
    "A1": a1_no_echo_rejection,
    "A2": a2_discard_rule,
    "A3": a3_send_offset,
    "E9-SCALE": e9_scale_study,
    "STRESS": stress_scenarios,
    "CHURN-STRESS": churn_scenarios,
    "FUZZ": fuzz_scenarios,
    "ABLATION": ablation_matrix,
}


def run_experiment(name: str, scale: str = "quick") -> Table:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        function = EXPERIMENTS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return function(scale=scale)


# E1/E4/E5/E6 are ported to the campaign engine: their grids are
# declarative specs, so ``repro campaign run E4 --workers 8`` executes
# the same trials in parallel (with optional result-store caching) and
# renders the identical table.  STRESS is campaign-native: its grid is
# built entirely from scenario-registry keys.
CAMPAIGN_PORTS = tuple(
    register_campaign(
        CampaignDefinition(
            name=spec_factory().name,
            spec=spec_factory,
            tabulate=table_factory,
            description=spec_factory().description,
        )
    )
    for spec_factory, table_factory in (
        (e1_campaign, e1_table),
        (e4_campaign, e4_table),
        (e5_campaign, e5_table),
        (e6_campaign, e6_table),
        (stress_campaign, stress_table),
        (churn_campaign, churn_table),
        (fuzz_campaign, fuzz_table),
        (e9_scale_campaign, e9_scale_table),
        (ablation_campaign_spec, ablation_table),
    )
)
