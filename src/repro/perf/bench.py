"""Benchmark results: the ``BENCH_<name>.json`` interchange format.

A :class:`BenchResult` is one named perf case's measurement — throughput,
wall time, peak memory, machine calibration — serialized to a
``BENCH_<name>.json`` file.  CI uploads these as workflow artifacts and
:mod:`repro.perf.baseline` compares them against the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.perf.probe import ProbeReading

#: File-name pattern for serialized results.
BENCH_PREFIX = "BENCH_"


@dataclass(frozen=True)
class BenchResult:
    """One perf case's measurement, JSON round-trippable."""

    name: str
    events: int
    wall_seconds: float
    events_per_sec: float
    peak_rss_kib: int
    calibration: float
    created: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def normalized_throughput(self) -> Optional[float]:
        """events/sec divided by the machine calibration (portable)."""
        if self.calibration <= 0:
            return None
        return self.events_per_sec / self.calibration

    @classmethod
    def from_reading(cls, name: str, reading: ProbeReading) -> "BenchResult":
        return cls(
            name=name,
            events=reading.events,
            wall_seconds=reading.wall_seconds,
            events_per_sec=reading.events_per_sec,
            peak_rss_kib=reading.peak_rss_kib,
            calibration=reading.calibration,
            created=time.strftime("%Y-%m-%dT%H:%M:%S"),
            meta=dict(reading.meta),
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "peak_rss_kib": self.peak_rss_kib,
            "calibration": self.calibration,
            "created": self.created,
            "meta": self.meta,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "BenchResult":
        return cls(
            name=payload["name"],
            events=int(payload.get("events", 0)),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            events_per_sec=float(payload.get("events_per_sec", 0.0)),
            peak_rss_kib=int(payload.get("peak_rss_kib", 0)),
            calibration=float(payload.get("calibration", 0.0)),
            created=payload.get("created", ""),
            meta=payload.get("meta") or {},
        )

    # ------------------------------------------------------------------
    # Files

    def file_name(self) -> str:
        return f"{BENCH_PREFIX}{self.name}.json"

    def write(self, directory: str) -> str:
        """Write ``BENCH_<name>.json`` into ``directory``; return the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, self.file_name())
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "BenchResult":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json_dict(json.load(handle))


def load_results(directory: str) -> Dict[str, BenchResult]:
    """All ``BENCH_*.json`` results in ``directory``, keyed by case name."""
    results: Dict[str, BenchResult] = {}
    if not os.path.isdir(directory):
        return results
    for entry in sorted(os.listdir(directory)):
        if entry.startswith(BENCH_PREFIX) and entry.endswith(".json"):
            result = BenchResult.load(os.path.join(directory, entry))
            results[result.name] = result
    return results
