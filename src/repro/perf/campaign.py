"""Per-case throughput accounting for campaign runs (the ``--perf`` flag).

Pulse-trial builders record the simulator events each trial processed
(the ``events`` metric); combined with the executor's per-trial wall
time this yields events/sec per case without re-running anything.
:func:`campaign_throughput` aggregates a
:class:`~repro.campaigns.executor.CampaignRun` into a JSON-ready summary
and ``repro campaign run --perf`` persists it next to the trial records
in the result store (``<spec_key>.perf.json``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.campaigns.executor import CampaignRun
from repro.perf.probe import peak_rss_kib


def trial_throughput(record: Any) -> Optional[Dict[str, Any]]:
    """Throughput of one executed trial, or None when unmeasurable.

    Cached records replay in microseconds and carry their *original*
    duration, so they are excluded rather than skewing the numbers.
    """
    events = record.metrics.get("events") if record.ok else None
    if record.cached or not events or record.duration <= 0:
        return None
    return {
        "case_key": record.case_key,
        "builder": record.builder,
        "case": dict(record.case),
        "events": events,
        "duration": record.duration,
        "events_per_sec": events / record.duration,
    }


def campaign_throughput(run: CampaignRun) -> Dict[str, Any]:
    """Aggregate per-case and total throughput of a campaign run."""
    cases = []
    for record in run.records:
        throughput = trial_throughput(record)
        if throughput is not None:
            cases.append(throughput)
    total_events = sum(case["events"] for case in cases)
    total_duration = sum(case["duration"] for case in cases)
    return {
        "campaign": run.spec.name,
        "scale": run.scale,
        "trials": len(run.records),
        "measured": len(cases),
        "cached": run.cached,
        "failed": run.failed,
        "events": total_events,
        "duration": total_duration,
        "events_per_sec": (
            total_events / total_duration if total_duration > 0 else 0.0
        ),
        "peak_rss_kib": peak_rss_kib(),
        "cases": cases,
    }
