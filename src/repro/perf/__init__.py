"""Benchmark tracking: probes, ``BENCH_*.json`` results, and baselines.

The perf subsystem keeps the simulator's speed measurable and gated:

* :mod:`repro.perf.probe` — :class:`PerfProbe` captures wall time,
  events/sec, peak RSS, and a machine calibration around any workload;
* :mod:`repro.perf.cases` — the registered perf cases (real simulation
  workloads) that ``repro perf run`` measures;
* :mod:`repro.perf.bench` — :class:`BenchResult` serialization to
  ``BENCH_<name>.json`` (uploaded as CI artifacts);
* :mod:`repro.perf.baseline` — the committed baseline store and
  :func:`compare`, whose regression verdicts are the CI perf gate;
* :mod:`repro.perf.campaign` — per-case throughput aggregation behind
  ``repro campaign run --perf``.

See ``docs/PERFORMANCE.md`` for the workflow (running, reading, and
updating baselines).
"""

from repro.perf.baseline import (
    Baseline,
    CaseVerdict,
    Comparison,
    compare,
    grade,
    load_baseline,
    write_baseline,
)
from repro.perf.bench import BenchResult, load_results
from repro.perf.campaign import campaign_throughput, trial_throughput
from repro.perf.cases import (
    PERF_CASES,
    PerfCase,
    available_cases,
    register_case,
    run_case,
    run_cases,
)
from repro.perf.probe import (
    PerfProbe,
    ProbeReading,
    machine_calibration,
    peak_rss_kib,
)

__all__ = [
    "Baseline",
    "BenchResult",
    "CaseVerdict",
    "Comparison",
    "PERF_CASES",
    "PerfCase",
    "PerfProbe",
    "ProbeReading",
    "available_cases",
    "campaign_throughput",
    "compare",
    "grade",
    "load_baseline",
    "load_results",
    "machine_calibration",
    "peak_rss_kib",
    "register_case",
    "run_case",
    "run_cases",
    "trial_throughput",
    "write_baseline",
]
