"""Baseline store and regression verdicts for perf tracking.

A *baseline* is a committed JSON file mapping perf-case names to the
:class:`~repro.perf.bench.BenchResult` recorded when the baseline was
last updated.  :func:`compare` grades a directory of freshly measured
``BENCH_*.json`` files against it:

* the comparison metric is the machine-**normalized** throughput
  (``events_per_sec / calibration``) whenever both sides carry a
  calibration, falling back to raw events/sec otherwise — so a baseline
  recorded on a laptop still gates a CI runner;
* ``ratio = current / baseline``; ``ratio >= 1`` is an ``improvement``,
  a drop within ``tolerance`` is ``within-tolerance``, a larger drop is
  a ``regression``;
* a case present in the baseline but not measured is ``missing`` (and
  fails); a measured case absent from the baseline is ``new`` (and
  passes — adding perf cases must not require lockstep baseline edits).

``repro perf compare`` exits non-zero iff :attr:`Comparison.ok` is
False, which is the CI gate.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.perf.bench import BenchResult

#: Verdict statuses in severity order (worst first).
STATUSES = ("regression", "missing", "new", "within-tolerance", "improvement")


@dataclass(frozen=True)
class CaseVerdict:
    """How one perf case fared against its baseline."""

    name: str
    status: str  # one of STATUSES
    baseline_value: Optional[float] = None
    current_value: Optional[float] = None
    ratio: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status not in ("regression", "missing")

    def describe(self) -> str:
        if self.ratio is not None:
            return (
                f"{self.name}: {self.status} "
                f"(ratio {self.ratio:.3f}, baseline "
                f"{self.baseline_value:.4g}, current "
                f"{self.current_value:.4g})"
            )
        return f"{self.name}: {self.status}"


@dataclass(frozen=True)
class Comparison:
    """The full verdict set of one baseline comparison."""

    verdicts: List[CaseVerdict]
    tolerance: float

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def by_status(self) -> Dict[str, List[CaseVerdict]]:
        grouped: Dict[str, List[CaseVerdict]] = {}
        for verdict in self.verdicts:
            grouped.setdefault(verdict.status, []).append(verdict)
        return grouped

    def summary(self) -> str:
        counts = {
            status: len(verdicts)
            for status, verdicts in self.by_status().items()
        }
        parts = ", ".join(
            f"{counts[status]} {status}"
            for status in STATUSES
            if status in counts
        )
        return (
            f"{'PASS' if self.ok else 'FAIL'} "
            f"(tolerance {self.tolerance:.0%}): {parts or 'no cases'}"
        )


def _metric(result: BenchResult, use_normalized: bool) -> float:
    if use_normalized:
        normalized = result.normalized_throughput
        assert normalized is not None
        return normalized
    return result.events_per_sec


def grade(
    baseline: BenchResult, current: BenchResult, tolerance: float
) -> CaseVerdict:
    """Grade one case: current throughput against its baseline."""
    use_normalized = (
        baseline.normalized_throughput is not None
        and current.normalized_throughput is not None
    )
    baseline_value = _metric(baseline, use_normalized)
    current_value = _metric(current, use_normalized)
    ratio = (
        current_value / baseline_value if baseline_value > 0 else float("inf")
    )
    if ratio >= 1.0:
        status = "improvement"
    elif ratio >= 1.0 - tolerance:
        status = "within-tolerance"
    else:
        status = "regression"
    return CaseVerdict(
        name=current.name,
        status=status,
        baseline_value=baseline_value,
        current_value=current_value,
        ratio=ratio,
    )


def compare(
    baseline: Mapping[str, BenchResult],
    current: Mapping[str, BenchResult],
    tolerance: float = 0.35,
) -> Comparison:
    """Grade every case of ``current`` against ``baseline``.

    ``tolerance`` is the fractional throughput drop still accepted
    (0.35 = up to 35% slower passes; anything beyond is a regression).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    verdicts: List[CaseVerdict] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            verdicts.append(CaseVerdict(name=name, status="missing"))
        elif name not in baseline:
            verdicts.append(CaseVerdict(name=name, status="new"))
        else:
            verdicts.append(grade(baseline[name], current[name], tolerance))
    return Comparison(verdicts=verdicts, tolerance=tolerance)


# ----------------------------------------------------------------------
# Baseline files


@dataclass(frozen=True)
class Baseline:
    """A committed set of reference measurements plus provenance."""

    cases: Dict[str, BenchResult]
    created: str = ""
    notes: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)


def write_baseline(
    path: str,
    results: Mapping[str, BenchResult],
    notes: str = "",
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Serialize ``results`` as a baseline file at ``path``."""
    payload = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "notes": notes,
        "meta": meta or {},
        "cases": {
            name: result.to_json_dict()
            for name, result in sorted(results.items())
        },
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> Baseline:
    """Load a baseline file written by :func:`write_baseline`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return Baseline(
        cases={
            name: BenchResult.from_json_dict(case)
            for name, case in payload.get("cases", {}).items()
        },
        created=payload.get("created", ""),
        notes=payload.get("notes", ""),
        meta=payload.get("meta") or {},
    )
