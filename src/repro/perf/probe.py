"""Wall-time / throughput / memory capture around arbitrary workloads.

:class:`PerfProbe` is a context manager: enter it, run the workload,
feed it the number of simulator events the workload processed, and read
a :class:`ProbeReading` out.  It captures

* wall time (``time.perf_counter``),
* events/second (the simulator's primary throughput unit),
* peak RSS of the process (``resource.getrusage``; 0 where the
  :mod:`resource` module is unavailable), and
* a *machine calibration* — the throughput of a fixed pure-Python
  spin workload measured in the same process.

The calibration is what makes stored baselines portable: CI runners and
laptops differ by integer factors in raw events/sec, but the *ratio*
``events_per_sec / calibration`` cancels single-core speed, so
:func:`repro.perf.baseline.compare` can gate on it with a tight
tolerance without flaking across machines.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def peak_rss_kib() -> int:
    """Peak resident set size of this process in KiB (0 if unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here.
    """
    if resource is None:  # pragma: no cover
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


def machine_calibration(spins: int = 200_000, repeats: int = 3) -> float:
    """Throughput of a fixed pure-Python workload (operations/second).

    The workload — integer arithmetic, a list append, a dict hit per
    iteration — is a rough stand-in for the simulator inner loop.  The
    best of ``repeats`` timings is returned, which discards warmup and
    scheduler noise.
    """
    best = float("inf")
    table = {0: 0, 1: 1, 2: 2, 3: 3}
    for _ in range(repeats):
        sink = []
        append = sink.append
        start = time.perf_counter()
        accumulator = 0
        for i in range(spins):
            accumulator += table[i & 3] + (i >> 2)
            if not i & 1023:
                append(accumulator)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        del sink
    return spins / best if best > 0 else 0.0


@dataclass(frozen=True)
class ProbeReading:
    """One completed capture: throughput plus its measurement context."""

    wall_seconds: float
    events: int
    events_per_sec: float
    peak_rss_kib: int
    calibration: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def normalized_throughput(self) -> Optional[float]:
        """Machine-independent throughput, or None without calibration."""
        if self.calibration <= 0:
            return None
        return self.events_per_sec / self.calibration


class PerfProbe:
    """Capture wall time, events/sec, and peak RSS around a workload.

    Usage::

        probe = PerfProbe()
        with probe:
            result = simulation.run(max_pulses=30)
            probe.add_events(result.events_processed)
        reading = probe.reading()

    Repeated ``with`` blocks accumulate (wall time and events sum), so a
    probe can wrap each trial of a sweep individually while excluding
    setup work between trials.  ``calibrate=False`` skips the machine
    calibration for probes whose readings are never stored as baselines.
    """

    def __init__(self, calibrate: bool = True) -> None:
        self.wall_seconds = 0.0
        self.events = 0
        self._entered_at: Optional[float] = None
        self._calibrate = calibrate
        self._calibration: Optional[float] = None

    def __enter__(self) -> "PerfProbe":
        if self._entered_at is not None:
            raise RuntimeError("PerfProbe is not reentrant")
        self._entered_at = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._entered_at is not None
        self.wall_seconds += time.perf_counter() - self._entered_at
        self._entered_at = None

    def add_events(self, count: int) -> None:
        """Credit ``count`` processed events to this capture."""
        self.events += int(count)

    @property
    def calibration(self) -> float:
        """Machine calibration ops/sec (measured lazily, cached)."""
        if not self._calibrate:
            return 0.0
        if self._calibration is None:
            self._calibration = machine_calibration()
        return self._calibration

    def reading(self, **meta: Any) -> ProbeReading:
        """Snapshot the capture (callable between ``with`` blocks)."""
        wall = self.wall_seconds
        return ProbeReading(
            wall_seconds=wall,
            events=self.events,
            events_per_sec=self.events / wall if wall > 0 else 0.0,
            peak_rss_kib=peak_rss_kib(),
            calibration=self.calibration,
            meta=dict(meta),
        )
