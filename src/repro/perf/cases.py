"""The registered perf cases: named workloads measured by ``repro perf``.

Each case builds and runs real simulations under a
:class:`~repro.perf.probe.PerfProbe` and reports the simulator events it
processed.  Cases accept a scale (``quick`` for the CI smoke gate,
``full`` for local investigation) that widens the workload without
changing its shape.

``e5-stress`` is the reference case for the engine rewrite: the E5
resilience grid (CPS and Lynch-Welch at the extreme fault counts) under
the three registry delay policies of the stress tier — the workload the
pre-rewrite scheduler processed at ~96k events/sec (FULL trace, one
2.3 GHz core; see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.perf.bench import BenchResult
from repro.perf.probe import PerfProbe

#: A case body: ``run(scale)`` returning (events, meta) — the probe wall
#: time is captured around the call by :func:`run_case`.
CaseBody = Callable[[str], Tuple[int, Dict[str, object]]]

PERF_CASES: Dict[str, "PerfCase"] = {}


class PerfCase:
    """A named measurable workload."""

    def __init__(self, name: str, description: str, body: CaseBody) -> None:
        self.name = name
        self.description = description
        self.body = body


def register_case(
    name: str, description: str
) -> Callable[[CaseBody], CaseBody]:
    def decorate(body: CaseBody) -> CaseBody:
        PERF_CASES[name] = PerfCase(name, description, body)
        return body

    return decorate


def available_cases() -> List[str]:
    return sorted(PERF_CASES)


def run_case(
    name: str,
    scale: str = "quick",
    repeats: int = 3,
    backend: Optional[str] = None,
) -> BenchResult:
    """Measure one case: best-of-``repeats`` wall time, summed events.

    The first (warmup) run is excluded — it pays import, allocation, and
    cache-priming costs that steady-state throughput should not include.
    The signature-verification memo's hit/miss delta across the measured
    repeats is reported as ``meta["verify_cache"]`` (warm-cache steady
    state, since the warmup run primes the memo).

    ``backend`` (when given) is forwarded to case bodies that declare a
    ``backend`` parameter — the backend-aware cases, e.g.
    ``e9-vectorized-*``, whose bodies carry their own default backend.
    An override against a body without one is an error rather than a
    silently ignored flag; ``None`` leaves every body's default alone.
    """
    import inspect

    from repro.build import resolve_backend
    from repro.crypto.signatures import verify_cache_stats
    from repro.sim.errors import ConfigurationError

    case = PERF_CASES[name]
    accepts_backend = (
        "backend" in inspect.signature(case.body).parameters
    )
    if backend is not None:
        backend = resolve_backend(backend)
        if not accepts_backend:
            aware = [
                key
                for key in available_cases()
                if "backend" in inspect.signature(
                    PERF_CASES[key].body
                ).parameters
            ]
            raise ConfigurationError(
                f"perf case {name!r} does not take a backend "
                f"override; backend-aware cases: {aware}"
            )
    kwargs = {"backend": backend} if (
        accepts_backend and backend is not None
    ) else {}
    case.body(scale, **kwargs)  # warmup, unmeasured
    cache_before = verify_cache_stats()
    best: Tuple[float, int, Dict[str, object]] = (float("inf"), 0, {})
    for _ in range(max(repeats, 1)):
        probe = PerfProbe(calibrate=False)
        with probe:
            events, meta = case.body(scale, **kwargs)
            probe.add_events(events)
        if probe.wall_seconds < best[0]:
            best = (probe.wall_seconds, probe.events, meta)
    cache_after = verify_cache_stats()
    hits = cache_after.hits - cache_before.hits
    misses = cache_after.misses - cache_before.misses
    lookups = hits + misses
    verify_cache = {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else None,
    }
    final = PerfProbe()
    final.wall_seconds, final.events = best[0], best[1]
    return BenchResult.from_reading(
        name,
        final.reading(
            scale=scale,
            description=case.description,
            verify_cache=verify_cache,
            **best[2],
        ),
    )


def run_cases(
    names: List[str], scale: str = "quick", repeats: int = 3
) -> Dict[str, BenchResult]:
    return {name: run_case(name, scale, repeats) for name in names}


# ----------------------------------------------------------------------
# Case bodies
# ----------------------------------------------------------------------


@register_case(
    "e5-stress",
    "E5 resilience grid (CPS + Lynch-Welch) under the stress-tier "
    "delay policies; the engine-rewrite reference workload",
)
def _e5_stress(scale: str) -> Tuple[int, Dict[str, object]]:
    from repro import scenarios
    from repro.analysis.runner import run_pulse_trial
    from repro.baselines.lynch_welch import (
        LwTimingAttack,
        build_lw_simulation,
        derive_lw_parameters,
    )
    from repro.campaigns.builders import _extreme_clocks, cps_group_a
    from repro.core.cps import assemble_cps_simulation
    from repro.core.params import derive_parameters, max_faults

    n, theta, d, u, seed = 9, 1.001, 1.0, 0.02, 5
    pulses = 20 if scale == "quick" else 60
    total_events = 0
    trials = 0
    for delay_key in ("skewing", "eclipse", "flicker-partition"):
        for f in (0, max_faults(n)):
            for algorithm in ("CPS", "Lynch-Welch"):
                faulty = list(range(n - f, n)) if f else []
                delay_policy = scenarios.create("delay", delay_key, n)
                if algorithm == "CPS":
                    params = derive_parameters(theta, d, u, n, f=max_faults(n))
                    behavior = (
                        scenarios.create("adversary", "mimic-split", params)
                        if f
                        else None
                    )
                    simulation = assemble_cps_simulation(
                        params,
                        clocks=_extreme_clocks(params, n, theta),
                        faulty=faulty,
                        behavior=behavior,
                        delay_policy=delay_policy,
                        seed=seed,
                        trace="pulses",
                    )
                else:
                    params = derive_lw_parameters(theta, d, u, n, f=max(f, 1))
                    behavior = (
                        LwTimingAttack(params, cps_group_a(n)) if f else None
                    )
                    simulation = build_lw_simulation(
                        params,
                        clocks=_extreme_clocks(params, n, theta),
                        faulty=faulty,
                        behavior=behavior,
                        delay_policy=delay_policy,
                        seed=seed,
                        trace="pulses",
                    )
                outcome = run_pulse_trial(simulation, pulses, warmup=8)
                assert outcome.result is not None, outcome.error
                total_events += outcome.result.events_processed
                trials += 1
    return total_events, {"trials": trials, "pulses": pulses}


@register_case(
    "cps-full-trace",
    "One CPS system under mimic-split with FULL tracing — guards the "
    "record-allocating path the examples and tests rely on",
)
def _cps_full_trace(scale: str) -> Tuple[int, Dict[str, object]]:
    from repro import scenarios
    from repro.analysis.runner import run_pulse_trial
    from repro.core.cps import assemble_cps_simulation
    from repro.core.params import derive_parameters

    n = 9 if scale == "quick" else 13
    pulses = 25 if scale == "quick" else 50
    params = derive_parameters(1.001, 1.0, 0.02, n)
    faulty = list(range(n - params.f, n))
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=scenarios.create("adversary", "mimic-split", params),
        seed=3,
        clock_style="extreme",
        trace="full",
    )
    outcome = run_pulse_trial(simulation, pulses, warmup=5)
    assert outcome.result is not None, outcome.error
    return outcome.result.events_processed, {
        "pulses": pulses,
        "trace_records": len(outcome.result.trace.records),
    }


@register_case(
    "stress-campaign",
    "The STRESS campaign (registry adversary/delay/drift/topology cross "
    "products) through the campaign executor, serial",
)
def _stress_campaign(scale: str) -> Tuple[int, Dict[str, object]]:
    from repro.campaigns import campaign_definition, execute_campaign

    campaign_scale = "quick" if scale == "quick" else "full"
    definition = campaign_definition("STRESS")
    run = execute_campaign(definition.spec(), scale=campaign_scale)
    events = sum(r.metrics.get("events", 0) for r in run.records)
    return events, {"trials": len(run.records), "failed": run.failed}


@register_case(
    "telemetry-overhead",
    "CPS stress workload run bare and under an active telemetry "
    "handle — guards the zero-cost-when-unused instrumentation hooks",
)
def _telemetry_overhead(scale: str) -> Tuple[int, Dict[str, object]]:
    import time as time_module

    from repro import scenarios
    from repro.analysis.runner import run_pulse_trial
    from repro.campaigns.builders import _extreme_clocks
    from repro.core.cps import assemble_cps_simulation
    from repro.core.params import derive_parameters, max_faults
    from repro.telemetry import Telemetry, telemetry_session

    n, theta, d, u, seed = 9, 1.001, 1.0, 0.02, 5
    pulses = 15 if scale == "quick" else 45
    params = derive_parameters(theta, d, u, n, f=max_faults(n))

    def build():  # one fresh instrumentable system per measurement
        return assemble_cps_simulation(
            params,
            clocks=_extreme_clocks(params, n, theta),
            faulty=list(range(n - params.f, n)),
            behavior=scenarios.create("adversary", "mimic-split", params),
            delay_policy=scenarios.create("delay", "skewing", n),
            seed=seed,
            trace="pulses",
        )

    started = time_module.perf_counter()
    bare = run_pulse_trial(build(), pulses, warmup=8)
    bare_seconds = time_module.perf_counter() - started
    assert bare.result is not None, bare.error

    telemetry = Telemetry(label="telemetry-overhead")
    started = time_module.perf_counter()
    with telemetry_session(telemetry):
        instrumented = run_pulse_trial(build(), pulses, warmup=8)
    instrumented_seconds = time_module.perf_counter() - started
    assert instrumented.result is not None, instrumented.error

    # The hooks must never change simulated behaviour, only observe it.
    assert bare.result.pulses == instrumented.result.pulses, (
        "telemetry instrumentation perturbed the simulation"
    )
    events = bare.result.events_processed
    assert instrumented.result.events_processed == events, (
        "telemetry instrumentation changed the event count"
    )
    overhead = (
        (instrumented_seconds - bare_seconds) / bare_seconds
        if bare_seconds > 0
        else 0.0
    )
    snapshot = telemetry.as_dict()
    return events * 2, {
        "pulses": pulses,
        "bare_seconds": round(bare_seconds, 6),
        "instrumented_seconds": round(instrumented_seconds, 6),
        "overhead_fraction": round(overhead, 4),
        "dispatched": sum(
            value
            for name, value in snapshot["counters"].items()
            if name.startswith("events.dispatched.")
        ),
    }


def _e9_scale_point(
    n: int, scale: str, backend: str
) -> Tuple[int, Dict[str, object]]:
    """One E9-SCALE grid point: silent-adversary CPS at scale ``n``.

    The same registry case the E9-SCALE campaign sweeps; ``events`` are
    the *modeled* events (what the event engine would have dispatched),
    so events/sec across backends measures simulated-work throughput —
    the number the scale study exists to compare.
    """
    from repro.analysis.runner import run_pulse_trial
    from repro.build import build_simulation

    case = {
        "n": n,
        "theta": 1.001,
        "d": 1.0,
        "u": 0.01,
        "adversary": "silent",
        "delay": "maximum",
        "drift": "extreme",
    }
    pulses = 5 if scale == "quick" else 8
    built = build_simulation(case, backend=backend, seed=7, trace="none")
    outcome = run_pulse_trial(built.simulation, pulses, warmup=2)
    assert outcome.result is not None, outcome.error
    assert outcome.report is not None, "scale point must stay live"
    return outcome.result.events_processed, {
        "n": n,
        "pulses": pulses,
        "backend": backend,
        "max_skew": round(outcome.report.max_skew, 9),
        "bound_S": round(built.params.S, 9),
    }


@register_case(
    "e9-vectorized-1k",
    "E9-SCALE point at n=1,000 on the vectorized backend (silent "
    "adversary, maximum delays, extreme drift)",
)
def _e9_vectorized_1k(
    scale: str, backend: str = "vectorized"
) -> Tuple[int, Dict[str, object]]:
    return _e9_scale_point(1000, scale, backend)


@register_case(
    "e9-vectorized-10k",
    "E9-SCALE point at n=10,000 on the vectorized backend — the "
    "regime the round-batched engine exists for",
)
def _e9_vectorized_10k(
    scale: str, backend: str = "vectorized"
) -> Tuple[int, Dict[str, object]]:
    return _e9_scale_point(10000, scale, backend)


@register_case(
    "queue-churn",
    "EventQueue push/pop microbenchmark (heap + slab, no protocol work)",
)
def _queue_churn(scale: str) -> Tuple[int, Dict[str, object]]:
    from repro.sim.events import PRIORITY_DELIVERY, EventQueue, TimerEvent

    operations = 100_000 if scale == "quick" else 500_000
    queue = EventQueue()
    event = TimerEvent(0, "tick", 0.0)
    push, pop = queue.push, queue.pop
    # Interleave pushes and pops with drifting times: the heap stays
    # ~1000 entries deep, like a mid-size simulation.
    for i in range(1000):
        push(float(i), PRIORITY_DELIVERY, event)
    for i in range(operations):
        push(1000.0 + i * 0.5, PRIORITY_DELIVERY, event)
        pop()
    while pop() is not None:
        pass
    return operations, {"operations": operations}
