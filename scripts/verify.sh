#!/usr/bin/env bash
# Tier-1 verification: the full test suite plus the docs freshness
# check (regenerating docs/EXPERIMENTS.md must produce no diff).
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python benchmarks/generate_experiments_md.py --check
