#!/usr/bin/env bash
# Tier-1 verification: the full test suite plus the docs freshness
# check (regenerating docs/EXPERIMENTS.md must produce no diff).
#
# CI's verify matrix and local pre-push share this entry point:
#
#   ./scripts/verify.sh          # tests + docs freshness
#   ./scripts/verify.sh --fast   # tests only (matrix jobs / quick loops;
#                                # docs freshness is version-independent
#                                # and runs once on the full entry)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
  esac
done

# No-op where the package is pip-installed (CI); lets uninstalled
# checkouts run the suite straight from the source tree.
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
if [[ "$FAST" -eq 0 ]]; then
  python benchmarks/generate_experiments_md.py --check
fi
