#!/usr/bin/env bash
# Tier-1 verification: the full test suite plus the docs freshness
# check (regenerating docs/EXPERIMENTS.md must produce no diff).
#
# CI's verify matrix and local pre-push share this entry point:
#
#   ./scripts/verify.sh          # tests + docs freshness
#   ./scripts/verify.sh --fast   # tests only (matrix jobs / quick loops;
#                                # docs freshness is version-independent
#                                # and runs once on the full entry)
#   ./scripts/verify.sh --cov    # tests under pytest-cov with the
#                                # line-coverage floor from pyproject
#                                # (fail_under = 85; the CI full entry)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
COV=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --cov) COV=1 ;;
    *) echo "usage: $0 [--fast] [--cov]" >&2; exit 2 ;;
  esac
done

# No-op where the package is pip-installed (CI); lets uninstalled
# checkouts run the suite straight from the source tree.
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

PYTEST_ARGS=(-x -q)
if [[ "$COV" -eq 1 ]]; then
  # Coverage config (source, fail_under) lives in pyproject.toml.
  PYTEST_ARGS+=(--cov --cov-report=term-missing:skip-covered)
fi

python -m pytest "${PYTEST_ARGS[@]}"
if [[ "$FAST" -eq 0 ]]; then
  python benchmarks/generate_experiments_md.py --check
  python benchmarks/generate_ablations_md.py --check
fi
