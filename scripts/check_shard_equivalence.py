#!/usr/bin/env python
"""Prove two result stores hold the same campaign results.

CI's shard-smoke job runs the same campaign twice — once through the
process pool, once through two detached queue workers writing disjoint
shards — and this script is the verdict: for every spec key present in
both stores, the ``case_key -> metrics`` maps must be identical.  It
also checks the merge invariant on the right store: folding shards into
the base file must not change ``load()``.

Usage::

    python scripts/check_shard_equivalence.py LEFT_STORE RIGHT_STORE
        [--key SPEC_KEY] [--merge-right]

Exits 0 when equivalent, 1 with a diff summary otherwise.
"""

import argparse
import sys

from repro.campaigns import ResultStore


def snapshot(store, key):
    """The comparable view of one spec key: case_key -> (ok, metrics)."""
    return {
        case_key: (record.ok, record.metrics, record.error)
        for case_key, record in store.load(key).items()
    }


def diff_keys(left, right):
    """Human-readable lines describing how two snapshots differ."""
    lines = []
    for case_key in sorted(set(left) - set(right)):
        lines.append(f"  only in left:  {case_key[:16]}…")
    for case_key in sorted(set(right) - set(left)):
        lines.append(f"  only in right: {case_key[:16]}…")
    for case_key in sorted(set(left) & set(right)):
        if left[case_key] != right[case_key]:
            lines.append(
                f"  records differ for {case_key[:16]}…:\n"
                f"    left:  {left[case_key]}\n"
                f"    right: {right[case_key]}"
            )
    return lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="compare two campaign result stores record by record"
    )
    parser.add_argument("left", help="reference store directory")
    parser.add_argument("right", help="store directory under test")
    parser.add_argument(
        "--key",
        action="append",
        default=None,
        help="spec key(s) to compare (default: every key in both)",
    )
    parser.add_argument(
        "--merge-right",
        action="store_true",
        help="also merge the right store's shards and re-verify "
        "(the merge invariant: folding shards never changes load())",
    )
    args = parser.parse_args(argv)

    left = ResultStore(args.left)
    right = ResultStore(args.right)
    keys = args.key or sorted(set(left.keys()) & set(right.keys()))
    if not keys:
        print(
            f"no spec keys shared between {args.left} and {args.right}",
            file=sys.stderr,
        )
        return 1

    failures = 0
    for key in keys:
        before = snapshot(left, key)
        after = snapshot(right, key)
        lines = diff_keys(before, after)
        if lines:
            failures += 1
            print(f"MISMATCH {key}:")
            print("\n".join(lines))
            continue
        shards = right.shards(key)
        if args.merge_right:
            merged = right.merge(key)
            if snapshot(right, key) != before:
                failures += 1
                print(f"MISMATCH {key}: merge changed load()")
                continue
            print(
                f"OK {key}: {len(before)} record(s) — "
                f"{merged['shards']} shard(s) merged, "
                f"{merged['dropped']} superseded line(s) dropped"
            )
        else:
            print(
                f"OK {key}: {len(before)} record(s) across "
                f"{len(shards)} shard(s)"
            )
    if failures:
        print(f"{failures} spec key(s) differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
