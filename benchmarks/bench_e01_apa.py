"""Benchmark E1: APA convergence (Theorem 9 / Corollary 2).

Regenerates the E1 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e01_apa(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E1")
    assert all(t.column('halved every iter'))
