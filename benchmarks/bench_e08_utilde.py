"""Benchmark E8: Skew degradation when faulty links undercut d-u.

Regenerates the E8 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e08_utilde(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E8")
    assert t.rows[0][4] and not t.rows[-1][4]
