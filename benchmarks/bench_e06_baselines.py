"""Benchmark E6: Introduction comparison: all four algorithms.

Regenerates the E6 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e06_baselines(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E6")
    assert len(t.rows) >= 8
