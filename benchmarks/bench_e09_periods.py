"""Benchmark E9: Period bounds (Theorem 17).

Regenerates the E9 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e09_periods(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E9")
    assert all(t.column('within'))
