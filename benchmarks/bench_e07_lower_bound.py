"""Benchmark E7: Theorem 5 lower-bound construction.

Regenerates the E7 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e07_lower_bound(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E7")
    assert all(t.column('>= bound')) and all(t.column('well-defined'))
