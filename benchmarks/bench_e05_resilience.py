"""Benchmark E5: Resilience range: CPS vs Lynch-Welch.

Regenerates the E5 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e05_resilience(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E5")
    assert any(not w for w in t.column('steady within'))
