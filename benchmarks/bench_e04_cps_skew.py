"""Benchmark E4: CPS skew vs Theorem 17 bound.

Regenerates the E4 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e04_cps_skew(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E4")
    assert all(t.column('within')) and all(t.column('live'))
