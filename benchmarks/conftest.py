"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one experiment table (the paper has no
empirical section, so the "tables/figures" are its quantitative claims —
see DESIGN.md section 5 and EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=full`` for the wide sweeps.

``REPRO_BENCH_SCALE`` and campaign grids
----------------------------------------

The experiments ported to the campaign engine (E1/E4/E5/E6) declare
their grids per scale in a ``CampaignSpec`` (see
``repro.campaigns.spec``): the env var's value is passed straight
through as the ``scale`` argument, so ``quick``/``full`` select the
corresponding axes/case tiers and measurement settings
(``ScenarioSpec.grid_for(scale)`` / ``CampaignSpec.measurement_for``);
any other value falls back to the ``full`` tier unless a spec defines
that tier explicitly — e.g. adding ``axes["stress"]`` to a scenario is
all it takes to make ``REPRO_BENCH_SCALE=stress`` meaningful.
``bench_campaign_parallel.py`` additionally runs one campaign through
the serial and process-pool executors and records the speedup.
"""

import os

import pytest

from repro.analysis.experiments import run_experiment

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def bench_experiment(benchmark, capsys, name: str):
    """Benchmark one experiment and print/persist its table."""
    table = benchmark.pedantic(
        run_experiment,
        args=(name,),
        kwargs={"scale": SCALE},
        rounds=1,
        iterations=1,
    )
    assert table.rows, f"experiment {name} produced no rows"
    with capsys.disabled():
        print()
        print(table.render())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table.to_csv(os.path.join(RESULTS_DIR, f"{name.lower()}.csv"))
    return table
