"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one experiment table (the paper has no
empirical section, so the "tables/figures" are its quantitative claims —
see the generated ``docs/EXPERIMENTS.md``).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=full`` for the wide sweeps.

The harness imports :mod:`repro` from the installed package (CI runs
``pip install -e .``); no ``sys.path`` manipulation happens here, and
the ``repro`` imports are deferred into the helpers so pytest can at
least collect (and report a clean import error for) the bench files in
an environment where the package is missing.  For an uninstalled
checkout, ``scripts/verify.sh`` exports ``PYTHONPATH=src``.

``REPRO_BENCH_SCALE`` and campaign grids
----------------------------------------

The experiments ported to the campaign engine (E1/E4/E5/E6) declare
their grids per scale in a ``CampaignSpec`` (see
``repro.campaigns.spec``): the env var's value is passed straight
through as the ``scale`` argument, so ``quick``/``full`` select the
corresponding axes/case tiers and measurement settings
(``ScenarioSpec.grid_for(scale)`` / ``CampaignSpec.measurement_for``);
any other value falls back to the ``full`` tier unless a spec defines
that tier explicitly — e.g. adding ``axes["stress"]`` to a scenario is
all it takes to make ``REPRO_BENCH_SCALE=stress`` meaningful.
``bench_campaign_parallel.py`` additionally runs one campaign through
the serial and process-pool executors and records the speedup.
"""

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def bench_experiment(benchmark, capsys, name: str):
    """Benchmark one experiment and print/persist its table."""
    from repro.analysis.experiments import run_experiment

    table = benchmark.pedantic(
        run_experiment,
        args=(name,),
        kwargs={"scale": SCALE},
        rounds=1,
        iterations=1,
    )
    assert table.rows, f"experiment {name} produced no rows"
    with capsys.disabled():
        print()
        print(table.render())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table.to_csv(os.path.join(RESULTS_DIR, f"{name.lower()}.csv"))
    return table


def bench_campaign(benchmark, capsys, name: str):
    """Benchmark one campaign through the sweep engine.

    Like :func:`bench_experiment` but returns ``(run, table)`` so bench
    files can assert on execution counters (failures, cache hits) as
    well as table contents.
    """
    from repro.campaigns import campaign_definition, execute_campaign

    definition = campaign_definition(name)
    run = benchmark.pedantic(
        execute_campaign,
        args=(definition.spec(),),
        kwargs={"scale": SCALE},
        rounds=1,
        iterations=1,
    )
    table = definition.tabulate(run)
    assert table.rows, f"campaign {name} produced no rows"
    with capsys.disabled():
        print()
        print(table.render())
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table.to_csv(os.path.join(RESULTS_DIR, f"{name.lower()}.csv"))
    return run, table
