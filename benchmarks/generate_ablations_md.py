#!/usr/bin/env python3
"""Generate ``docs/ABLATIONS.md`` from the committed importance artifact.

The document is *derived, not hand-maintained*: the component catalog
comes from :mod:`repro.ablation.components` and every measured number
from the committed ``results/ablation.json`` (written by ``repro ablate
run``).  Nothing is executed, so the emission is deterministic and
cheap enough for the ``scripts/verify.sh`` freshness check.

Usage::

    python benchmarks/generate_ablations_md.py           # rewrite
    python benchmarks/generate_ablations_md.py --check   # exit 1 if stale
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Mapping

from repro.ablation import COMPONENTS
from repro.ablation.plan import ABLATION_SEED

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..")
)
OUTPUT_PATH = os.path.join(REPO_ROOT, "docs", "ABLATIONS.md")
ARTIFACT_PATH = os.path.join(REPO_ROOT, "results", "ablation.json")

HEADER = f"""# ABLATIONS — per-component importance, measured

The paper proves every CPS mechanism necessary by theorem; this
catalog demonstrates it by measurement.  Each switchable component is
run on an engineered **challenge scenario** twice — once with the full
protocol, once with that single component removed — and judged by the
conformance monitors (`repro check list`).  The headline result per
component is its **monitor-flip set**: the theorem bounds that pass at
baseline and fail once the component is gone.

This file is **generated** from `results/ablation.json` (campaign seed
{ABLATION_SEED}, written by `repro ablate run`); do not edit either by
hand.  Regenerate with::

    repro ablate run                  # refresh results/ablation.json
    python benchmarks/generate_ablations_md.py

`scripts/verify.sh` fails if the committed document is stale
(`--check`), and the `ablation-smoke` CI job re-runs the whole matrix
and fails if the committed JSON is not reproduced byte-identically.
Inspect the matrix without executing anything via `repro ablate plan`
and `repro ablate report`; pairwise interaction runs are available
with `repro ablate run --pairwise`.
"""


def load_payload() -> Dict[str, Any]:
    with open(ARTIFACT_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def _skew(summary: Mapping[str, Any]) -> str:
    value = summary.get("max_skew")
    if value is None:
        return "∞ (dead)"
    return f"{value:.6g}"


def _case_line(case: Mapping[str, Any]) -> str:
    parts = [f"`{key}={case[key]}`" for key in sorted(case)]
    return ", ".join(parts)


def importance_table(payload: Mapping[str, Any]) -> List[str]:
    lines = [
        "| component | mechanism | monitor flips | baseline skew "
        "| ablated skew | live when off |",
        "|-----------|-----------|---------------|---------------"
        "|--------------|---------------|",
    ]
    for entry in payload["components"]:
        flips = ", ".join(
            f"`{name}`" for name in entry["monitor_flips"]
        ) or "—"
        lines.append(
            f"| `{entry['component']}` | {entry['mechanism']} "
            f"| {flips} | {_skew(entry['baseline'])} "
            f"| {_skew(entry['ablated'])} "
            f"| {'yes' if entry['ablated']['live'] else 'no'} |"
        )
    return lines


def component_sections(payload: Mapping[str, Any]) -> List[str]:
    by_name = {
        entry["component"]: entry for entry in payload["components"]
    }
    lines: List[str] = []
    for component in COMPONENTS:
        entry = by_name.get(component.name)
        if entry is None:
            continue
        lines.append(f"\n## `{component.name}` — {entry['mechanism']}\n")
        lines.append(f"**Off-behaviour:** {entry['off_behavior']}.\n")
        lines.append(f"**Paper:** {entry['paper_ref']}.\n")
        lines.append(
            f"**Challenge scenario:** {_case_line(entry['challenge'])} "
            f"(mode `{entry['mode']}`).\n"
        )
        flips = ", ".join(
            f"`{name}`" for name in entry["monitor_flips"]
        )
        lines.append(
            f"**Measured:** baseline passes every applicable monitor; "
            f"removing the component flips {flips} to FAIL "
            f"(baseline max skew {_skew(entry['baseline'])}, ablated "
            f"{_skew(entry['ablated'])}"
            + (
                ""
                if entry["ablated"]["live"]
                else "; the ablated run additionally deadlocks — "
                "rounds never terminate"
            )
            + ")."
        )
    return lines


def pair_section(payload: Mapping[str, Any]) -> List[str]:
    pairs = payload.get("pairs") or []
    if not pairs:
        return [
            "\n## Pairwise interactions\n",
            "The committed artifact covers the baseline-plus-one-off "
            "matrix; pairwise interaction runs (`repro ablate run "
            "--pairwise`) double-off every component pair on both "
            "members' challenge scenarios and report flips beyond the "
            "union of the singles.",
        ]
    lines = [
        "\n## Pairwise interactions\n",
        "| pair | challenge of | monitor flips | beyond singles |",
        "|------|--------------|---------------|----------------|",
    ]
    for pair in pairs:
        lines.append(
            f"| `{'+'.join(pair['ablate'])}` "
            f"| `{pair['challenge_of']}` "
            f"| {', '.join(pair['monitor_flips']) or '—'} "
            f"| {', '.join(pair['interaction']) or '—'} |"
        )
    return lines


def generate() -> str:
    payload = load_payload()
    summary = payload["summary"]
    sections = [HEADER, "\n## Importance matrix\n"]
    sections.append(
        f"Scale `{payload['scale']}`, campaign seed "
        f"{payload['seed']}, spec key `{payload['spec_key'][:16]}…`: "
        f"**{summary['flipping']}/{summary['components']} components "
        f"flip at least one monitor** when removed.\n"
    )
    sections.extend(importance_table(payload))
    sections.extend(component_sections(payload))
    sections.extend(pair_section(payload))
    sections.append("")
    return "\n".join(sections)


def main() -> int:
    check = "--check" in sys.argv[1:]
    content = generate()
    if check:
        try:
            with open(OUTPUT_PATH, encoding="utf-8") as handle:
                existing = handle.read()
        except FileNotFoundError:
            existing = None
        if existing != content:
            print(
                "docs/ABLATIONS.md is stale; regenerate with "
                "'python benchmarks/generate_ablations_md.py'",
                file=sys.stderr,
            )
            return 1
        print("docs/ABLATIONS.md is up to date")
        return 0
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
