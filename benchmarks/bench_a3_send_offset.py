"""Benchmark A3: Ablation: dealer send offset theta*S.

Regenerates the A3 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_a3_send_offset(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "A3")
    assert t.rows[0][3] == 0 and t.rows[1][3] > 0
