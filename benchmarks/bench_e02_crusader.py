"""Benchmark E2: Crusader broadcast properties (Figure 4).

Regenerates the E2 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e02_crusader(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E2")
    assert all(t.column('validity ok')) and all(t.column('consistency ok'))
