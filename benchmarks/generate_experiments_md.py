#!/usr/bin/env python3
"""Generate ``docs/EXPERIMENTS.md`` from specs and the scenario registry.

The catalog is *derived, not hand-maintained*: experiment grids come
from the declarative :class:`~repro.campaigns.spec.CampaignSpec` tiers,
scenario entries from the scenario registry
(:mod:`repro.scenarios`), and the paper-vs-measured commentary from the
:data:`COMMENTARY` table below.  No trials are executed, so the output
is deterministic and cheap enough for a CI freshness check.

Usage::

    python benchmarks/generate_experiments_md.py           # rewrite
    python benchmarks/generate_experiments_md.py --check   # exit 1 if stale

Measured tables themselves are reproduced on demand (``repro run E4``,
``repro campaign run STRESS``, ``pytest benchmarks/ --benchmark-only``);
the committed CSV snapshots live in ``results/``.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List

from repro import scenarios
from repro.campaigns import (
    available_campaigns,
    campaign_definition,
    scales_of,
)
from repro.core.params import THETA_MAX

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..")
)
OUTPUT_PATH = os.path.join(REPO_ROOT, "docs", "EXPERIMENTS.md")

COMMENTARY = {
    "E1": (
        "Theorem 9 / Corollary 2 — APA convergence",
        "**Paper:** one APA iteration (2 rounds) halves the honest value "
        "range at resilience `ceil(n/2)-1`; `2*ceil(log2(l/eps))` rounds "
        "reach any target `eps`, and outputs stay inside the honest input "
        "range (validity).\n\n**Measured:** the range at least halves in "
        "*every* iteration under all three Byzantine strategies "
        "(consistent extreme values, subset sends producing asymmetric ⊥ "
        "patterns, and full equivocation), and validity holds throughout. "
        "The final range is at or below the `l/2^k` guarantee.",
    ),
    "E2": (
        "Figure 4 — Crusader broadcast",
        "**Paper:** with signatures, 2 synchronous rounds give validity "
        "(honest dealer's value delivered everywhere) and crusader "
        "consistency (no two honest nodes output different non-⊥ values) "
        "at `f = ceil(n/2)-1`.\n\n**Measured:** honest dealers are always "
        "delivered; an equivocating dealer is degraded to ⊥ at every "
        "honest node that sees the conflicting signatures; a dealer that "
        "addresses only a subset yields the legal value/⊥ mix. No "
        "consistency violation is observable (also fuzzed in the test "
        "suite).",
    ),
    "E3": (
        "Lemmas 10-13 — Timed crusader broadcast accuracy",
        "**Paper:** honest dealers are always accepted (Lemma 10); offset "
        "estimates of honest dealers satisfy "
        "`Delta in [true, true + delta)` (Lemma 12) and non-⊥ estimates "
        "of *any* dealer agree across honest receivers up to `delta` "
        "(Lemma 13), with `delta = 2u + (theta^2-1)d + "
        "2(theta^3-theta^2)S`.\n\n**Measured:** across the (theta, u) "
        "sweep under the timing-split attack and random delays, the worst "
        "validity error and the worst faulty-dealer consistency error "
        "both stay strictly below `delta`; the test suite additionally "
        "asserts zero honest-dealer rejections when faulty links respect "
        "`d-u`.",
    ),
    "E4": (
        "Theorem 17 / Corollary 4 — CPS skew",
        "**Paper:** CPS is a `(ceil(n/2)-1)`-secure pulse-synchronization "
        "protocol with skew `S in Theta(u + (theta-1) d)`.\n\n"
        "**Measured:** with extreme clock ensembles (offsets at the full "
        "allowed `S`, rates pinned at 1 and theta), adversarial delay "
        "policies, and each attack strategy, the worst pulse skew equals "
        "the initial offset `S` (attained at pulse 1, as allowed) and "
        "*never* exceeds it afterwards; steady-state skew sits an order "
        "of magnitude below the bound.",
    ),
    "E5": (
        "Resilience range — CPS vs Lynch-Welch",
        "**Paper (introduction):** without signatures, `ceil(n/3)-1` is "
        "tight; signatures lift the bound to `ceil(n/2)-1` with the same "
        "asymptotic skew.\n\n**Measured (n=9):** the analogous timing "
        "attack is run against both algorithms for every `f`. Lynch-Welch "
        "holds up to its design resilience `f <= 2` and fails beyond it — "
        "at `f = 4` the attack pins each honest group to a different "
        "honest extreme, contraction stops, and the steady skew exceeds "
        "the bound. CPS stays within its bound for every "
        "`f <= 4 = ceil(9/2)-1`.  The `stress` tier re-asks the question "
        "under registry-named delay policies (eclipse, flickering "
        "partition) instead of only the static timing split.",
    ),
    "E6": (
        "Introduction comparison — all four algorithm families",
        "**Paper:** at optimal resilience, prior signed algorithms have "
        "skew `Theta(d)` ([28]/[21]/[2]) or `O(n(u+(theta-1)d))` "
        "(consensus-based), versus this paper's `Theta(u+(theta-1)d)`.\n\n"
        "**Measured (typical regime u = d/100, theta-1 = 1e-3):** "
        "threshold-relay pulsers sit near `0.8 d` regardless of `u`; the "
        "chain-relay construction grows roughly linearly with `f` "
        "(0.034d at f=2 → 0.056d at f=4); CPS sits at ~0.008d — the "
        "order-of-magnitude separation the paper's question is about — "
        "while matching Lynch-Welch's skew at double the resilience.",
    ),
    "E7": (
        "Theorem 5 — the 2*u_tilde/3 lower bound",
        "**Paper:** if links with a faulty endpoint only guarantee delay "
        "`>= d - u_tilde`, any `ceil(n/3)`-secure pulse synchronization "
        "has (expected) skew `>= 2*u_tilde/3`, even with `u = 0` and "
        "perfect initial synchrony.\n\n**Measured:** the three-execution "
        "construction is run as a real adversary around CPS (n=3, f=1, "
        "u=0) and around a communication-free fixed-period pulser. After "
        "the adversarial clocks saturate, the worst execution skew equals "
        "`2*u_tilde/3` *exactly*, the telescoping identity of the proof "
        "evaluates to exactly `2*u_tilde`, and the well-definedness "
        "checker confirms the faulty node always obtained the signatures "
        "it forwarded in time (Lemma 18). For `u_tilde` large enough, "
        "the forced skew exceeds the `S` CPS could promise on honest "
        "links alone — the skew is governed by `u_tilde`, not `u`.",
    ),
    "E8": (
        "Section 1 discussion — degradation when faulty links undercut "
        "d-u",
        "**Paper:** CPS's guarantee *requires* faulty nodes to obey the "
        "minimum delay `d - u`; otherwise they can echo a correct "
        "sender's signature so early that honest broadcasts are "
        "rejected.\n\n**Measured:** with `u_tilde = u` the rushing-echo "
        "attack is harmless (zero honest rejections, skew within S). As "
        "soon as `u_tilde > u` the same attack forces honest-dealer "
        "rejections and pushes the skew past the bound — the concrete "
        "mechanism behind the Theorem 5 limit and the paper's deployment "
        "warning.",
    ),
    "E9": (
        "Theorem 17 — period bounds",
        "**Paper:** `P_min >= (T - (theta+1)S)/theta` and "
        "`P_max <= T + 3S`.\n\n**Measured:** across system sizes and all "
        "attack strategies, every realized period honours both bounds.",
    ),
    "E10": (
        "Lemma 16 — convergence dynamics",
        "**Paper:** `skew' <= skew/2 + delta` (plus drift terms): the "
        "skew contracts geometrically until the measurement-error floor."
        "\n\n**Measured:** starting from the worst allowed initial state "
        "(offsets spread across the full `S`), the per-pulse skew drops "
        "below `S/4` within three pulses and oscillates at a floor two "
        "orders of magnitude below `2*delta` under benign randomness "
        "(the floor bound is worst-case).",
    ),
    "A1": (
        "Ablation — echo-rejection rule (the crusader part of TCB)",
        "Disabling the Figure 2 rejection rule and letting faulty dealers "
        "stagger their sends by `1.5*delta` breaks the Lemma 13 "
        "consistency invariant (observed error ≈ the stagger, i.e. ~2x "
        "`delta`), while with the rule enabled the staggered copies are "
        "rejected and consistency holds with three orders of magnitude "
        "to spare. The echo rule is what makes the dealer's timing a "
        "*crusader* broadcast.",
    ),
    "A2": (
        "Ablation — the ⊥-aware discard rule (f-b vs f)",
        "Replacing APA's `f - b` discard with the signature-free fixed "
        "`f` discard makes CPS fail outright at `f = ceil(n/2)-1` under "
        "silent faults: after `f` ⊥ outputs there are only `n - f` "
        "estimates, and discarding `f` from each side leaves nothing — "
        "the midpoint rule is under-determined. Counting proven-faulty "
        "⊥s against the discard budget is exactly what buys optimal "
        "resilience.",
    ),
    "A3": (
        "Ablation — the theta*S dealer send offset",
        "In a regime where `S > d - u`, dealers that broadcast *at* their "
        "pulse (offset 0) reach fast nodes before slow nodes have pulsed; "
        "those receptions fall outside the acceptance window and honest "
        "dealers get ⊥-ed (Lemma 10 breaks). With the prescribed "
        "`theta*S` wait, zero honest rejections occur.",
    ),
    "STRESS": (
        "Scenario-registry stress campaign",
        "Campaign-native (no single claim): cross products of registry-"
        "named adversaries, delay policies, and drift profiles, plus "
        "sparse topologies run through the Appendix A overlay "
        "translation (`f + 1` vertex-disjoint paths, effective "
        "`(d_eff, u_eff)`).  Topology rows compare measured skew against "
        "the *overlay-derived* bound — the quantitative form of the "
        "paper's closing warning about balancing path lengths.  Every "
        "axis value is resolvable via `repro scenarios show <key>`.",
    ),
    "CHURN-STRESS": (
        "Fault-schedule churn campaign",
        "Campaign-native: every churn profile (crash, rolling crashes, "
        "crash-recover wave, late-join cohort, flapping node, adversary "
        "handoff) against CPS, crossed with drift — and, at full scale, "
        "size and delay — axes.  The paper's model is static, so this "
        "campaign measures the *dynamics* the theorems do not cover: "
        "crashed/dormant/corrupted nodes spend the `f` budget, "
        "rejoining nodes restart behind the listen-then-join wrapper, "
        "and rows report pulses-to-resync and the post-recovery "
        "alignment envelope against the stable cohort alongside the "
        "cohort's own Theorem 17 skew.  Judged by the stabilization "
        "monitor (`repro check run <profile>`); semantics in "
        "`docs/DYNAMICS.md`.",
    ),
    "E9-SCALE": (
        "Vectorized-backend scale study to n = 10,000",
        "**Paper:** Theorem 17's skew bound `S` is independent of `n` — "
        "the protocol is all-to-all, so nothing in the bound degrades "
        "as the system grows.\n\n**Measured:** skew vs `S` at "
        "`n = 100 / 1,000 / 10,000` (silent adversary, maximum delays, "
        "extreme drift) on the round-batched numpy backend "
        "(`repro.sim.vectorized`, selected via "
        "`build_simulation(case, backend=\"vectorized\")`).  The event "
        "engine dispatches every delivery individually — about 10^8 "
        "modeled messages per round at `n = 10,000` — so this regime "
        "is unreachable for it; the vectorized engine computes the "
        "same protocol semantics in a handful of block operations per "
        "round, and the differential suite "
        "(`tests/test_vectorized.py`) pins the two engines verdict- "
        "and pulse-identical at small `n`.  Exactness argument and "
        "supported-scenario envelope in `docs/VECTORIZED.md`; "
        "throughput points are tracked by the `e9-vectorized-*` perf "
        "cases (`repro perf run --quick`).",
    ),
    "ABLATION": (
        "Protocol ablation engine — per-component importance",
        "Campaign-native: every switchable CPS mechanism "
        "(signatures, echo amplification, the TCB acceptance window, "
        "the ⊥-aware discard, the Appendix A overlay translation, the "
        "resync wrapper) is run on an engineered *challenge scenario* "
        "twice — full protocol vs that one component removed — and "
        "judged by the conformance monitors.  The headline result is "
        "the **monitor-flip set**: which theorem bounds start failing "
        "per removed component (all six components flip at least one "
        "monitor; baselines all pass).  The committed artifact is "
        "`results/ablation.json` (byte-stable; CI re-runs the matrix "
        "and `git diff`s it), the generated catalog is "
        "`docs/ABLATIONS.md`, and the surface is `repro ablate "
        "plan|run|report` (pairwise interactions via `--pairwise`).",
    ),
}

ORDER = ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
         "A1", "A2", "A3", "STRESS", "CHURN-STRESS", "E9-SCALE",
         "ABLATION"]

HEADER = f"""# EXPERIMENTS — paper claims, grids, and scenarios

The paper is a theory paper (PODC 2022) with no empirical section; its
"tables and figures" are four algorithm boxes and a set of quantitative
claims.  This catalog records, for every claim, what the paper states,
what this reproduction measures, and — for the experiments ported to
the campaign engine — the exact declarative grid behind each tier.

This file is **generated** from the campaign specs and the scenario
registry; do not edit it by hand.  Regenerate with::

    python benchmarks/generate_experiments_md.py

CI fails if the committed copy is stale (``--check``).  Reproduce the
measured tables with ``repro run <id>`` / ``repro campaign run <id>``
or ``pytest benchmarks/ --benchmark-only``; committed CSV snapshots
live in ``results/``.

**Global fidelity note.** Our parameter constants follow the appendix
derivation (Lemma 16 fixed point, Corollary 15 floor for `T`) exactly as
proven; solving the self-consistent system gives
`S = [2(2θ-1)(2u+(θ²-1)d) + 2(θ-1)((θ+1)d-2u)] / (-8θ⁴+10θ³-4θ²-θ+4)`,
feasible for `theta < {THETA_MAX:.4f}` (the paper's slightly different
bookkeeping quotes `theta <= 1.11` in Corollary 4).  Both are
`Theta(u + (theta-1)d)`; all bounds checked below use our exact
constants, so "within bound" is a *strict* check, not an asymptotic one.
"""


def _bench_files() -> Dict[str, str]:
    """Map experiment ids to their ``benchmarks/bench_*.py`` harness."""
    mapping: Dict[str, str] = {}
    pattern = re.compile(r"bench_([ea])(\d+)_")
    for name in sorted(os.listdir(os.path.dirname(__file__))):
        match = pattern.match(name)
        if match:
            experiment = f"{match.group(1).upper()}{int(match.group(2))}"
            mapping[experiment] = f"benchmarks/{name}"
        elif name.startswith("bench_stress_"):
            mapping["STRESS"] = f"benchmarks/{name}"
    return mapping


def _campaign_scales(spec) -> List[str]:
    """Display order for a spec's tiers: quick, full, then the rest."""
    declared = scales_of(spec)
    ordered = [s for s in ("quick", "full") if s in declared]
    return ordered + [s for s in declared if s not in ordered]


def catalog_table(bench_files: Dict[str, str]) -> List[str]:
    lines = [
        "| id | claim | bench harness | campaign engine |",
        "|----|-------|---------------|-----------------|",
    ]
    for name in ORDER:
        title = COMMENTARY[name][0]
        bench = bench_files.get(name)
        bench_cell = f"`{bench}`" if bench else "—"
        if name in available_campaigns():
            campaign_cell = f"`repro campaign run {name}`"
        else:
            campaign_cell = "—"
        lines.append(
            f"| {name} | {title} | {bench_cell} | {campaign_cell} |"
        )
    return lines


def campaign_grid_section(name: str) -> List[str]:
    definition = campaign_definition(name)
    spec = definition.spec()
    lines = [
        "",
        f"**Campaign grid** (seed {spec.seed}; run with "
        f"`repro campaign run {name} [--scale TIER] [--workers N]`):",
        "",
        "| tier | trials | pulses | warmup | grid |",
        "|------|--------|--------|--------|------|",
    ]
    for scale in _campaign_scales(spec):
        info = spec.describe(scale)
        measurement = info["measurement"]
        grid = "; ".join(
            f"{scenario['builder']} ×{scenario['cases']}"
            for scenario in info["scenarios"]
        )
        lines.append(
            f"| {scale} | {info['trials']} | {measurement['pulses']} "
            f"| {measurement['warmup']} | {grid} |"
        )
    return lines


def scenario_registry_section() -> List[str]:
    lines = [
        "\n## Scenario registry\n",
        "Campaign cases name behaviours by registry key "
        "(`repro scenarios list`, `repro scenarios show <key>`); "
        "unknown keys fail at campaign *plan* time with a did-you-mean "
        "hint.  Factory conventions per kind are documented in "
        "`repro.scenarios.registry`.",
    ]
    for kind in scenarios.KINDS:
        entries = scenarios.entries(kind)
        lines.append(f"\n### {kind} ({len(entries)} entries)\n")
        lines.append("| key | description | paper anchor | parameters |")
        lines.append("|-----|-------------|--------------|------------|")
        for entry in entries:
            params = (
                ", ".join(f"`{p.render()}`" for p in entry.params)
                or "—"
            )
            ref = entry.paper_ref or "—"
            lines.append(
                f"| `{entry.key}` | {entry.description} | {ref} "
                f"| {params} |"
            )
    return lines


def generate() -> str:
    bench_files = _bench_files()
    sections = [HEADER, "\n## Catalog\n"]
    sections.extend(catalog_table(bench_files))
    for name in ORDER:
        title, commentary = COMMENTARY[name]
        sections.append(f"\n## {name} — {title}\n")
        sections.append(commentary + "\n")
        reproduce = []
        if name in available_campaigns():
            reproduce = campaign_grid_section(name)
        elif name in bench_files:
            reproduce = [
                f"**Reproduce:** `repro run {name}` or "
                f"`pytest {bench_files[name]} --benchmark-only`.",
            ]
        sections.extend(reproduce)
    sections.extend(scenario_registry_section())
    sections.append("")
    return "\n".join(sections)


def main() -> int:
    check = "--check" in sys.argv[1:]
    content = generate()
    if check:
        try:
            with open(OUTPUT_PATH, encoding="utf-8") as handle:
                existing = handle.read()
        except FileNotFoundError:
            existing = None
        if existing != content:
            print(
                "docs/EXPERIMENTS.md is stale; regenerate with "
                "'python benchmarks/generate_experiments_md.py'",
                file=sys.stderr,
            )
            return 1
        print("docs/EXPERIMENTS.md is up to date")
        return 0
    os.makedirs(os.path.dirname(OUTPUT_PATH), exist_ok=True)
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(content)
    print(f"wrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
