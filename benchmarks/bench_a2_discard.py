"""Benchmark A2: Ablation: f-b vs f discard rule.

Regenerates the A2 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_a2_discard(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "A2")
    assert t.rows[0][2] == 'ok' and t.rows[1][2] != 'ok'
