"""Benchmark A1: Ablation: echo-rejection rule.

Regenerates the A1 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_a1_no_echo(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "A1")
    assert t.rows[0][5] and not t.rows[1][5]
