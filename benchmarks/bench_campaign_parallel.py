"""Benchmark: the E4 campaign through the serial vs process-pool executor.

Times the identical declarative grid both ways, asserts the aggregated
tables match (determinism under parallelism), and records the measured
speedup in the benchmark's ``extra_info``.  On a single-core runner the
pool mostly pays fork overhead — the point of the benchmark is to track
that the parallel path stays correct and to measure the speedup
wherever cores are available.
"""

import os
import time

from conftest import SCALE

from repro.campaigns import (
    ExecutionPolicy,
    campaign_definition,
    execute_campaign,
)


def test_campaign_parallel_e04(benchmark, capsys):
    definition = campaign_definition("E4")
    spec = definition.spec()

    start = time.perf_counter()
    serial_run = execute_campaign(spec, scale=SCALE)
    serial_seconds = time.perf_counter() - start

    workers = max(2, min(4, os.cpu_count() or 1))
    policy = ExecutionPolicy(workers=workers, chunk_size=1)
    parallel_seconds = []

    def run_parallel():
        start = time.perf_counter()
        run = execute_campaign(spec, scale=SCALE, policy=policy)
        parallel_seconds.append(time.perf_counter() - start)
        return run

    parallel_run = benchmark.pedantic(run_parallel, rounds=1, iterations=1)

    serial_table = definition.tabulate(serial_run)
    parallel_table = definition.tabulate(parallel_run)
    assert serial_table.render() == parallel_table.render()
    assert parallel_run.failed == 0

    speedup = serial_seconds / parallel_seconds[-1]
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(
        parallel_seconds[-1], 3
    )
    benchmark.extra_info["speedup"] = round(speedup, 3)
    with capsys.disabled():
        print()
        print(
            f"E4 [{SCALE}] serial {serial_seconds:.2f}s vs "
            f"{workers}-worker pool {parallel_seconds[-1]:.2f}s "
            f"— speedup {speedup:.2f}x"
        )
        print(serial_table.render())
