"""Benchmark E3: TCB estimate accuracy (Lemmas 10-13).

Regenerates the E3 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e03_tcb(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E3")
    assert all(t.column('within (L12)')) and all(t.column('within (L13)'))
