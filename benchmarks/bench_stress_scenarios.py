"""Benchmark STRESS: the registry-driven scenario campaign.

Regenerates the STRESS table (see docs/EXPERIMENTS.md) — adversary x
delay x drift cross products plus sparse topologies through the
Appendix A overlay — and asserts its headline claims on the freshly
measured data: every trial completes (no tabulated failures) and
every live clique-model run stays within its derived bound S.
Topology rows are checked against the *overlay* bound instead.

``REPRO_BENCH_SCALE=stress`` widens the grid to the large tier
(n up to 25, six adversaries, five delay policies).
"""

from conftest import bench_campaign


def test_stress_scenarios(benchmark, capsys):
    run, table = bench_campaign(benchmark, capsys, "STRESS")
    assert run.failed == 0, [r.error for r in run.failures()]
    within = table.column("within")
    live = table.column("live")
    assert all(w for w, alive in zip(within, live) if alive)
    assert any(live)
