"""Benchmark E10: Convergence trajectory (Lemma 16).

Regenerates the E10 table (see docs/EXPERIMENTS.md) and asserts its headline
claim still holds on the freshly measured data.
"""

from conftest import bench_experiment


def test_e10_convergence(benchmark, capsys):
    t = bench_experiment(benchmark, capsys, "E10")
    assert min(t.column('skew')) < t.column('skew')[0]
