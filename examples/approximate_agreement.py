#!/usr/bin/env python3
"""Approximate agreement with signatures (Section 2.1 of the paper).

Nine sensor nodes hold divergent temperature readings; four of them are
Byzantine (the optimal ceil(n/2) - 1 with signatures — far beyond the
ceil(n/3) - 1 barrier of the unauthenticated setting).  The honest nodes
run iterated Algorithm APA over crusader broadcast and converge to within
any target epsilon in 2*ceil(log2(range/epsilon)) rounds (Corollary 2),
no matter how the Byzantine nodes equivocate.
"""

from repro.analysis.reporting import Table
from repro.core.params import max_faults
from repro.sync.approx_agreement import (
    ApaEquivocatingAdversary,
    ApaExtremeAdversary,
    ApaSplitAdversary,
    iterations_for_target,
    run_apa,
)

N = 9
TARGET = 0.05  # degrees


def main() -> None:
    f = max_faults(N)
    faulty = list(range(N - f, N))
    honest = [v for v in range(N) if v not in faulty]
    readings = {v: 18.0 + 1.5 * i for i, v in enumerate(honest)}
    initial_range = max(readings.values()) - min(readings.values())
    iterations = iterations_for_target(initial_range, TARGET)

    print(
        f"{N} sensors, {f} Byzantine; honest readings span "
        f"{initial_range:.2f} degrees."
    )
    print(
        f"Corollary 2: {iterations} iterations "
        f"({2 * iterations} synchronous rounds) reach epsilon = {TARGET}.\n"
    )

    table = Table(
        "Honest value range per iteration (three Byzantine strategies)",
        ["iteration", "guaranteed (l/2^k)"]
        + ["extreme", "split-⊥", "equivocating"],
    )
    adversaries = [
        ApaExtremeAdversary(-40.0, 90.0),
        ApaSplitAdversary(-40.0, 90.0),
        ApaEquivocatingAdversary(-40.0, 90.0),
    ]
    results = [
        run_apa(readings, N, f, faulty, adversary, iterations=iterations)
        for adversary in adversaries
    ]
    for i in range(iterations + 1):
        table.add_row(
            i,
            initial_range / (2.0 ** i),
            *(result.range_at(i) for result in results),
        )
    print(table.render())

    for name, result in zip(
        ("extreme", "split-⊥", "equivocating"), results
    ):
        values = sorted(result.outputs.values())
        spread = values[-1] - values[0]
        assert spread <= TARGET + 1e-9
        assert min(readings.values()) <= values[0]
        assert values[-1] <= max(readings.values())
        print(
            f"\n{name:>12}: outputs in [{values[0]:.4f}, {values[-1]:.4f}] "
            f"(spread {spread:.4f} <= {TARGET}, inside the honest input "
            "range)"
        )


if __name__ == "__main__":
    main()
