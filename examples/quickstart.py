#!/usr/bin/env python3
"""Quickstart: synchronize 8 clocks, 3 of them Byzantine.

Derives parameters for a generic network (theta = 1.001, delay d = 1 time
unit, uncertainty u = 0.01), runs Crusader Pulse Synchronization at its
optimal resilience f = ceil(n/2) - 1 = 3 under a timing-split attack, and
checks every Theorem 17 guarantee on the measured pulses.
"""

from repro import PulseReport, assemble_cps_simulation, derive_parameters
from repro.analysis.metrics import skew_trajectory
from repro.core.attacks import CpsMimicDealerAttack
from repro.sim.network import SkewingDelayPolicy


def main() -> None:
    params = derive_parameters(theta=1.001, d=1.0, u=0.01, n=8)
    print("Derived parameters (Theorem 17):")
    print(f"  n = {params.n}, f = {params.f} (optimal with signatures)")
    print(f"  skew bound        S = {params.S:.6f}")
    print(f"  round length      T = {params.T:.6f}")
    print(f"  estimate error    delta = {params.delta:.6f}")
    print(f"  period bounds     [{params.p_min_bound:.4f}, "
          f"{params.p_max_bound:.4f}]")

    faulty = [5, 6, 7]
    group_a = [0, 2, 4]
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=CpsMimicDealerAttack(params, group_a),
        delay_policy=SkewingDelayPolicy(group_a),
        seed=42,
    )
    result = simulation.run(max_pulses=20)

    report = PulseReport.from_pulses(result.honest_pulses(), warmup=5)
    print(f"\nRan 20 pulses with faulty nodes {faulty} attacking:")
    print(f"  worst skew        {report.max_skew:.6f}  (bound {params.S:.6f})")
    print(f"  steady-state skew {report.steady_skew:.6f}")
    print(f"  period range      [{report.min_period:.4f}, "
          f"{report.max_period:.4f}]")

    print("\nPer-pulse skew trajectory:")
    for index, skew in enumerate(skew_trajectory(result.honest_pulses()), 1):
        bar = "#" * max(int(60 * skew / params.S), 1)
        print(f"  pulse {index:>2}  {skew:.6f}  {bar}")

    assert report.max_skew <= params.S + 1e-9
    assert report.min_period >= params.p_min_bound - 1e-9
    assert report.max_period <= params.p_max_bound + 1e-9
    print("\nAll Theorem 17 guarantees hold on the measured run.")


if __name__ == "__main__":
    main()
