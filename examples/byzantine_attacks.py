#!/usr/bin/env python3
"""Attack gallery: what the adversary can (and cannot) do to CPS.

Runs the full attack library against CPS at optimal resilience and shows
each one bouncing off a different defence mechanism, then demonstrates the
one attack that *does* work — rushing echoes over faulty links that
undercut the honest minimum delay — which is exactly the gap Theorem 5
proves fundamental.
"""

from repro import assemble_cps_simulation, derive_parameters
from repro.analysis.metrics import PulseReport
from repro.analysis.reporting import Table
from repro.core.attacks import (
    CpsEquivocatingSubsetAttack,
    CpsMimicDealerAttack,
    CpsRushingEchoAttack,
    FastToFaultyDelayPolicy,
)
from repro.sim.adversary import ReplayAdversary, SilentAdversary
from repro.sim.network import SkewingDelayPolicy
from repro.sync.crusader import BOT

PULSES = 15


def run(params, behavior, delay_policy=None, u_tilde=None):
    faulty = list(range(params.n - params.f, params.n))
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=behavior,
        delay_policy=delay_policy,
        u_tilde=u_tilde,
        seed=7,
        clock_style="extreme",
    )
    result = simulation.run(max_pulses=PULSES)
    report = PulseReport.from_pulses(result.honest_pulses(), warmup=4)
    honest = set(result.honest)
    honest_rejections = sum(
        1
        for record in result.trace.protocol_events("cps-round")
        for w, estimate in record.details.estimates.items()
        if estimate is BOT and w in honest
    )
    return report, honest_rejections


def main() -> None:
    params = derive_parameters(theta=1.0005, d=1.0, u=0.01, n=8)
    group_a = [0, 2, 4, 6]
    table = Table(
        f"CPS under attack (n={params.n}, f={params.f}, bound "
        f"S={params.S:.5f})",
        [
            "attack",
            "defence that stops it",
            "steady skew",
            "within S",
            "honest ⊥",
        ],
    )

    scenarios = [
        (
            "silent (crash all f)",
            SilentAdversary(),
            None,
            "⊥-aware discard rule (f - b)",
        ),
        (
            "timing split (mimic dealers)",
            CpsMimicDealerAttack(params, group_a),
            SkewingDelayPolicy(group_a),
            "echo rule caps spread at ~u (Lemma 11)",
        ),
        (
            "equivocating subset",
            CpsEquivocatingSubsetAttack(params),
            None,
            "crusader consistency: excluded half gets ⊥",
        ),
        (
            "signature replay flood",
            ReplayAdversary(seed=1, copies=2),
            None,
            "per-round signed tags; stale sigs are noise",
        ),
    ]
    for name, behavior, policy, defence in scenarios:
        report, rejections = run(params, behavior, policy)
        table.add_row(
            name,
            defence,
            report.steady_skew,
            report.steady_skew <= params.S + 1e-9,
            rejections,
        )
    print(table.render())

    print(
        "\nThe one that works — rushing echoes when faulty links may be "
        "faster than honest ones (u~ = 8u):"
    )
    report, rejections = run(
        params,
        CpsRushingEchoAttack(),
        FastToFaultyDelayPolicy(),
        u_tilde=8 * params.u,
    )
    print(
        f"  steady skew {report.steady_skew:.5f} vs bound {params.S:.5f} "
        f"({'BROKEN' if report.steady_skew > params.S else 'held'}), "
        f"{rejections} honest broadcasts rejected"
    )
    print(
        "  -> Theorem 5: no algorithm can avoid Omega(u~) skew; network "
        "designers must enforce the minimum delay d - u on faulty links "
        "too."
    )


if __name__ == "__main__":
    main()
