#!/usr/bin/env python3
"""Datacenter scenario: sub-10-microsecond fault-tolerant time.

Realistic parameters for a rack-scale deployment (times in seconds):

* one-way delay d = 100 us (ToR switch round trip + processing),
* uncertainty u = 2 us (hardware timestamping),
* oscillator drift theta - 1 = 2e-5 (20 ppm crystal),
* n = 16 servers, up to 7 of them compromised.

The example contrasts what each algorithm family delivers in this regime,
then shows the headline application: simulating lock-step rounds with
almost no overhead over the raw network delay.
"""

from repro import assemble_cps_simulation, derive_parameters
from repro.analysis.metrics import PulseReport
from repro.analysis.reporting import Table
from repro.baselines.lynch_welch import (
    build_lw_simulation,
    derive_lw_parameters,
    lw_max_faults,
)
from repro.baselines.srikanth_toueg import (
    StRushAttack,
    build_st_simulation,
    derive_st_parameters,
)
from repro.core.attacks import CpsMimicDealerAttack
from repro.core.params import max_faults
from repro.core.synchronizer import (
    synchronous_round_overhead,
    verify_round_separation,
)
from repro.sim.network import RandomDelayPolicy

D = 100e-6
U = 2e-6
THETA = 1.00002
N = 16
PULSES = 12


def main() -> None:
    table = Table(
        "Rack-scale clock sync (d=100us, u=2us, 20ppm drift, n=16)",
        ["algorithm", "f tolerated", "skew bound", "measured skew (us)"],
    )

    params = derive_parameters(THETA, D, U, N)
    faulty = list(range(N - params.f, N))
    group_a = [v for v in range(N) if v % 2 == 0]
    simulation = assemble_cps_simulation(
        params,
        faulty=faulty,
        behavior=CpsMimicDealerAttack(params, group_a),
        delay_policy=RandomDelayPolicy(seed=1),
        seed=1,
    )
    result = simulation.run(max_pulses=PULSES)
    report = PulseReport.from_pulses(result.honest_pulses(), warmup=4)
    table.add_row(
        "CPS (this paper)", params.f, f"{params.S * 1e6:.2f} us",
        report.steady_skew * 1e6,
    )

    lw_f = lw_max_faults(N)
    lw_params = derive_lw_parameters(THETA, D, U, N, f=lw_f)
    lw_sim = build_lw_simulation(
        lw_params,
        faulty=list(range(N - lw_f, N)),
        delay_policy=RandomDelayPolicy(seed=1),
        seed=1,
    )
    lw_result = lw_sim.run(max_pulses=PULSES)
    lw_report = PulseReport.from_pulses(lw_result.honest_pulses(), warmup=4)
    table.add_row(
        "Lynch-Welch (no signatures)", lw_f,
        f"{lw_params.S * 1e6:.2f} us", lw_report.steady_skew * 1e6,
    )

    st_params = derive_st_parameters(THETA, D, U, N)
    st_sim = build_st_simulation(
        st_params,
        faulty=faulty,
        behavior=StRushAttack(st_params),
        seed=1,
    )
    st_result = st_sim.run(max_pulses=PULSES)
    st_report = PulseReport.from_pulses(st_result.honest_pulses(), warmup=4)
    table.add_row(
        "Signed relay (ST-style)", max_faults(N),
        f"~d = {D * 1e6:.0f} us", st_report.steady_skew * 1e6,
    )

    print(table.render())
    print(
        f"\nCPS tolerates {params.f} corrupted servers (vs {lw_f} without "
        f"signatures) at {report.steady_skew * 1e6:.2f} us steady skew — "
        f"{D * 1e6 / max(report.steady_skew * 1e6, 1e-9):.0f}x tighter "
        "than the relay-based alternative at the same resilience."
    )

    # The application: lock-step round simulation on top of the pulses.
    schedule = verify_round_separation(result.honest_pulses(), D)
    overhead = synchronous_round_overhead(result.honest_pulses(), D)
    print(
        f"\nSynchronizer view: {schedule.rounds} lock-step rounds "
        f"simulated, {len(schedule.violations)} separation violations, "
        f"mean round duration {overhead:.2f}x the raw delay d."
    )


if __name__ == "__main__":
    main()
