"""Churn in action: crash a node mid-run, watch it rejoin and resync.

Walks the churn engine end to end:

1. *declare* — a fault schedule as plain data: one node crashes at
   pulse 3 and recovers at pulse 6, with the budget check showing why
   a crash spends one of the ``f`` fault slots;
2. *inject* — attach the schedule to a CPS simulation through the
   scheduler's dynamics hook and run it;
3. *measure* — time-aligned stabilization metrics: the recovered node
   re-locks to the stable cohort within a few pulses of the
   listen-then-join handoff, and the cohort itself never leaves the
   Theorem 17 envelope.
"""

from repro.analysis.metrics import max_skew, stabilization_report
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.dynamics import (
    ChurnController,
    FaultEvent,
    FaultSchedule,
    MalformedScheduleError,
)

params = derive_parameters(theta=1.001, d=1.0, u=0.02, n=6)
print("=== The deployment ===")
print(
    f"n={params.n} f={params.f} skew bound S={params.S:.4f} "
    f"round T={params.T:.4f}"
)

print("\n=== 1. Declare the fault schedule ===")
schedule = FaultSchedule(
    events=(
        FaultEvent("crash", 0, at_pulse=3),
        FaultEvent("recover", 0, at_pulse=6),
    ),
    corruptions=1,  # one Byzantine node; the crash spends a 2nd slot
)
schedule.validate(params.n, params.f)
print(schedule.describe())

# Crashes are faults: one corruption + two crashes would exceed f=2.
over_budget = FaultSchedule(
    events=(
        FaultEvent("crash", 0, at_pulse=2),
        FaultEvent("crash", 1, at_pulse=3),
    ),
    corruptions=1,
)
try:
    over_budget.validate(params.n, params.f)
except MalformedScheduleError as error:
    print(f"over-budget schedule rejected: {error}")
else:
    raise AssertionError("budget violation went undetected")

print("\n=== 2. Inject and run ===")
controller = ChurnController(schedule, params)
simulation = assemble_cps_simulation(
    params,
    faulty=schedule.initially_corrupted(params.n),
    seed=11,
    clock_style="extreme",
    trace="pulses",
    dynamics=controller,
)
result = simulation.run(max_pulses=14)
for time, kind, node in controller.applied:
    print(f"t={time:8.3f}  {kind} node {node}")

print("\n=== 3. Measure re-stabilization ===")
stable = schedule.stable_nodes(params.n)
recover_time = controller.applied[-1][0]
report = stabilization_report(
    result.pulses, 0, recover_time, stable, params.S
)
print(f"stable cohort: {stable}")
print(
    f"node 0 resynced in {report.pulses_to_resync} pulse(s); "
    f"post-resync envelope {report.envelope:.5f} (bound {params.S:.4f})"
)
trajectory = ", ".join(f"{value:.4f}" for value in report.trajectory[:6])
print(f"envelope trajectory: {trajectory} ...")

cohort_skew = max_skew({v: result.pulses[v] for v in stable}, skip=3)
print(f"cohort skew (index-aligned): {cohort_skew:.5f}")

assert report.resynced, "recovered node never re-stabilized"
assert report.pulses_to_resync <= 6
assert report.envelope <= params.S
assert cohort_skew <= params.S + 1e-9
assert len(result.pulses[0]) >= 14, "rejoiner did not reach the quota"
print("\nall churn assertions hold")
