"""The scenario registry: discover behaviours, assemble stress sweeps.

Walks the three steps the registry enables:

1. *discover* — list registered adversaries, delay policies,
   topologies, and drift profiles with their metadata (the same catalog
   behind ``repro scenarios list``);
2. *compose* — build a campaign whose cases are nothing but registry
   keys: a coordinated-offset attack under an eclipse delay policy on
   mixed-quality hardware, with a misspelled key caught at plan time;
3. *run* — execute through the campaign engine and check the measured
   skew against the derived bound, including a sparse topology routed
   through the Appendix A overlay.
"""

from repro import scenarios
from repro.campaigns import (
    CampaignSpec,
    MeasurementSpec,
    ScenarioSpec,
    execute_campaign,
)
from repro.scenarios import UnknownScenarioError

print("=== The scenario catalog ===")
for kind in scenarios.KINDS:
    keys = ", ".join(entry.key for entry in scenarios.entries(kind))
    print(f"{kind:<10} {keys}")
print(f"total: {len(scenarios.REGISTRY)} entries")

entry = scenarios.get("adversary", "coordinated-offset")
print(f"\n{entry.qualified}: {entry.description}")
print(f"  paper: {entry.paper_ref}")

print("\n=== A campaign assembled from registry keys ===")
campaign = CampaignSpec(
    name="stress-demo",
    seed=23,
    scenarios=(
        # Clique model: attacks x delay policies on mixed hardware.
        ScenarioSpec(
            builder="cps-stress",
            base={"n": 6, "u": 0.02, "drift": "mixed"},
            axes={
                "*": {
                    "adversary": ("coordinated-offset", "mimic-split"),
                    "delay": ("eclipse", "flicker-partition"),
                }
            },
        ),
        # Sparse physical network: CPS on the Appendix A overlay.
        ScenarioSpec(
            builder="cps-stress",
            base={
                "n": 8,
                "u": 0.01,
                "topology": "random-regular",
                "delay": "random",
            },
        ),
    ),
    measurements={"*": MeasurementSpec(pulses=6, warmup=2)},
)

run = execute_campaign(campaign)
print(f"{run.summary()}")
for record in run.records:
    case = record.case
    label = case.get("topology") or (
        f"{case['adversary']} + {case['delay']}"
    )
    m = record.metrics
    print(
        f"  {label:<36} steady skew {m['steady_skew']:.5f} "
        f"(bound {m['bound_S']:.5f}, live={m['live']})"
    )

assert run.failed == 0
assert all(record.metrics["live"] for record in run.records)
assert all(record.metrics["within"] for record in run.records)

print("\n=== Typos fail at plan time, not mid-sweep ===")
typo = CampaignSpec(
    name="typo",
    scenarios=(
        ScenarioSpec(
            builder="cps-stress",
            base={"n": 5, "adversary": "cordinated-offset"},
        ),
    ),
)
try:
    typo.trials_for("quick")
except UnknownScenarioError as error:
    print(f"caught: {error}")
    caught = True
assert caught

overlay_record = run.records[-1]
print(
    f"\noverlay: d_eff={overlay_record.metrics['d_eff']:.2f}, "
    f"u_eff={overlay_record.metrics['u_eff']:.4f} — the sparse graph "
    "pays path length but keeps the skew within its derived bound."
)
print("all scenario-registry guarantees held")
