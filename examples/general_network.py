#!/usr/bin/env python3
"""CPS on a sparse network (Appendix A of the paper).

A 12-node circulant network (each node linked to its 2 nearest neighbours
on each side — 4 links per node instead of 11) simulates full
connectivity by routing every virtual message along f + 1 = 3
vertex-disjoint paths.  With signatures, one honest path suffices for an
authenticated delivery, so (f+1)-connectivity is all that is needed —
against 2f+1 without signatures.

The example also quantifies the paper's closing warning: the utilized
paths' lengths must be *balanced*, otherwise the effective uncertainty
u_eff approaches the effective delay d_eff and no feasible CPS
parameters exist.
"""

from repro.analysis.metrics import PulseReport
from repro.core.cps import assemble_cps_simulation
from repro.core.params import max_faults
from repro.core.topology import (
    circulant,
    required_connectivity,
    simulate_full_connectivity,
    uniform_timings,
)
from repro.sim.errors import ConfigurationError

N = 12
F = 2
THETA = 1.0002
LINK_D = 1.0
LINK_U = 0.02


def main() -> None:
    graph = circulant(N, [1, 2])
    print(
        f"Physical network: circulant({N}, [1,2]) — {graph.number_of_edges()}"
        f" links (complete graph would need {N * (N - 1) // 2})."
    )
    print(
        f"Tolerating f={F} faults needs connectivity "
        f"{required_connectivity(F)} with signatures "
        f"(vs {required_connectivity(F, with_signatures=False)} without)."
    )

    print("\nWithout path balancing:")
    unbalanced = simulate_full_connectivity(
        graph, uniform_timings(graph, LINK_D, LINK_U), F, balance=False
    )
    print(
        f"  d_eff = {unbalanced.d_eff:.2f}, u_eff = {unbalanced.u_eff:.2f} "
        f"(imbalance penalty {unbalanced.imbalance_penalty():.2f})"
    )
    try:
        unbalanced.derive_parameters(THETA)
        print("  -> parameters feasible")
    except ConfigurationError as error:
        print(f"  -> INFEASIBLE: {error}")

    print("\nWith per-hop padding to balance path lengths:")
    overlay = simulate_full_connectivity(
        graph, uniform_timings(graph, LINK_D, LINK_U), F, theta=THETA
    )
    print(f"  d_eff = {overlay.d_eff:.2f}, u_eff = {overlay.u_eff:.4f}")
    params = overlay.derive_parameters(THETA)
    print(
        f"  CPS parameters: S = {params.S:.4f}, T = {params.T:.4f} "
        f"(f = {params.f} of ceil(n/2)-1 = {max_faults(N)})"
    )

    simulation = assemble_cps_simulation(
        params, faulty=list(range(N - F, N)), seed=5, trace=False
    )
    result = simulation.run(max_pulses=10)
    report = PulseReport.from_pulses(result.honest_pulses(), warmup=3)
    print(
        f"\nRun over the virtual overlay: steady skew "
        f"{report.steady_skew:.4f} <= S = {params.S:.4f} "
        f"({'ok' if report.steady_skew <= params.S else 'VIOLATED'}), "
        f"periods in [{report.min_period:.3f}, {report.max_period:.3f}]."
    )
    assert report.max_skew <= params.S + 1e-9
    print(
        "\nTakeaway: signatures halve the connectivity requirement, but "
        "only balanced path delays keep the skew near "
        "u + (theta-1)*d rather than near d."
    )


if __name__ == "__main__":
    main()
