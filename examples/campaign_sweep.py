"""Declarative sweep campaigns: grids, parallel-ready execution, caching.

Builds a small custom CPS-skew campaign as a ``CampaignSpec`` (the same
engine behind ``repro campaign run E4 --workers 8``), executes it, then
re-executes it against a result store to show a pure cache replay —
zero new trials, byte-identical table.
"""

import shutil
import tempfile

from repro.campaigns import (
    CampaignSpec,
    MeasurementSpec,
    ResultStore,
    ScenarioSpec,
    execute_campaign,
    records_to_table,
)


def build_campaign() -> CampaignSpec:
    """A two-system, two-adversary CPS skew study with a stress tier."""
    return CampaignSpec(
        name="demo-skew",
        description="CPS skew under the timing-split attack suite",
        seed=2024,
        scenarios=(
            ScenarioSpec(
                builder="cps-skew",
                base={"d": 1.0, "clock_style": "extreme"},
                axes={
                    # Per-scale tiers: a new tier is one entry here.
                    "quick": {
                        "n": (4, 6),
                        "adversary": ("silent", "mimic-split"),
                    },
                    "full": {
                        "n": (4, 6, 9),
                        "adversary": (
                            "silent",
                            "mimic-split",
                            "equivocating-subset",
                        ),
                    },
                },
                cases={"*": ({"u": 0.01, "theta": 1.001},)},
            ),
        ),
        measurements={
            "quick": MeasurementSpec(pulses=6, warmup=2),
            "full": MeasurementSpec(pulses=15, warmup=5),
        },
    )


def main() -> None:
    spec = build_campaign()
    print(f"campaign {spec.name!r}: "
          f"{len(spec.trials_for('quick'))} quick trials, "
          f"{len(spec.trials_for('full'))} full trials")
    print(f"spec key (quick): {spec.spec_key('quick')[:16]}…")

    # Every trial gets a deterministic seed derived from the campaign
    # seed and the canonical case content — parallel execution with
    # ExecutionPolicy(workers=N) yields identical records.
    store_dir = tempfile.mkdtemp(prefix="repro-campaign-")
    try:
        store = ResultStore(store_dir)
        live = execute_campaign(spec, scale="quick", store=store)
        table = records_to_table(
            live.records,
            "Demo — CPS skew campaign (quick tier)",
            ["n", "adversary", "max_skew", "bound_S", "within", "live"],
        )
        print()
        print(table.render())
        print()
        print(live.summary())

        replay = execute_campaign(spec, scale="quick", store=store)
        replay_table = records_to_table(
            replay.records,
            "Demo — CPS skew campaign (quick tier)",
            ["n", "adversary", "max_skew", "bound_S", "within", "live"],
        )
        print(replay.summary())

        assert live.failed == 0, "demo trials must all succeed"
        assert all(record.metrics["within"] for record in live.records), (
            "Theorem 17: measured skew must stay within the bound S"
        )
        assert replay.executed == 0, "second run must be a pure replay"
        assert replay_table.render() == table.render(), (
            "cached records must reproduce the table byte-for-byte"
        )
        print()
        print("replay executed zero trials and reproduced the table "
              "byte-for-byte — caching works.")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
