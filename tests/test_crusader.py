"""Tests for Algorithm CB (Figure 4): validity + crusader consistency."""

import pytest

from repro.core.params import max_faults
from repro.crypto.pki import PublicKeyInfrastructure
from repro.sync.crusader import (
    BOT,
    CbEquivocatingDealer,
    CbSubsetDealer,
    CbValue,
    CrusaderBroadcastNode,
    resolve_crusader,
    signed_value_tag,
)
from repro.sync.round_model import SynchronousNetwork


def run_cb(n, dealer, faulty=(), adversary=None, input_value=1):
    nodes = {
        v: CrusaderBroadcastNode(dealer, input_value=input_value)
        for v in range(n)
        if v not in set(faulty)
    }
    network = SynchronousNetwork(
        nodes, n, max_faults(n), faulty, adversary
    )
    return network.run(2)


class TestResolveCrusader:
    def setup_method(self):
        self.pki = PublicKeyInfrastructure(3)
        self.instance = ("cb", 0)

    def _value(self, dealer, value):
        return CbValue(
            self.instance,
            dealer,
            value,
            self.pki.key_pair(dealer).sign(
                signed_value_tag(self.instance, value)
            ),
        )

    def test_no_direct_is_bot(self):
        assert resolve_crusader(self.instance, 0, None, []) is BOT

    def test_valid_direct_is_output(self):
        direct = self._value(0, 1)
        assert resolve_crusader(self.instance, 0, direct, [direct]) == 1

    def test_conflicting_valid_values_is_bot(self):
        direct = self._value(0, 1)
        other = self._value(0, 0)
        assert (
            resolve_crusader(self.instance, 0, direct, [direct, other])
            is BOT
        )

    def test_invalid_signature_ignored(self):
        direct = self._value(0, 1)
        # A value claiming dealer 0 but signed by node 1 is noise.
        forged = CbValue(
            self.instance,
            0,
            0,
            self.pki.key_pair(1).sign(signed_value_tag(self.instance, 0)),
        )
        assert (
            resolve_crusader(self.instance, 0, direct, [direct, forged]) == 1
        )

    def test_wrong_instance_ignored(self):
        direct = self._value(0, 1)
        stale = CbValue(
            ("cb", 99),
            0,
            0,
            self.pki.key_pair(0).sign(signed_value_tag(("cb", 99), 0)),
        )
        assert (
            resolve_crusader(self.instance, 0, direct, [direct, stale]) == 1
        )

    def test_invalid_direct_is_bot(self):
        bad_direct = CbValue(
            self.instance,
            0,
            1,
            self.pki.key_pair(1).sign(signed_value_tag(self.instance, 1)),
        )
        assert resolve_crusader(self.instance, 0, bad_direct, []) is BOT

    def test_bot_singleton_repr(self):
        assert repr(BOT) == "⊥"
        assert type(BOT)() is BOT


class TestCrusaderBroadcastProtocol:
    @pytest.mark.parametrize("n", [3, 4, 7, 10])
    def test_validity_honest_dealer(self, n):
        f = max_faults(n)
        faulty = list(range(n - f, n)) if 0 not in range(n - f, n) else []
        outputs = run_cb(n, dealer=0, faulty=faulty)
        assert all(output == 1 for output in outputs.values())

    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_consistency_equivocating_dealer(self, n):
        dealer = n - 1
        outputs = run_cb(
            n,
            dealer,
            faulty=[dealer],
            adversary=CbEquivocatingDealer(dealer, 0, 1),
        )
        non_bot = {v for v in outputs.values() if v is not BOT}
        assert len(non_bot) <= 1

    def test_equivocation_seen_by_all_yields_all_bot(self):
        # With honest echoes, every honest node sees both signed values.
        outputs = run_cb(
            4, 3, faulty=[3], adversary=CbEquivocatingDealer(3, 0, 1)
        )
        assert all(output is BOT for output in outputs.values())

    def test_subset_dealer_mixes_value_and_bot(self):
        n = 7
        dealer = n - 1
        honest = list(range(n - 1))
        subset = honest[:3]
        outputs = run_cb(
            n,
            dealer,
            faulty=[dealer],
            adversary=CbSubsetDealer(dealer, 1, subset),
        )
        for v in subset:
            assert outputs[v] == 1
        for v in honest[3:]:
            assert outputs[v] is BOT

    def test_silent_dealer_yields_all_bot(self):
        outputs = run_cb(5, dealer=4, faulty=[4])
        assert all(output is BOT for output in outputs.values())

    def test_binary_zero_value_transported(self):
        outputs = run_cb(4, dealer=0, input_value=0)
        assert all(output == 0 for output in outputs.values())
