"""Tests for pulse-derived logical clocks and the synchronizer view."""

import pytest

from repro.core.cps import assemble_cps_simulation
from repro.core.logical_clock import (
    LogicalClock,
    build_logical_clocks,
    logical_skew,
)
from repro.core.params import derive_parameters
from repro.core.synchronizer import (
    supports_round_simulation,
    synchronous_round_overhead,
    verify_round_separation,
)
from repro.sim.errors import ConfigurationError


class TestLogicalClock:
    def test_interpolates_between_pulses(self):
        clock = LogicalClock((0.0, 2.0, 4.0), nominal_period=1.0)
        assert clock.value(0.0) == 0.0
        assert clock.value(1.0) == pytest.approx(0.5)
        assert clock.value(2.0) == pytest.approx(1.0)
        assert clock.value(3.0) == pytest.approx(1.5)

    def test_extrapolates_after_last_pulse(self):
        clock = LogicalClock((0.0, 2.0), nominal_period=1.0)
        assert clock.value(4.0) == pytest.approx(2.0)

    def test_extrapolates_before_first_pulse(self):
        clock = LogicalClock((1.0, 3.0), nominal_period=1.0)
        assert clock.value(0.0) == pytest.approx(-0.5)

    def test_rate_bounds(self):
        clock = LogicalClock((0.0, 1.0, 3.0), nominal_period=1.0)
        low, high = clock.rate_bounds()
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogicalClock((0.0,), 1.0)
        with pytest.raises(ConfigurationError):
            LogicalClock((0.0, 0.0), 1.0)
        with pytest.raises(ConfigurationError):
            LogicalClock((0.0, 1.0), 0.0)

    def test_build_from_pulse_map(self):
        clocks = build_logical_clocks(
            {0: [0.0, 1.0], 1: [0.1, 1.1], 2: [5.0]}, 1.0
        )
        assert set(clocks) == {0, 1}

    def test_logical_skew_measured(self):
        clocks = build_logical_clocks(
            {0: [0.0, 1.0, 2.0], 1: [0.1, 1.1, 2.1]}, 1.0
        )
        measured = logical_skew(clocks, 0.1, 2.0, samples=50)
        assert measured == pytest.approx(0.1, abs=1e-9)

    def test_logical_skew_needs_inputs(self):
        with pytest.raises(ConfigurationError):
            logical_skew({}, 0.0, 1.0)


class TestSynchronizer:
    def test_default_parameters_support_round_simulation(self):
        for theta, u in [(1.001, 0.01), (1.02, 0.1), (1.05, 0.3)]:
            params = derive_parameters(theta, 1.0, u, 6)
            assert supports_round_simulation(params)

    def test_round_separation_on_real_cps_run(self):
        params = derive_parameters(1.001, 1.0, 0.02, 6)
        simulation = assemble_cps_simulation(params, seed=11)
        result = simulation.run(max_pulses=8)
        schedule = verify_round_separation(
            result.honest_pulses(), params.d
        )
        assert schedule.violations == []
        assert schedule.rounds == 7
        assert all(duration >= params.d for duration in schedule.durations())

    def test_round_overhead_close_to_nominal(self):
        params = derive_parameters(1.001, 1.0, 0.01, 6)
        simulation = assemble_cps_simulation(params, seed=11)
        result = simulation.run(max_pulses=8)
        overhead = synchronous_round_overhead(
            result.honest_pulses(), params.d
        )
        # Each simulated round costs about T ~ 2.1 d here; the point is
        # it is a constant near (T/d), independent of n and f.
        assert overhead == pytest.approx(params.T / params.d, rel=0.05)

    def test_detects_violations(self):
        pulses = {0: [0.0, 0.5], 1: [0.0, 0.5]}
        schedule = verify_round_separation(pulses, d=1.0)
        assert schedule.violations == [0]

    def test_requires_two_pulses(self):
        with pytest.raises(ConfigurationError):
            verify_round_separation({0: [1.0]}, d=1.0)
        with pytest.raises(ConfigurationError):
            verify_round_separation({}, d=1.0)
