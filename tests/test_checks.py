"""Tests for the conformance engine (streaming theorem-bound monitors)."""

import json
import os
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.campaigns import ResultStore
from repro.checks import (
    APA_MONITORS,
    CPS_MONITORS,
    MONITOR_CATALOG,
    ApaContractionMonitor,
    CheckSet,
    PeriodWindowMonitor,
    ProgressMonitor,
    SkewBoundMonitor,
    TcbConsistencyMonitor,
    Violation,
    applicable_monitors,
    campaign_conformance,
    campaign_scenarios,
    check_scenario,
    conformance_matrix,
    cps_check_set,
    matrix_payload_bytes,
    render_matrix,
    render_report,
    run_broken_fixture,
    run_cps_conformance,
    scenario_case,
    scenario_mode,
)
from repro.cli import main
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters
from repro.scenarios import REGISTRY
from repro.sim.adversary import SilentAdversary


# ----------------------------------------------------------------------
# Monitor unit tests (synthetic event feeds)
# ----------------------------------------------------------------------


class TestViolation:
    def test_describe_includes_context(self):
        violation = Violation(
            monitor="skew",
            message="too wide",
            observed=2.0,
            bound=1.0,
            time=3.5,
            node=4,
            pulse=7,
        )
        text = violation.describe()
        assert "skew" in text
        assert "pulse 7" in text
        assert "node 4" in text

    def test_as_dict_round_trips_json(self):
        violation = Violation("m", "msg", 1.0, 0.5)
        assert json.loads(json.dumps(violation.as_dict()))["monitor"] == "m"


class TestSkewBoundMonitor:
    def test_within_bound_passes_and_frees_state(self):
        monitor = SkewBoundMonitor(bound=1.0, honest_count=2)
        for index in range(1, 4):
            monitor.on_pulse(2.0 * index, 0, index, 0.0)
            monitor.on_pulse(2.0 * index + 0.5, 1, index, 0.0)
        assert monitor.finish().ok
        assert monitor._open == {}

    def test_violation_fires_on_partial_data(self):
        monitor = SkewBoundMonitor(bound=1.0, honest_count=3)
        monitor.on_pulse(0.0, 0, 1, 0.0)
        monitor.on_pulse(1.5, 1, 1, 0.0)  # third node never pulses
        verdict = monitor.finish()
        assert not verdict.ok
        assert verdict.violations[0].pulse == 1
        assert verdict.violations[0].observed == pytest.approx(1.5)

    def test_one_violation_per_index(self):
        monitor = SkewBoundMonitor(bound=0.1, honest_count=3)
        monitor.on_pulse(0.0, 0, 1, 0.0)
        monitor.on_pulse(1.0, 1, 1, 0.0)
        monitor.on_pulse(2.0, 2, 1, 0.0)
        assert len(monitor.violations) == 1


class TestPeriodWindowMonitor:
    def _feed(self, monitor, rounds):
        for index, (early, late) in enumerate(rounds, start=1):
            monitor.on_pulse(early, 0, index, 0.0)
            monitor.on_pulse(late, 1, index, 0.0)

    def test_periods_within_window(self):
        monitor = PeriodWindowMonitor(1.0, 3.0, honest_count=2)
        self._feed(monitor, [(0.0, 0.5), (2.0, 2.5), (4.0, 4.5)])
        verdict = monitor.finish()
        assert verdict.ok
        assert verdict.checked == 2

    def test_min_period_violation(self):
        monitor = PeriodWindowMonitor(1.0, 3.0, honest_count=2)
        # Second round starts 0.6 after the first ends: below P_min=1.
        self._feed(monitor, [(0.0, 0.5), (1.1, 1.5)])
        verdict = monitor.finish()
        assert not verdict.ok
        assert "P_min" in verdict.violations[0].message

    def test_max_period_violation(self):
        monitor = PeriodWindowMonitor(1.0, 3.0, honest_count=2)
        self._feed(monitor, [(0.0, 0.5), (2.0, 3.6)])
        verdict = monitor.finish()
        assert not verdict.ok
        assert "P_max" in verdict.violations[0].message

    def test_incomplete_final_index_skipped(self):
        monitor = PeriodWindowMonitor(1.0, 3.0, honest_count=2)
        self._feed(monitor, [(0.0, 0.5)])
        monitor.on_pulse(0.1, 0, 2, 0.0)  # node 1 never reaches pulse 2
        assert monitor.finish().ok


class TestProgressMonitor:
    def test_all_nodes_progress(self):
        monitor = ProgressMonitor(honest=[0, 1], expected=2)
        for index in (1, 2):
            monitor.on_pulse(float(index), 0, index, 0.0)
            monitor.on_pulse(float(index) + 0.1, 1, index, 0.0)
        assert monitor.finish().ok

    def test_missing_pulses_flagged_at_finish(self):
        monitor = ProgressMonitor(honest=[0, 1], expected=2)
        monitor.on_pulse(1.0, 0, 1, 0.0)
        verdict = monitor.finish()
        messages = [v.message for v in verdict.violations]
        assert any("of the expected 2" in m for m in messages)
        # Both the short node and the silent node are reported.
        assert {v.node for v in verdict.violations} == {0, 1}

    def test_non_increasing_time_flagged(self):
        monitor = ProgressMonitor(honest=[0], expected=2)
        monitor.on_pulse(1.0, 0, 1, 0.0)
        monitor.on_pulse(1.0, 0, 2, 0.0)
        assert not monitor.finish().ok


class TestTcbConsistencyMonitor:
    @staticmethod
    def _summary(pulse_round, estimates):
        return SimpleNamespace(pulse_round=pulse_round, estimates=estimates)

    def test_tight_acceptances_pass(self):
        monitor = TcbConsistencyMonitor(window=0.1, honest_count=2)
        monitor.on_annotate(1.00, 0, "tcb-accept", (1, 5))
        monitor.on_annotate(1.05, 1, "tcb-accept", (1, 5))
        monitor.on_annotate(2.0, 0, "cps-round", self._summary(1, {5: 0.3}))
        monitor.on_annotate(2.1, 1, "cps-round", self._summary(1, {5: 0.3}))
        verdict = monitor.finish()
        assert verdict.ok
        assert verdict.checked == 1

    def test_wide_spread_fires(self):
        monitor = TcbConsistencyMonitor(window=0.1, honest_count=2)
        monitor.on_annotate(1.0, 0, "tcb-accept", (1, 5))
        monitor.on_annotate(1.5, 1, "tcb-accept", (1, 5))
        monitor.on_annotate(2.0, 0, "cps-round", self._summary(1, {5: 0.3}))
        monitor.on_annotate(2.1, 1, "cps-round", self._summary(1, {5: 0.3}))
        verdict = monitor.finish()
        assert not verdict.ok
        violation = verdict.violations[0]
        assert violation.node == 5
        assert violation.observed == pytest.approx(0.5)

    def test_rejected_acceptances_do_not_count(self):
        from repro.sync.crusader import BOT

        monitor = TcbConsistencyMonitor(window=0.1, honest_count=2)
        monitor.on_annotate(1.0, 0, "tcb-accept", (1, 5))
        monitor.on_annotate(1.5, 1, "tcb-accept", (1, 5))
        # Node 1's instance was later rejected to ⊥ — its acceptance
        # must not enter the Lemma 11 group.
        monitor.on_annotate(2.0, 0, "cps-round", self._summary(1, {5: 0.3}))
        monitor.on_annotate(2.1, 1, "cps-round", self._summary(1, {5: BOT}))
        assert monitor.finish().ok

    def test_partial_round_evaluated_at_finish(self):
        monitor = TcbConsistencyMonitor(window=0.1, honest_count=3)
        monitor.on_annotate(1.0, 0, "tcb-accept", (1, 5))
        monitor.on_annotate(1.5, 1, "tcb-accept", (1, 5))
        monitor.on_annotate(2.0, 0, "cps-round", self._summary(1, {5: 0.3}))
        monitor.on_annotate(2.1, 1, "cps-round", self._summary(1, {5: 0.3}))
        # The third summary never arrives; finish still judges the pair.
        assert not monitor.finish().ok


class TestApaContractionMonitor:
    def test_halving_trajectory_passes(self):
        monitor = ApaContractionMonitor()
        monitor.observe_ranges([64.0, 32.0, 16.0, 8.0])
        verdict = monitor.finish()
        assert verdict.ok
        assert verdict.checked == 4  # 3 pairs + cumulative bound

    def test_slow_contraction_fires(self):
        monitor = ApaContractionMonitor()
        monitor.observe_ranges([64.0, 40.0])
        verdict = monitor.finish()
        assert not verdict.ok
        assert verdict.violations[0].observed == pytest.approx(40.0)


class TestCheckSet:
    def test_fans_out_and_aggregates(self):
        skew = SkewBoundMonitor(bound=0.1, honest_count=2)
        progress = ProgressMonitor(honest=[0, 1], expected=1)
        checks = CheckSet([skew, progress])
        checks.on_pulse(0.0, 0, 1, 0.0)
        checks.on_pulse(5.0, 1, 1, 5.0)
        verdicts = checks.finish()
        assert [v.monitor for v in verdicts] == ["skew", "progress"]
        assert not checks.ok
        assert len(checks.violations()) == 1


# ----------------------------------------------------------------------
# Scheduler integration: the checks= hook
# ----------------------------------------------------------------------


class _RecordingChecks(CheckSet):
    """A CheckSet that also journals every callback it receives."""

    __slots__ = ("pulses", "annotations")

    def __init__(self, monitors=()):
        super().__init__(monitors)
        self.pulses = []
        self.annotations = []

    def on_pulse(self, time, node, index, local_time):
        self.pulses.append((node, index, time))
        super().on_pulse(time, node, index, local_time)

    def on_annotate(self, time, node, kind, details):
        self.annotations.append(kind)
        super().on_annotate(time, node, kind, details)


class TestChecksHook:
    def _build(self, checks=None, trace="pulses"):
        params = derive_parameters(1.001, 1.0, 0.02, 6)
        faulty = list(range(6 - params.f, 6))
        return assemble_cps_simulation(
            params,
            faulty=faulty,
            behavior=SilentAdversary(),
            seed=7,
            clock_style="extreme",
            trace=trace,
            checks=checks,
        )

    def test_hook_sees_every_pulse_and_annotation(self):
        checks = _RecordingChecks()
        result = self._build(checks=checks).run(max_pulses=5)
        observed = {}
        for node, index, time in checks.pulses:
            observed.setdefault(node, []).append(time)
        assert observed == result.honest_pulses()
        assert "cps-round" in checks.annotations
        assert "tcb-accept" in checks.annotations

    def test_hook_does_not_perturb_execution(self):
        plain = self._build().run(max_pulses=5)
        checked = self._build(checks=_RecordingChecks()).run(max_pulses=5)
        assert plain.pulses == checked.pulses
        assert plain.events_processed == checked.events_processed

    def test_annotations_flow_at_pulses_trace_level(self):
        """The hook is independent of the trace level: Lemma 11 data
        arrives even when no ProtocolRecord is ever allocated."""
        checks = _RecordingChecks()
        result = self._build(checks=checks, trace="pulses").run(
            max_pulses=5
        )
        assert "tcb-accept" in checks.annotations
        assert len(result.trace.protocol_events()) == 0

    def test_attach_checks_after_construction(self):
        simulation = self._build()
        checks = _RecordingChecks()
        simulation.attach_checks(checks)
        simulation.run(max_pulses=3)
        assert checks.pulses


# ----------------------------------------------------------------------
# Conformance runs over the registry
# ----------------------------------------------------------------------


class TestScenarioApplicability:
    def test_modes_cover_the_whole_registry(self):
        from repro.checks import MODE_MONITORS

        for entry in REGISTRY.entries():
            mode = scenario_mode(entry.kind, entry.key)
            assert mode in ("cps", "apa", "churn")
            monitors = applicable_monitors(entry.kind, entry.key)
            assert monitors == MODE_MONITORS[mode]
            if entry.kind == "churn":
                assert mode == "churn"

    def test_apa_mode_is_exactly_the_apa_tagged_adversaries(self):
        apa = {
            entry.key
            for entry in REGISTRY.entries("adversary")
            if "apa" in entry.tags
        }
        assert apa == {
            entry.key
            for entry in REGISTRY.entries("adversary")
            if scenario_mode("adversary", entry.key) == "apa"
        }

    def test_scenario_case_plugs_key_into_base(self):
        case = scenario_case("delay", "eclipse")
        assert case["delay"] == "eclipse"
        assert case["adversary"] == "silent"
        assert scenario_case("topology", "circulant")["n"] == 8


class TestCheckScenario:
    def test_cps_scenario_reports_all_monitors(self):
        report = check_scenario("adversary", "mimic-split")
        assert report.ok
        assert tuple(v.monitor for v in report.verdicts) == CPS_MONITORS
        assert all(v.checked > 0 for v in report.verdicts)
        assert "PASS" in render_report(report)

    def test_apa_scenario_reports_contraction(self):
        report = check_scenario("adversary", "split-bot")
        assert report.ok
        assert report.mode == "apa"
        assert [v.monitor for v in report.verdicts] == ["apa-contraction"]

    def test_errors_are_tabulated_not_raised(self):
        with pytest.raises(Exception):
            REGISTRY.get("adversary", "no-such-key")
        report = check_scenario("adversary", "no-such-key")
        assert not report.ok
        assert report.error is not None


class TestConformanceMatrix:
    def test_every_registry_scenario_passes_quick(self):
        """The acceptance criterion: PASS for every applicable
        scenario x monitor pair at quick scale."""
        payload = conformance_matrix("quick")
        assert payload["total"] == len(REGISTRY)
        assert payload["failed"] == []
        assert payload["pass"] is True
        from repro.checks import MODE_MONITORS

        for entry in payload["scenarios"]:
            assert entry["ok"], entry
            expected = MODE_MONITORS[entry["mode"]]
            assert tuple(
                v["monitor"] for v in entry["verdicts"]
            ) == expected
            assert all(v["ok"] for v in entry["verdicts"])

    def test_matrix_payload_is_deterministic(self):
        one = conformance_matrix("quick", kinds=("drift",))
        two = conformance_matrix("quick", kinds=("drift",))
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )

    def test_render_lists_every_scenario(self):
        payload = conformance_matrix("quick", kinds=("topology",))
        text = render_matrix(payload)
        for entry in REGISTRY.entries("topology"):
            assert entry.qualified in text
        assert "PASS" in text

    def test_monitor_catalog_matches_columns(self):
        payload = conformance_matrix("quick", kinds=("topology",))
        assert payload["monitors"] == list(MONITOR_CATALOG)

    def test_matrix_bytes_match_committed_baseline(self):
        """The telemetry-overhead acceptance gate: with instrumentation
        disabled (the default), the full 32-scenario matrix reproduces
        the committed ``results/conformance.json`` byte for byte."""
        baseline = os.path.join(
            os.path.dirname(__file__), "..", "results", "conformance.json"
        )
        with open(baseline, "rb") as handle:
            expected = handle.read()
        payload = conformance_matrix("quick", seed=0)
        assert matrix_payload_bytes(payload) == expected

    def test_matrix_bytes_unchanged_under_telemetry(self):
        """An active telemetry handle observes but never perturbs:
        verdict payloads stay byte-identical."""
        from repro.telemetry import Telemetry, telemetry_session

        bare = matrix_payload_bytes(
            conformance_matrix("quick", kinds=("drift",))
        )
        telemetry = Telemetry()
        with telemetry_session(telemetry):
            instrumented = matrix_payload_bytes(
                conformance_matrix("quick", kinds=("drift",))
            )
        assert instrumented == bare
        assert telemetry.counters["pulses.recorded"] > 0


class TestBrokenFixture:
    def test_monitors_fire_on_the_broken_execution(self):
        """The acceptance criterion: the deliberately-broken adversary
        fixture reports at least one Violation."""
        verdicts, result = run_broken_fixture()
        violations = [v for verdict in verdicts for v in verdict.violations]
        assert violations
        skew = [v for v in violations if v.monitor == "skew"]
        assert skew, "the u_tilde >> u corner must break the skew bound"
        assert all(v.observed > v.bound for v in skew)
        # The run itself stays live — only the bound breaks.
        assert result.honest_pulses()


# ----------------------------------------------------------------------
# Differential: trace levels and monitor verdicts (satellite 2)
# ----------------------------------------------------------------------


#: Seeded sample across all four registry kinds.
DIFFERENTIAL_SAMPLE = (
    ("adversary", "mimic-split", 101),
    ("adversary", "coordinated-offset", 202),
    ("delay", "eclipse", 303),
    ("drift", "staggered", 404),
    ("topology", "circulant", 505),
)


class TestTraceLevelDifferential:
    @pytest.mark.parametrize("kind,key,seed", DIFFERENTIAL_SAMPLE)
    def test_pulses_and_verdicts_identical_across_levels(
        self, kind, key, seed
    ):
        case = scenario_case(kind, key)
        by_level = {}
        for level in ("pulses", "full"):
            verdicts, result = run_cps_conformance(
                case, pulses=6, seed=seed, trace=level
            )
            by_level[level] = (
                result.pulses,
                result.events_processed,
                [v.as_dict() for v in verdicts],
            )
        assert by_level["pulses"] == by_level["full"]


# ----------------------------------------------------------------------
# Campaign integration: --check artifacts
# ----------------------------------------------------------------------


class TestCampaignConformance:
    def test_scenarios_collected_from_grid(self):
        from repro.analysis.experiments import e4_campaign

        found = campaign_scenarios(e4_campaign(), "quick")
        assert ("adversary", "mimic-split") in found
        assert ("adversary", "silent") in found

    def test_non_registry_axes_ignored(self):
        from repro.analysis.experiments import e5_campaign

        found = campaign_scenarios(e5_campaign(), "quick")
        assert all(kind in ("adversary", "delay") for kind, _ in found)

    def test_check_artifact_round_trips_byte_stably(self, tmp_path):
        """The acceptance criterion: two runs with the same seed write
        byte-identical <spec_key>.check.json artifacts."""
        from repro.analysis.experiments import e1_campaign

        spec = e1_campaign()
        store = ResultStore(str(tmp_path))
        key = spec.spec_key("quick")
        contents = []
        for _ in range(2):
            payload = campaign_conformance(spec, "quick")
            path = store.write_summary(key, payload, kind="check")
            with open(path, "rb") as handle:
                contents.append(handle.read())
        assert contents[0] == contents[1]
        loaded = store.load_summary(key, kind="check")
        assert loaded["pass"] is True
        assert loaded["campaign"] == "E1"
        assert loaded["spec_key"] == key

    def test_campaign_run_check_cli(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        assert (
            main(
                ["campaign", "run", "E1", "--check", "--store", store]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "conformance [E1]: 3 referenced scenario(s)" in out
        assert ".check.json" in out


# ----------------------------------------------------------------------
# CLI: repro check ...
# ----------------------------------------------------------------------


class TestCheckCli:
    def test_list_names_every_monitor(self, capsys):
        assert main(["check", "list"]) == 0
        out = capsys.readouterr().out
        for name in MONITOR_CATALOG:
            assert name in out

    def test_run_single_scenario(self, capsys):
        assert main(["check", "run", "eclipse"]) == 0
        out = capsys.readouterr().out
        assert "delay:eclipse" in out
        assert "PASS" in out

    def test_run_with_monitor_filter(self, capsys):
        assert (
            main(
                [
                    "check", "run", "random", "--kind", "drift",
                    "--monitor", "skew",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skew" in out
        assert "tcb-consistency" not in out

    def test_matrix_writes_verdicts_json(self, tmp_path, capsys):
        out_path = os.path.join(tmp_path, "conformance.json")
        assert (
            main(
                [
                    "check", "matrix", "--kind", "drift",
                    "--out", out_path,
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "drift:staggered" in text
        with open(out_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["pass"] is True
        assert payload["total"] == len(REGISTRY.entries("drift"))

    def test_fixture_detects_violations(self, capsys):
        assert main(["check", "fixture"]) == 0
        out = capsys.readouterr().out
        assert "the monitors fire" in out


class TestCheckCliErrors:
    def test_unknown_scenario_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean 'eclipse'"):
            main(["check", "run", "eclips"])

    def test_ambiguous_key_requires_kind(self):
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["check", "run", "random"])

    def test_unknown_monitor_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean 'skew'"):
            main(["check", "run", "eclipse", "--monitor", "skw"])

    def test_non_applicable_monitor_is_rejected(self):
        with pytest.raises(SystemExit, match="not applicable"):
            main(
                [
                    "check", "run", "eclipse",
                    "--monitor", "apa-contraction",
                ]
            )

    def test_apa_scenario_rejects_cps_monitor(self):
        with pytest.raises(SystemExit, match="not applicable"):
            main(["check", "run", "split-bot", "--monitor", "skew"])


class TestVerdictFiltering:
    def test_report_filter_keeps_requested_monitors(self):
        report = check_scenario("delay", "minimum")
        filtered = replace(
            report,
            verdicts=tuple(
                v for v in report.verdicts if v.monitor == "skew"
            ),
        )
        assert [v.monitor for v in filtered.verdicts] == ["skew"]
        assert filtered.ok
