"""Campaign engine: specs, executor, result store, aggregation, shim.

The satellite guarantees under test:

* grids come from declarative per-scale specs (``grid_for``), with
  deterministic per-case seeds independent of dict ordering;
* the result store round-trips records (including errors), hits the
  cache on identical keys, misses on changed parameters, and resumes
  partially-run campaigns by executing only the missing cases;
* serial and process-pool execution produce identical aggregated rows;
* ``analysis.runner.sweep`` stays a behavior-compatible shim that can
  thread explicit seeds through ``build``.
"""

import math
import time

import pytest

from repro.analysis.runner import sweep
from repro.campaigns import (
    CampaignSpec,
    ExecutionPolicy,
    MeasurementSpec,
    ResultStore,
    ScenarioSpec,
    TrialRecord,
    campaign_definition,
    derive_seed,
    execute_campaign,
    register_builder,
    resolve_builder,
)
from repro.campaigns.aggregate import (
    failure_counts,
    group_by,
    records_to_table,
    run_summary_table,
    summary_stats,
    value_of,
)
from repro.core.cps import assemble_cps_simulation
from repro.core.params import derive_parameters


# ----------------------------------------------------------------------
# Cheap builders for executor tests (fork start method: registrations
# made at import time here are inherited by pool workers).
# ----------------------------------------------------------------------


@register_builder("test-square")
def _square_trial(case, measurement, seed):
    return {"square": case["x"] ** 2, "seed_used": seed}


@register_builder("test-boom")
def _boom_trial(case, measurement, seed):
    raise ValueError(f"boom on {case['x']}")


@register_builder("test-sleep")
def _sleep_trial(case, measurement, seed):
    time.sleep(case.get("delay", 1.0))
    return {"slept": True}


def _square_spec(xs=(1, 2, 3), name="squares", seed=0):
    return CampaignSpec(
        name=name,
        scenarios=(
            ScenarioSpec(builder="test-square", axes={"*": {"x": xs}}),
        ),
        seed=seed,
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


class TestScenarioSpec:
    def test_grid_is_cartesian_product_in_axis_order(self):
        scenario = ScenarioSpec(
            builder="b",
            base={"c": 0},
            axes={"*": {"a": (1, 2), "b": ("x", "y")}},
        )
        grid = scenario.grid_for("quick")
        assert grid == [
            {"c": 0, "a": 1, "b": "x"},
            {"c": 0, "a": 1, "b": "y"},
            {"c": 0, "a": 2, "b": "x"},
            {"c": 0, "a": 2, "b": "y"},
        ]

    def test_explicit_cases_cross_axes_cases_outermost(self):
        scenario = ScenarioSpec(
            builder="b",
            axes={"*": {"adv": ("s", "m")}},
            cases={"*": ({"n": 6}, {"n": 9})},
        )
        grid = scenario.grid_for("quick")
        assert [(case["n"], case["adv"]) for case in grid] == [
            (6, "s"), (6, "m"), (9, "s"), (9, "m"),
        ]

    def test_unknown_scale_falls_back_to_full(self):
        scenario = ScenarioSpec(
            builder="b",
            axes={"quick": {"x": (1,)}, "full": {"x": (1, 2, 3)}},
        )
        assert len(scenario.grid_for("stress")) == 3

    def test_stress_tier_is_one_line(self):
        scenario = ScenarioSpec(
            builder="b",
            axes={
                "quick": {"x": (1,)},
                "full": {"x": (1, 2)},
                "stress": {"x": tuple(range(50))},
            },
        )
        assert len(scenario.grid_for("stress")) == 50
        assert len(scenario.grid_for("quick")) == 1

    def test_case_overrides_base(self):
        scenario = ScenarioSpec(
            builder="b", base={"x": 1}, cases={"*": ({"x": 7},)}
        )
        assert scenario.grid_for("quick") == [{"x": 7}]


class TestSeeds:
    def test_derived_seed_ignores_dict_ordering(self):
        a = derive_seed(9, "b", {"n": 6, "u": 0.01})
        b = derive_seed(9, "b", {"u": 0.01, "n": 6})
        assert a == b

    def test_derived_seed_varies_with_content(self):
        base = derive_seed(9, "b", {"n": 6})
        assert derive_seed(9, "b", {"n": 7}) != base
        assert derive_seed(8, "b", {"n": 6}) != base
        assert derive_seed(9, "c", {"n": 6}) != base

    def test_pinned_seed_wins_over_derivation(self):
        spec = CampaignSpec(
            name="pinned",
            scenarios=(
                ScenarioSpec(
                    builder="test-square",
                    base={"seed": 42},
                    axes={"*": {"x": (1, 2)}},
                ),
            ),
            seed=7,
        )
        assert [plan.seed for plan in spec.trials_for("quick")] == [42, 42]

    def test_trials_get_distinct_derived_seeds(self):
        plans = _square_spec().trials_for("quick")
        seeds = [plan.seed for plan in plans]
        assert len(set(seeds)) == len(seeds)


class TestKeys:
    def test_case_key_misses_on_changed_parameter(self):
        one = _square_spec(xs=(1,)).trials_for("quick")[0]
        other = _square_spec(xs=(2,)).trials_for("quick")[0]
        assert one.case_key != other.case_key

    def test_case_key_misses_on_changed_measurement(self):
        spec = _square_spec(xs=(1,))
        loose = CampaignSpec(
            name=spec.name,
            scenarios=spec.scenarios,
            measurements={"*": MeasurementSpec(pulses=99)},
        )
        assert (
            spec.trials_for("quick")[0].case_key
            != loose.trials_for("quick")[0].case_key
        )

    def test_spec_key_survives_grid_extension(self):
        # The store file is addressed by spec key; extending an axis
        # must keep it stable so --resume only runs the missing cases.
        assert (
            _square_spec(xs=(1, 2)).spec_key("quick")
            == _square_spec(xs=(1, 2, 3)).spec_key("quick")
        )

    def test_spec_key_changes_with_seed_and_scale(self):
        spec = _square_spec()
        assert spec.spec_key("quick") != spec.spec_key("full")
        assert (
            spec.spec_key("quick")
            != _square_spec(seed=1).spec_key("quick")
        )


class TestMeasurementSpec:
    def test_rejects_unknown_liveness(self):
        with pytest.raises(ValueError):
            MeasurementSpec(liveness="explode")

    def test_measurement_fallback_chain(self):
        spec = CampaignSpec(
            name="m",
            scenarios=(ScenarioSpec(builder="test-square"),),
            measurements={
                "quick": MeasurementSpec(pulses=1),
                "full": MeasurementSpec(pulses=2),
            },
        )
        assert spec.measurement_for("quick").pulses == 1
        assert spec.measurement_for("stress").pulses == 2

    def test_missing_measurement_raises(self):
        spec = CampaignSpec(
            name="m",
            scenarios=(ScenarioSpec(builder="test-square"),),
            measurements={"quick": MeasurementSpec()},
        )
        with pytest.raises(KeyError):
            spec.measurement_for("full")


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------


def _record(case_key="k1", index=0, **overrides):
    payload = dict(
        campaign="c",
        builder="test-square",
        case={"x": 1, "u": 0.07},
        seed=3,
        case_key=case_key,
        index=index,
        metrics={"square": 1, "skew": 0.1234567890123456,
                 "dead": float("inf"), "nan": float("nan")},
        error=None,
        duration=0.5,
    )
    payload.update(overrides)
    return TrialRecord(**payload)


class TestResultStore:
    def test_round_trip_including_error_and_nonfinite(self, tmp_path):
        store = ResultStore(tmp_path)
        ok = _record()
        bad = _record(
            case_key="k2", index=1, metrics={},
            error="ValueError: boom",
        )
        store.append("spec", ok)
        store.append("spec", bad)
        loaded = store.load("spec")
        assert set(loaded) == {"k1", "k2"}
        back = loaded["k1"]
        assert back.metrics["skew"] == ok.metrics["skew"]  # exact float
        assert back.metrics["dead"] == float("inf")
        assert math.isnan(back.metrics["nan"])
        assert back.case == ok.case and back.seed == ok.seed
        assert loaded["k2"].error == "ValueError: boom"
        assert not loaded["k2"].ok

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(metrics={"square": 1}))
        store.append("spec", _record(metrics={"square": 99}))
        assert store.load("spec")["k1"].metrics["square"] == 99

    def test_torn_final_line_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record())
        with open(store.path_for("spec"), "a") as handle:
            handle.write('{"campaign": "c", "trunc')
        assert set(store.load("spec")) == {"k1"}

    def test_read_only_use_creates_no_directory(self, tmp_path):
        root = tmp_path / "never-written"
        store = ResultStore(root)
        assert store.keys() == []
        assert store.load("missing") == {}
        assert store.count("missing") == 0
        assert not root.exists()

    def test_keys_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("a", _record())
        store.append("b", _record())
        assert store.keys() == ["a", "b"]
        store.clear("a")
        assert store.keys() == ["b"]
        store.clear()
        assert store.keys() == []


class TestCaching:
    def test_rerun_with_store_executes_zero_trials(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _square_spec()
        first = execute_campaign(spec, store=store)
        again = execute_campaign(spec, store=store)
        assert first.executed == 3 and first.cached == 0
        assert again.executed == 0 and again.cached == 3
        assert [r.metrics["square"] for r in again.records] == [1, 4, 9]
        assert all(record.cached for record in again.records)

    def test_resume_runs_only_missing_cases(self, tmp_path):
        store = ResultStore(tmp_path)
        execute_campaign(_square_spec(xs=(1, 2)), store=store)
        resumed = execute_campaign(_square_spec(xs=(1, 2, 3, 4)),
                                   store=store)
        assert resumed.cached == 2
        assert resumed.executed == 2
        assert [r.metrics["square"] for r in resumed.records] == [
            1, 4, 9, 16,
        ]

    def test_changed_parameter_is_a_cache_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        execute_campaign(_square_spec(xs=(1,)), store=store)
        rerun = execute_campaign(_square_spec(xs=(5,)), store=store)
        assert rerun.executed == 1 and rerun.cached == 0

    def test_fresh_ignores_cache_but_still_records(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _square_spec()
        execute_campaign(spec, store=store)
        fresh = execute_campaign(spec, store=store, reuse=False)
        assert fresh.executed == 3 and fresh.cached == 0


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


class TestExecutorSerial:
    def test_records_in_plan_order_with_metrics(self):
        run = execute_campaign(_square_spec())
        assert [r.metrics["square"] for r in run.records] == [1, 4, 9]
        assert [r.index for r in run.records] == [0, 1, 2]

    def test_builder_failure_is_tabulated_not_raised(self):
        spec = CampaignSpec(
            name="boomy",
            scenarios=(
                ScenarioSpec(builder="test-boom", axes={"*": {"x": (1,)}}),
                ScenarioSpec(
                    builder="test-square", axes={"*": {"x": (2,)}}
                ),
            ),
        )
        run = execute_campaign(spec)
        assert run.failed == 1
        assert run.records[0].error == "ValueError: boom on 1"
        assert run.records[1].metrics["square"] == 4

    def test_store_write_failure_propagates_not_misrouted(self):
        # An on_result (persist) failure is an environment problem and
        # must propagate — not be recorded as a failure of the trial,
        # and not trigger a second write attempt.
        class ExplodingStore:
            def __init__(self):
                self.appends = 0

            def load(self, key):
                return {}

            def append(self, key, record):
                self.appends += 1
                raise OSError("disk full")

        store = ExplodingStore()
        with pytest.raises(OSError, match="disk full"):
            execute_campaign(_square_spec(xs=(1,)), store=store)
        assert store.appends == 1

    def test_unknown_builder_is_tabulated(self):
        spec = CampaignSpec(
            name="ghost",
            scenarios=(ScenarioSpec(builder="no-such-builder"),),
        )
        run = execute_campaign(spec)
        assert run.failed == 1
        assert "KeyError" in run.records[0].error

    def test_module_colon_function_builder_resolution(self):
        builder = resolve_builder(
            "repro.campaigns.builders:apa_convergence_trial"
        )
        metrics = builder(
            {"n": 5, "adversary": "extreme-values"},
            MeasurementSpec(),
            0,
        )
        assert metrics["halved"] and metrics["validity"]


class TestExecutorParallel:
    def test_worker_pool_matches_serial_rows(self):
        # Satellite: workers=1 and workers=4 must yield identical
        # aggregated rows.  Use the (real) ported E1 campaign.
        definition = campaign_definition("E1")
        serial = execute_campaign(definition.spec(), scale="quick")
        pooled = execute_campaign(
            definition.spec(),
            scale="quick",
            policy=ExecutionPolicy(workers=4, chunk_size=2),
        )
        assert (
            definition.tabulate(serial).render()
            == definition.tabulate(pooled).render()
        )
        for left, right in zip(serial.records, pooled.records):
            assert left.metrics == right.metrics
            assert left.seed == right.seed

    def test_parallel_square_campaign_order_and_values(self):
        run = execute_campaign(
            _square_spec(xs=tuple(range(9))),
            policy=ExecutionPolicy(workers=3, chunk_size=2),
        )
        assert [r.metrics["square"] for r in run.records] == [
            x ** 2 for x in range(9)
        ]

    def test_per_trial_timeout_tabulated(self):
        spec = CampaignSpec(
            name="sleepy",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    base={"delay": 1.0},
                    axes={"*": {"x": (1, 2)}},
                ),
            ),
        )
        run = execute_campaign(
            spec,
            policy=ExecutionPolicy(
                workers=2, chunk_size=1, timeout=0.1
            ),
        )
        assert run.failed == 2
        assert all(
            "TimeoutError" in record.error for record in run.records
        )

    def test_hung_worker_does_not_block_pool_shutdown(self):
        # A single hung trial must not stall the run for its full
        # duration: past the budget the worker is terminated.
        spec = CampaignSpec(
            name="hung",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    base={"delay": 30.0},
                    axes={"*": {"x": (1,)}},
                ),
            ),
        )
        start = time.perf_counter()
        run = execute_campaign(
            spec,
            policy=ExecutionPolicy(workers=2, chunk_size=1, timeout=0.2),
        )
        elapsed = time.perf_counter() - start
        assert run.failed == 1
        assert "TimeoutError" in run.records[0].error
        assert elapsed < 10.0, f"pool shutdown blocked for {elapsed:.1f}s"

    def test_timeout_applies_to_single_item_runs(self):
        # The serial shortcut must not bypass a requested timeout.
        spec = CampaignSpec(
            name="single-sleepy",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    base={"delay": 30.0, "x": 1},
                ),
            ),
        )
        start = time.perf_counter()
        run = execute_campaign(
            spec, policy=ExecutionPolicy(workers=2, timeout=0.2)
        )
        assert run.failed == 1
        assert time.perf_counter() - start < 10.0

    def test_transient_timeout_failures_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = CampaignSpec(
            name="flaky",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    base={"delay": 0.3, "x": 1},
                ),
            ),
        )
        first = execute_campaign(
            spec,
            store=store,
            policy=ExecutionPolicy(workers=2, chunk_size=1, timeout=0.05),
        )
        assert first.failed == 1
        # The timeout was an environment artifact: a later run without
        # the tight budget retries the case instead of replaying it.
        second = execute_campaign(spec, store=store)
        assert second.executed == 1 and second.cached == 0
        assert second.failed == 0
        assert second.records[0].metrics == {"slept": True}

    def test_deterministic_builder_failures_are_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = CampaignSpec(
            name="boom-cache",
            scenarios=(
                ScenarioSpec(builder="test-boom", axes={"*": {"x": (1,)}}),
            ),
        )
        execute_campaign(spec, store=store)
        replay = execute_campaign(spec, store=store)
        assert replay.executed == 0 and replay.cached == 1
        assert replay.failed == 1


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------


class TestAggregate:
    def test_value_of_prefers_case_then_metrics(self):
        record = _record()
        assert value_of(record, "x") == 1
        assert value_of(record, "square") == 1
        assert value_of(record, "missing", default=None) is None
        with pytest.raises(KeyError):
            value_of(record, "missing")

    def test_group_by_and_summary_stats(self):
        run = execute_campaign(_square_spec(xs=(1, 2, 2, 3)))
        groups = group_by(run.records, ["x"])
        assert [key for key in groups] == [(1,), (2,), (3,)]
        assert len(groups[(2,)]) == 2
        stats = summary_stats(
            value_of(record, "square") for record in run.records
        )
        assert stats["count"] == 4
        assert stats["min"] == 1 and stats["max"] == 9
        assert stats["mean"] == pytest.approx((1 + 4 + 4 + 9) / 4)

    def test_summary_stats_ignores_nonfinite(self):
        stats = summary_stats([1.0, float("inf"), float("nan"), 3.0])
        assert stats["count"] == 2 and stats["mean"] == 2.0

    def test_failure_counts_by_error_type(self):
        records = [
            _record(),
            _record(case_key="k2", error="ValueError: a"),
            _record(case_key="k3", error="ValueError: b"),
            _record(case_key="k4", error="TimeoutError: slow"),
        ]
        assert failure_counts(records) == {
            "ValueError": 2, "TimeoutError": 1,
        }

    def test_records_to_table_default_row_puller(self):
        run = execute_campaign(_square_spec(xs=(2, 3)))
        table = records_to_table(
            run.records, "squares", ["x", "square"]
        )
        assert table.rows == [(2, 4), (3, 9)]

    def test_run_summary_table_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _square_spec()
        execute_campaign(spec, store=store)
        run = execute_campaign(spec, store=store)
        table = run_summary_table(run)
        assert table.rows[0][:5] == ("test-square", 3, 0, 3, 0)


# ----------------------------------------------------------------------
# Ported experiments through the engine
# ----------------------------------------------------------------------


class TestCampaignPorts:
    def test_all_four_experiments_registered(self):
        from repro.campaigns import available_campaigns

        assert {"E1", "E4", "E5", "E6"} <= set(available_campaigns())

    def test_e1_store_replay_is_byte_stable(self, tmp_path):
        definition = campaign_definition("E1")
        store = ResultStore(tmp_path)
        live = execute_campaign(definition.spec(), store=store)
        replay = execute_campaign(definition.spec(), store=store)
        assert replay.executed == 0
        assert (
            definition.tabulate(live).render()
            == definition.tabulate(replay).render()
        )


# ----------------------------------------------------------------------
# The runner.sweep compatibility shim
# ----------------------------------------------------------------------


def _build_tiny_cps(n=4, seed=0):
    params = derive_parameters(1.001, 1.0, 0.01, n)
    return assemble_cps_simulation(params, seed=seed)


class TestSweepShim:
    def test_sweep_without_seed_is_backward_compatible(self):
        rows = sweep([{"n": 4}], _build_tiny_cps, pulses=2)
        assert len(rows) == 1
        assert "seed" not in rows[0]
        assert rows[0]["outcome"].live

    def test_sweep_threads_derived_seeds_through_build(self):
        rows = sweep(
            [{"n": 4}, {"n": 5}], _build_tiny_cps, pulses=2, seed=77
        )
        assert all("seed" in row for row in rows)
        assert rows[0]["seed"] != rows[1]["seed"]

    def test_derived_seed_independent_of_config_key_order(self):
        first = sweep(
            [{"n": 4, "seed": 11}], _build_tiny_cps, pulses=2, seed=77
        )
        # pinned seed: not overridden, not re-derived
        assert first[0]["seed"] == 11
        a = sweep([{"n": 4}], _build_tiny_cps, pulses=2, seed=77)
        b = sweep([{"n": 4}], _build_tiny_cps, pulses=2, seed=77)
        assert a[0]["seed"] == b[0]["seed"]

    def test_sweep_parallel_matches_serial(self):
        configs = [{"n": 4}, {"n": 5}]
        serial = sweep(configs, _build_tiny_cps, pulses=2, seed=3)
        pooled = sweep(
            configs, _build_tiny_cps, pulses=2, seed=3, workers=2
        )
        for left, right in zip(serial, pooled):
            assert left["seed"] == right["seed"]
            assert (
                left["outcome"].report.max_skew
                == right["outcome"].report.max_skew
            )


# ----------------------------------------------------------------------
# Sharded store, corruption policy, policy validation, timeout
# accounting (ISSUE 9 tentpole + satellite bugfixes)
# ----------------------------------------------------------------------


class TestShardedStore:
    def test_shard_append_routes_to_shard_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(case_key="k1"), shard="w1")
        store.append("spec", _record(case_key="k2"), shard="w2")
        assert store.shards("spec") == ["w1", "w2"]
        assert (tmp_path / "spec" / "w1.jsonl").exists()
        assert not (tmp_path / "spec.jsonl").exists()
        assert set(store.load("spec")) == {"k1", "k2"}

    def test_constructor_shard_is_default_write_target(self, tmp_path):
        store = ResultStore(tmp_path, shard="w9")
        store.append("spec", _record())
        assert store.shards("spec") == ["w9"]

    def test_cross_shard_dedup_last_shard_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(metrics={"square": 1}))
        store.append(
            "spec", _record(metrics={"square": 2}), shard="a"
        )
        store.append(
            "spec", _record(metrics={"square": 3}), shard="b"
        )
        # base first, then shards in sorted order: "b" wins.
        assert store.load("spec")["k1"].metrics["square"] == 3
        assert store.count("spec") == 1

    def test_invalid_shard_name_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("../evil", "", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.append("spec", _record(), shard=bad)

    def test_keys_sees_shard_only_specs(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("only-sharded", _record(), shard="w1")
        store.append("flat", _record())
        assert store.keys() == ["flat", "only-sharded"]
        store.clear()
        assert store.keys() == []

    def test_merge_folds_shards_and_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(case_key="k1"))
        store.append(
            "spec", _record(case_key="k1", metrics={"square": 7}),
            shard="w1",
        )
        store.append("spec", _record(case_key="k2"), shard="w2")
        result = store.merge("spec")
        assert result == {"records": 2, "dropped": 1, "shards": 2}
        assert store.shards("spec") == []
        assert not (tmp_path / "spec").exists()
        assert store.load("spec")["k1"].metrics["square"] == 7
        first_bytes = (tmp_path / "spec.jsonl").read_bytes()
        again = store.merge("spec")
        assert again == {"records": 2, "dropped": 0, "shards": 0}
        assert (tmp_path / "spec.jsonl").read_bytes() == first_bytes

    def test_compact_drops_superseded_lines_per_file(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(metrics={"square": 1}))
        store.append("spec", _record(metrics={"square": 2}))
        store.append("spec", _record(case_key="k2"))
        result = store.compact("spec")
        assert result == {"records": 2, "dropped": 1}
        lines = (tmp_path / "spec.jsonl").read_text().splitlines()
        assert len(lines) == 2


class TestCorruptStore:
    """Satellite bugfix: mid-file corruption must raise, not vanish."""

    def test_interior_corruption_raises_with_file_and_line(
        self, tmp_path
    ):
        from repro.campaigns import CorruptStoreError

        store = ResultStore(tmp_path)
        store.append("spec", _record(case_key="k1"))
        with open(store.path_for("spec"), "a") as handle:
            handle.write("{corrupt mid-file\n")
        store.append("spec", _record(case_key="k2"))
        with pytest.raises(CorruptStoreError) as excinfo:
            store.load("spec")
        assert store.path_for("spec") in str(excinfo.value)
        assert ":2:" in str(excinfo.value)
        assert excinfo.value.line == 2

    def test_torn_tail_tolerated_per_shard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append("spec", _record(case_key="k1"), shard="w1")
        with open(store.path_for("spec", "w1"), "a") as handle:
            handle.write('{"campaign": "c", "trunc')
        store.append("spec", _record(case_key="k2"), shard="w2")
        assert set(store.load("spec")) == {"k1", "k2"}

    def test_compact_drop_corrupt_salvages(self, tmp_path):
        from repro.campaigns import CorruptStoreError

        store = ResultStore(tmp_path)
        store.append("spec", _record(case_key="k1"))
        with open(store.path_for("spec"), "a") as handle:
            handle.write("{corrupt mid-file\n")
        store.append("spec", _record(case_key="k2"))
        with pytest.raises(CorruptStoreError):
            store.compact("spec")
        result = store.compact("spec", drop_corrupt=True)
        assert result["records"] == 2
        assert set(store.load("spec")) == {"k1", "k2"}

    def test_append_writes_full_line_in_one_write(self, tmp_path):
        # The crash-safety contract: one write() call per record, so
        # concurrent appenders cannot interleave partial lines.
        import unittest.mock

        store = ResultStore(tmp_path)
        writes = []
        real_open = open

        def spying_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            real_write = handle.write

            def spy(data):
                writes.append(data)
                return real_write(data)

            handle.write = spy
            return handle

        with unittest.mock.patch(
            "builtins.open", side_effect=spying_open
        ):
            store.append("spec", _record())
        assert len(writes) == 1
        assert writes[0].endswith("\n")


class TestExecutionPolicyValidation:
    """Satellite bugfix: bad policies fail loudly, not silently."""

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ExecutionPolicy(workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ExecutionPolicy(workers=-2)

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ExecutionPolicy(chunk_size=0)

    def test_nonpositive_lease_ttl_rejected(self):
        with pytest.raises(ValueError, match="lease_ttl"):
            ExecutionPolicy(lease_ttl=0)

    def test_serial_mode_warns_when_dropping_timeout(self):
        from repro.campaigns import map_trials

        with pytest.warns(RuntimeWarning, match="ignored in serial"):
            results = map_trials(
                lambda x: x + 1,
                [1, 2],
                ExecutionPolicy(workers=1, timeout=5.0),
            )
        assert results == [2, 3]

    def test_serial_mode_without_timeout_does_not_warn(self):
        import warnings as warnings_module

        from repro.campaigns import map_trials

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert map_trials(lambda x: x, [1]) == [1]


class TestTimeoutAccounting:
    """Satellite bugfix: queue-wait must not be charged to the budget.

    Regression shape: two hung chunks occupy both pool workers while an
    innocent quick chunk waits in the queue.  The old accounting
    started every chunk's clock when the *parent* reached it, so the
    queued chunk was tabulated as timed out without ever running.
    """

    def test_innocent_queued_chunk_is_not_billed_for_a_hang(self):
        spec = CampaignSpec(
            name="hang-and-wait",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    cases={
                        "*": (
                            {"x": 1, "delay": 30.0},
                            {"x": 2, "delay": 30.0},
                            {"x": 3, "delay": 0.05},
                        )
                    },
                ),
            ),
        )
        start = time.perf_counter()
        run = execute_campaign(
            spec,
            policy=ExecutionPolicy(
                workers=2, chunk_size=1, timeout=0.5
            ),
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 20.0
        by_x = {r.case["x"]: r for r in run.records}
        assert "TimeoutError" in by_x[1].error
        assert "TimeoutError" in by_x[2].error
        # The innocent chunk ran (in a fresh pool round) and succeeded.
        assert by_x[3].ok, by_x[3].error
        assert by_x[3].metrics == {"slept": True}
        assert run.failed == 2

    def test_late_chunk_gets_a_full_budget_not_free_time(self):
        # Four slow-but-legal chunks through one effective lane: each
        # runs ~0.15s against a 0.4s budget.  Wall-clock when they run
        # serially is ~0.6s > budget; only execution time may count.
        spec = CampaignSpec(
            name="slow-queue",
            scenarios=(
                ScenarioSpec(
                    builder="test-sleep",
                    base={"delay": 0.15},
                    axes={"*": {"x": (1, 2, 3, 4)}},
                ),
            ),
        )
        run = execute_campaign(
            spec,
            policy=ExecutionPolicy(
                workers=2, chunk_size=2, timeout=0.4
            ),
        )
        assert run.failed == 0
        assert all(r.metrics == {"slept": True} for r in run.records)
