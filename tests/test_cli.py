"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E4", "E7", "A1"):
            assert name in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        out = capsys.readouterr().out
        assert "Crusader broadcast" in out

    def test_writes_csv(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "e2.csv")
        assert main(["run", "E2", "--csv", path]) == 0
        assert os.path.exists(path)

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "E99"])


class TestCampaign:
    def test_lists_campaign_catalog(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E4", "E5", "E6"):
            assert name in out

    def test_show_describes_grid(self, capsys):
        assert main(["campaign", "show", "E4"]) == 0
        out = capsys.readouterr().out
        assert "cps-skew: 6 cases" in out
        assert "spec key" in out

    def test_run_prints_table_and_summary(self, capsys):
        assert main(["campaign", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "APA convergence" in out
        assert "6 executed, 0 cached, 0 failed" in out

    def test_run_with_store_replays_from_cache(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        assert main(["campaign", "run", "E1", "--store", store]) == 0
        capsys.readouterr()
        assert (
            main(
                ["campaign", "run", "E1", "--store", store, "--resume"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 executed, 6 cached, 0 failed" in out

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "E1", "--resume"])

    def test_unknown_campaign(self):
        with pytest.raises(SystemExit, match="unknown campaign"):
            main(["campaign", "run", "E99"])


class TestParams:
    def test_prints_bounds(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "S (skew bound)" in out
        assert "f=3" in out

    def test_explicit_f(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                    "--f", "2",
                ]
            )
            == 0
        )
        assert "f=2" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestErrorPaths:
    """Unknown names exit cleanly with did-you-mean hints (no
    tracebacks), and missing inputs produce actionable messages."""

    def test_unknown_experiment_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean 'E4'"):
            main(["run", "E44"])

    def test_unknown_campaign_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean 'STRESS'"):
            main(["campaign", "run", "STRES"])

    def test_unknown_campaign_show(self):
        with pytest.raises(SystemExit, match="unknown campaign"):
            main(["campaign", "show", "E99"])

    def test_unknown_perf_case_suggests_close_match(self):
        with pytest.raises(
            SystemExit, match="did you mean 'queue-churn'"
        ):
            main(["perf", "run", "--case", "queue-churns", "--quick"])

    def test_perf_compare_missing_baseline(self, tmp_path):
        missing = os.path.join(tmp_path, "nope.json")
        with pytest.raises(SystemExit, match="baseline file not found"):
            main(["perf", "compare", "--baseline", missing])

    def test_unknown_scenario_show_suggests_close_match(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["scenarios", "show", "eclips"])

    def test_check_run_unknown_scenario_exit_code(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "run", "no-such-scenario-at-all"])
        assert excinfo.value.code != 0


class TestChurnErrorPaths:
    """Unknown churn profiles and malformed fault schedules exit
    cleanly and non-zero — never with a traceback."""

    def test_unknown_churn_profile_did_you_mean(self):
        with pytest.raises(
            SystemExit, match="did you mean 'single-crash'"
        ) as excinfo:
            main(["check", "run", "single-crsh", "--kind", "churn"])
        assert excinfo.value.code != 0

    def test_scenarios_show_unknown_churn_profile(self):
        with pytest.raises(
            SystemExit, match="did you mean 'flapping-node'"
        ) as excinfo:
            main(["scenarios", "show", "churn:flapping-nod"])
        assert excinfo.value.code != 0

    def test_malformed_schedule_is_tabulated_not_raised(self, capsys):
        # A factory override producing an invalid schedule fails the
        # conformance run (exit 1) with the validation error in the
        # report — no traceback.
        code = main(
            [
                "check", "run", "single-crash", "--kind", "churn",
                "--param", "node=99",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "MalformedScheduleError" in out
        assert "outside the system" in out

    def test_unknown_factory_param_is_tabulated(self, capsys):
        code = main(
            [
                "check", "run", "flapping-node", "--kind", "churn",
                "--param", "bogus=1",
            ]
        )
        assert code == 1
        assert "unexpected keyword" in capsys.readouterr().out

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(
                [
                    "check", "run", "single-crash", "--kind", "churn",
                    "--param", "nodeless",
                ]
            )

    def test_main_converts_malformed_schedule_errors(self, capsys):
        # A schedule error escaping a handler (here: forced through a
        # campaign whose case names an invalid churn override) becomes
        # a clean SystemExit via the main() wrapper.
        from repro.cli import main as cli_main
        from repro.dynamics import MalformedScheduleError

        def handler(_args):
            raise MalformedScheduleError("synthetic failure")

        import repro.cli as cli_module

        parser = cli_module.build_parser()
        args = parser.parse_args(["check", "list"])
        args.handler = handler
        import unittest.mock as mock

        with mock.patch.object(
            cli_module, "build_parser"
        ) as fake_parser:
            fake_parser.return_value.parse_args.return_value = args
            with pytest.raises(
                SystemExit, match="malformed fault schedule"
            ) as excinfo:
                cli_main(["check", "list"])
        assert excinfo.value.code != 0


class TestChurnCli:
    def test_scenarios_list_includes_churn_kind(self, capsys):
        assert main(["scenarios", "list", "--kind", "churn"]) == 0
        out = capsys.readouterr().out
        for key in ("single-crash", "late-join-cohort",
                    "adversary-handoff"):
            assert key in out

    def test_check_run_churn_profile_passes(self, capsys):
        assert main(["check", "run", "single-crash"]) == 0
        out = capsys.readouterr().out
        assert "stabilization" in out
        assert "[churn]" in out

    def test_check_fixture_churn_fires(self, capsys):
        assert main(["check", "fixture", "--fixture", "churn"]) == 0
        out = capsys.readouterr().out
        assert "never occurred" in out
        assert "monitors fire" in out

    def test_campaign_run_churn_stress(self, capsys):
        assert main(["campaign", "run", "CHURN-STRESS"]) == 0
        out = capsys.readouterr().out
        assert "fault schedules" in out
        assert "0 failed" in out


class TestTelemetryCli:
    def _sidecar(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        assert (
            main(
                [
                    "campaign", "run", "E4", "--telemetry",
                    "--store", store,
                ]
            )
            == 0
        )
        capsys.readouterr()
        return store

    def test_list_prints_catalog(self, capsys):
        assert main(["telemetry", "list"]) == 0
        out = capsys.readouterr().out
        assert "events.dispatched.delivery" in out
        assert "tcb.echoes" in out

    def test_campaign_run_writes_sidecar_and_shows_it(
        self, tmp_path, capsys
    ):
        store = self._sidecar(tmp_path, capsys)
        sidecars = [
            name
            for name in os.listdir(store)
            if name.endswith(".telemetry.json")
        ]
        assert len(sidecars) == 1
        assert (
            main(["telemetry", "show", "E4", "--store", store]) == 0
        )
        out = capsys.readouterr().out
        assert "6/6 trials instrumented" in out
        assert "pulses.recorded" in out
        # A direct path works without --store.
        path = os.path.join(store, sidecars[0])
        assert main(["telemetry", "show", path]) == 0

    def test_aggregate_and_diff(self, tmp_path, capsys):
        store = self._sidecar(tmp_path, capsys)
        out_path = os.path.join(tmp_path, "aggregate.json")
        assert (
            main(
                [
                    "telemetry", "aggregate", "--store", store,
                    "--out", out_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 sidecar(s)" in out
        assert os.path.exists(out_path)
        assert (
            main(
                [
                    "telemetry", "diff", "E4", "E4", "--store", store,
                    "--changed-only",
                ]
            )
            == 0
        )
        assert "no matching metrics" in capsys.readouterr().out

    def test_progress_heartbeats_go_to_stderr(self, capsys):
        assert main(["campaign", "run", "E4", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[E4/quick]" in captured.err
        assert "done:" in captured.err
        assert "[E4/quick]" not in captured.out

    def test_profile_prints_hotspots(self, capsys):
        assert (
            main(
                [
                    "campaign", "run", "E4", "--profile",
                    "--profile-top", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tottime" in out
        assert "scheduler" in out

    def test_perf_run_prints_verify_cache_rate(self, tmp_path, capsys):
        assert (
            main(
                [
                    "perf", "run", "--quick", "--case", "queue-churn",
                    "--repeats", "1", "--out", str(tmp_path),
                ]
            )
            == 0
        )
        assert "verify-cache" in capsys.readouterr().out

    def test_unknown_campaign_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown campaign") as info:
            main(
                [
                    "telemetry", "show", "E44",
                    "--store", str(tmp_path),
                ]
            )
        assert info.value.code != 0

    def test_unknown_metric_did_you_mean(self, tmp_path, capsys):
        store = self._sidecar(tmp_path, capsys)
        with pytest.raises(
            SystemExit, match="did you mean 'tcb.echoes'"
        ) as info:
            main(
                [
                    "telemetry", "show", "E4", "--store", store,
                    "--metric", "tcb.echos",
                ]
            )
        assert info.value.code != 0

    def test_missing_sidecar_suggests_the_run_command(self, tmp_path):
        with pytest.raises(
            SystemExit, match="no telemetry sidecar"
        ) as info:
            main(
                [
                    "telemetry", "show", "E4",
                    "--store", str(tmp_path),
                ]
            )
        assert info.value.code != 0

    def test_show_requires_store_or_path(self):
        with pytest.raises(SystemExit, match="--store is required"):
            main(["telemetry", "show", "E4"])


class TestScalingCli:
    def test_queue_requires_store(self):
        with pytest.raises(SystemExit, match="--queue requires"):
            main(["campaign", "run", "E1", "--queue", "/tmp/q"])

    def test_queue_rejects_fresh(self, tmp_path):
        store = os.path.join(tmp_path, "store")
        queue = os.path.join(tmp_path, "q")
        args = ["campaign", "run", "E1", "--queue", queue]
        with pytest.raises(SystemExit, match="incompatible"):
            main(args + ["--store", store, "--fresh"])

    def test_adaptive_requires_ci_width(self):
        with pytest.raises(SystemExit, match="requires --ci-width"):
            main(["campaign", "run", "E1", "--adaptive"])

    def test_ci_width_requires_adaptive(self):
        with pytest.raises(SystemExit, match="--adaptive"):
            main(["campaign", "run", "E1", "--ci-width", "0.1"])

    def test_workers_zero_is_rejected(self):
        with pytest.raises(SystemExit, match="workers must be >= 1"):
            main(["campaign", "run", "E1", "--workers", "0"])

    def test_worker_without_enqueue_exits(self, tmp_path):
        store = os.path.join(tmp_path, "store")
        queue = os.path.join(tmp_path, "q")
        args = ["campaign", "worker", "--queue", queue]
        with pytest.raises(SystemExit, match="no campaign enqueued"):
            main(args + ["--store", store])

    def test_store_list_empty_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no result stores"):
            main(["store", "list", "--store", str(tmp_path)])

    def test_enqueue_worker_merge_round_trip(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        queue = os.path.join(tmp_path, "q")
        enqueue = ["campaign", "enqueue", "E1", "--queue", queue]
        assert main(enqueue + ["--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "enqueued campaign E1 [quick]: 6/6 trials" in out
        assert "3 chunks" in out
        worker = ["campaign", "worker", "--queue", queue]
        worker += ["--store", store, "--worker-id", "w1"]
        assert main(worker) == 0
        out = capsys.readouterr().out
        assert "worker w1: 3 chunks — 6 trials executed" in out
        assert main(["store", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "6 record(s) (1 shard(s): w1)" in out
        assert main(["store", "merge", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "merged 1 shard(s)" in out
        assert "6 record(s), 0 superseded" in out
        # The merged store replays as a pure cache hit.
        rerun = ["campaign", "run", "E1", "--store", store]
        assert main(rerun + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 6 cached" in out

    def test_enqueue_with_store_skips_cached(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        queue = os.path.join(tmp_path, "q")
        assert main(["campaign", "run", "E1", "--store", store]) == 0
        capsys.readouterr()
        enqueue = ["campaign", "enqueue", "E1", "--queue", queue]
        assert main(enqueue + ["--store", store]) == 0
        out = capsys.readouterr().out
        assert "0/6 trials in 0 chunks" in out

    def test_reenqueue_same_queue_exits(self, tmp_path, capsys):
        queue = os.path.join(tmp_path, "q")
        enqueue = ["campaign", "enqueue", "E1", "--queue", queue]
        assert main(enqueue) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already has a campaign"):
            main(enqueue)

    def test_store_compact_reports_counts(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        assert main(["campaign", "run", "E1", "--store", store]) == 0
        capsys.readouterr()
        assert main(["store", "compact", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "compacted — 6 record(s) kept, 0 line(s) dropped" in out

    def test_adaptive_run_prints_savings(self, tmp_path, capsys):
        args = ["campaign", "run", "STRESS", "--adaptive"]
        args += ["--ci-width", "1000"]
        args += ["--min-trials", "2", "--max-trials", "4"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "adaptive[max_skew]: 12 trials over 6 cells" in out
        assert "saved 12 vs fixed 4x replication" in out
        assert "6 converged, 0 at cap" in out
        assert "adaptive target: max_skew CI width <= 1000" in out
