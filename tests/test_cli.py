"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E4", "E7", "A1"):
            assert name in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        out = capsys.readouterr().out
        assert "Crusader broadcast" in out

    def test_writes_csv(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "e2.csv")
        assert main(["run", "E2", "--csv", path]) == 0
        assert os.path.exists(path)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])


class TestCampaign:
    def test_lists_campaign_catalog(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E4", "E5", "E6"):
            assert name in out

    def test_show_describes_grid(self, capsys):
        assert main(["campaign", "show", "E4"]) == 0
        out = capsys.readouterr().out
        assert "cps-skew: 6 cases" in out
        assert "spec key" in out

    def test_run_prints_table_and_summary(self, capsys):
        assert main(["campaign", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "APA convergence" in out
        assert "6 executed, 0 cached, 0 failed" in out

    def test_run_with_store_replays_from_cache(self, tmp_path, capsys):
        store = os.path.join(tmp_path, "store")
        assert main(["campaign", "run", "E1", "--store", store]) == 0
        capsys.readouterr()
        assert (
            main(
                ["campaign", "run", "E1", "--store", store, "--resume"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 executed, 6 cached, 0 failed" in out

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "E1", "--resume"])

    def test_unknown_campaign(self):
        with pytest.raises(KeyError):
            main(["campaign", "run", "E99"])


class TestParams:
    def test_prints_bounds(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "S (skew bound)" in out
        assert "f=3" in out

    def test_explicit_f(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                    "--f", "2",
                ]
            )
            == 0
        )
        assert "f=2" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
