"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("E1", "E4", "E7", "A1"):
            assert name in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "E2"]) == 0
        out = capsys.readouterr().out
        assert "Crusader broadcast" in out

    def test_writes_csv(self, tmp_path, capsys):
        path = os.path.join(tmp_path, "e2.csv")
        assert main(["run", "E2", "--csv", path]) == 0
        assert os.path.exists(path)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "E99"])


class TestParams:
    def test_prints_bounds(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "S (skew bound)" in out
        assert "f=3" in out

    def test_explicit_f(self, capsys):
        assert (
            main(
                [
                    "params",
                    "--theta", "1.001",
                    "--d", "1.0",
                    "--u", "0.01",
                    "--n", "8",
                    "--f", "2",
                ]
            )
            == 0
        )
        assert "f=2" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
