"""Unit tests for the TCB per-instance state machine (Figure 2)."""

import pytest

from repro.core.tcb import TcbInstance, TcbState, offset_estimate
from repro.sync.crusader import BOT


def make_instance(**overrides):
    defaults = dict(
        dealer=1,
        pulse_round=1,
        pulse_local=10.0,
        window=2.0,
        finalize_wait=0.8,  # d - 2u with d=1, u=0.1
        echo_rejection=True,
    )
    defaults.update(overrides)
    return TcbInstance(**defaults)


class TestAcceptance:
    def test_accepts_inside_window_and_requests_echo(self):
        instance = make_instance()
        actions = instance.on_direct(11.0)
        assert actions.echo
        assert actions.set_finalize_timer == pytest.approx(11.8)
        assert instance.state is TcbState.ACCEPTED

    def test_finalize_outputs_acceptance_time(self):
        instance = make_instance()
        instance.on_direct(11.0)
        instance.on_finalize()
        assert instance.resolved()
        assert instance.output == 11.0

    def test_ignores_direct_at_or_before_pulse(self):
        instance = make_instance()
        actions = instance.on_direct(10.0)
        assert not actions.echo
        assert instance.state is TcbState.WAITING

    def test_ignores_direct_after_window(self):
        instance = make_instance()
        actions = instance.on_direct(12.5)
        assert not actions.echo
        assert instance.state is TcbState.WAITING

    def test_accepts_exactly_at_window_close(self):
        """The Lemma 10 worst case arrives exactly at the bound."""
        instance = make_instance()
        actions = instance.on_direct(12.0)
        assert actions.echo
        assert instance.state is TcbState.ACCEPTED

    def test_second_direct_ignored_after_acceptance(self):
        instance = make_instance()
        instance.on_direct(11.0)
        actions = instance.on_direct(11.2)
        assert not actions.echo
        assert instance.accept_local == 11.0

    def test_timeout_outputs_bot(self):
        instance = make_instance()
        instance.on_window_end()
        assert instance.resolved()
        assert instance.output is BOT
        assert instance.reject_reason == "timeout"

    def test_window_end_after_acceptance_is_harmless(self):
        instance = make_instance()
        instance.on_direct(11.0)
        instance.on_window_end()
        assert instance.state is TcbState.ACCEPTED


class TestEchoRejection:
    def test_echo_within_guard_rejects(self):
        instance = make_instance()
        instance.on_direct(11.0)
        instance.on_echo(11.5)  # < 11.8 deadline
        assert instance.output is BOT
        assert instance.reject_reason == "echo-within-guard"

    def test_echo_at_exact_deadline_does_not_reject(self):
        instance = make_instance()
        instance.on_direct(11.0)
        instance.on_echo(11.8)
        assert instance.state is TcbState.ACCEPTED

    def test_echo_after_deadline_does_not_reject(self):
        instance = make_instance()
        instance.on_direct(11.0)
        instance.on_echo(11.9)
        instance.on_finalize()
        assert instance.output == 11.0

    def test_early_echo_then_direct_rejects(self):
        """An echo before the direct message proves someone saw it much
        earlier — rejection at acceptance time."""
        instance = make_instance()
        instance.on_echo(10.5)
        actions = instance.on_direct(11.0)
        assert actions.echo  # forwards first, per Figure 2's order
        assert instance.output is BOT
        assert instance.reject_reason == "echo-before-acceptance"

    def test_echo_at_or_before_pulse_is_ignored(self):
        instance = make_instance()
        instance.on_echo(10.0)
        instance.on_direct(11.0)
        instance.on_finalize()
        assert instance.output == 11.0

    def test_earliest_echo_tracked(self):
        instance = make_instance()
        instance.on_echo(11.9)
        instance.on_echo(11.2)
        instance.on_echo(11.6)
        assert instance.earliest_echo == 11.2

    def test_echo_ignored_when_done(self):
        instance = make_instance()
        instance.on_window_end()
        instance.on_echo(11.0)
        assert instance.output is BOT

    def test_ablation_disables_rejection(self):
        instance = make_instance(echo_rejection=False)
        instance.on_echo(10.5)
        instance.on_direct(11.0)
        instance.on_echo(11.1)
        instance.on_finalize()
        assert instance.output == 11.0


class TestOffsetEstimate:
    def test_formula(self):
        # Delta = h - H(p) - d + u - S
        value = offset_estimate(11.0, 10.0, d=1.0, u=0.1, s_bound=0.05)
        assert value == pytest.approx(1.0 - 1.0 + 0.1 - 0.05)

    def test_minimal_delay_gives_true_offset(self):
        """All rates 1, delay d-u, dealer offset S: estimate is exact."""
        d, u, s = 1.0, 0.1, 0.05
        p_v, p_u = 10.0, 10.02
        send = p_u + s  # dealer sends S after its pulse (rate 1)
        h = send + d - u
        estimate = offset_estimate(h, p_v, d, u, s)
        assert estimate == pytest.approx(p_u - p_v)

    def test_maximal_delay_adds_uncertainty(self):
        d, u, s = 1.0, 0.1, 0.05
        p_v, p_u = 10.0, 10.02
        h = p_u + s + d
        estimate = offset_estimate(h, p_v, d, u, s)
        assert estimate == pytest.approx(p_u - p_v + u)
