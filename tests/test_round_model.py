"""Tests for the synchronous round engine and its rushing adversary."""

import pytest

from repro.sim.errors import ConfigurationError, ForgeryError
from repro.sync.round_model import (
    BROADCAST,
    RoundMessage,
    SyncAdversary,
    SyncNode,
    SynchronousNetwork,
)


class CollectorNode(SyncNode):
    """Broadcasts its id each round; collects everything received."""

    def __init__(self):
        super().__init__()
        self.inboxes = []

    def begin_round(self, round_no):
        return {BROADCAST: ("tag", self.ctx.node_id, round_no)}

    def end_round(self, round_no, inbox):
        self.inboxes.append(dict(inbox))


class SignerNode(CollectorNode):
    def begin_round(self, round_no):
        return {BROADCAST: self.ctx.sign(("r", round_no))}


def make_network(n=4, f=1, faulty=(), adversary=None, node_cls=CollectorNode):
    nodes = {v: node_cls() for v in range(n) if v not in set(faulty)}
    return (
        SynchronousNetwork(nodes, n, f, faulty, adversary),
        nodes,
    )


class TestRounds:
    def test_broadcast_reaches_everyone_including_self(self):
        network, nodes = make_network()
        network.run_round(1)
        for v, node in nodes.items():
            assert set(node.inboxes[0]) == {0, 1, 2, 3}
            assert node.inboxes[0][v] == ("tag", v, 1)

    def test_directed_sends(self):
        class Directed(CollectorNode):
            def begin_round(self, round_no):
                if self.ctx.node_id == 0:
                    return {1: "direct"}
                return {}

        network, nodes = make_network(node_cls=Directed)
        network.run_round(1)
        assert nodes[1].inboxes[0] == {0: "direct"}
        assert nodes[2].inboxes[0] == {}

    def test_faulty_nodes_do_not_run_protocol(self):
        network, nodes = make_network(faulty=[3])
        network.run_round(1)
        assert 3 not in nodes
        for node in nodes.values():
            assert 3 not in node.inboxes[0]

    def test_too_many_corruptions_rejected(self):
        with pytest.raises(ConfigurationError):
            make_network(f=1, faulty=[2, 3])

    def test_run_returns_outputs(self):
        class OneShot(CollectorNode):
            def end_round(self, round_no, inbox):
                self.output = len(inbox)

        network, _nodes = make_network(node_cls=OneShot)
        outputs = network.run(1)
        assert outputs == {0: 4, 1: 4, 2: 4, 3: 4}


class TestRushingAdversary:
    def test_adversary_sees_current_round_messages(self):
        observed = []

        class Peek(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                observed.append(len(honest_messages))
                return []

        network, _ = make_network(faulty=[3], adversary=Peek())
        network.run_round(1)
        assert observed == [3 * 4]  # three honest broadcast to four nodes

    def test_adversary_messages_delivered_same_round(self):
        class Inject(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                return [RoundMessage(3, 0, "injected")]

        network, nodes = make_network(faulty=[3], adversary=Inject())
        network.run_round(1)
        assert nodes[0].inboxes[0][3] == "injected"

    def test_adversary_cannot_send_from_honest(self):
        class Spoof(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                return [RoundMessage(0, 1, "spoof")]

        network, _ = make_network(faulty=[3], adversary=Spoof())
        with pytest.raises(ConfigurationError):
            network.run_round(1)

    def test_rushing_can_replay_same_round_signature(self):
        class Replay(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                signature = honest_messages[0].payload
                return [RoundMessage(3, 0, ("replay", signature))]

        network, nodes = make_network(
            faulty=[3], adversary=Replay(), node_cls=SignerNode
        )
        network.run_round(1)
        sender, payload = 3, nodes[0].inboxes[0][3]
        assert payload[0] == "replay"

    def test_forgery_rejected(self):
        class Forge(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                from repro.crypto.pki import PublicKeyInfrastructure

                other = PublicKeyInfrastructure(4)
                return [
                    RoundMessage(3, 0, other.key_pair(0).sign("never-sent"))
                ]

        network, _ = make_network(
            faulty=[3], adversary=Forge(), node_cls=SignerNode
        )
        with pytest.raises(ForgeryError):
            network.run_round(1)

    def test_faulty_keys_always_available(self):
        class OwnKey(SyncAdversary):
            def round_messages(self, ctx, round_no, honest_messages):
                return [
                    RoundMessage(3, 0, ctx.sign_as(3, ("evil", round_no)))
                ]

        network, nodes = make_network(
            faulty=[3], adversary=OwnKey(), node_cls=SignerNode
        )
        network.run_round(1)
        assert nodes[0].inboxes[0][3].signer == 3
