"""Unit tests for events, network/delay policies, knowledge, and traces."""

import pytest

from repro.crypto.pki import PublicKeyInfrastructure
from repro.sim.errors import ConfigurationError, ForgeryError, ModelViolation
from repro.sim.events import (
    PRIORITY_ADVERSARY,
    PRIORITY_DELIVERY,
    PRIORITY_TIMER,
    EventQueue,
)
from repro.sim.knowledge import SignatureKnowledge
from repro.sim.network import (
    BiasedPartitionDelayPolicy,
    ConstantFractionDelayPolicy,
    MaximumDelayPolicy,
    MinimumDelayPolicy,
    NetworkConfig,
    PerLinkDelayPolicy,
    RandomDelayPolicy,
    SkewingDelayPolicy,
)
from repro.sim.trace import (
    DeliveryRecord,
    SendRecord,
    Trace,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, PRIORITY_TIMER, "late")
        queue.push(1.0, PRIORITY_TIMER, "early")
        assert queue.pop() == (1.0, "early")
        assert queue.pop() == (2.0, "late")

    def test_timers_before_deliveries_at_equal_time(self):
        queue = EventQueue()
        queue.push(1.0, PRIORITY_DELIVERY, "delivery")
        queue.push(1.0, PRIORITY_TIMER, "timer")
        queue.push(1.0, PRIORITY_ADVERSARY, "adversary")
        assert [queue.pop()[1] for _ in range(3)] == [
            "timer",
            "delivery",
            "adversary",
        ]

    def test_fifo_within_priority(self):
        queue = EventQueue()
        queue.push(1.0, PRIORITY_TIMER, "first")
        queue.push(1.0, PRIORITY_TIMER, "second")
        assert queue.pop()[1] == "first"
        assert queue.pop()[1] == "second"

    def test_cancellation(self):
        queue = EventQueue()
        handle = queue.push(1.0, PRIORITY_TIMER, "gone")
        queue.push(2.0, PRIORITY_TIMER, "kept")
        assert queue.cancel(handle)
        assert not queue.cancel(handle)  # already dead
        assert len(queue) == 1
        assert queue.pop() == (2.0, "kept")
        assert queue.pop() is None

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(3.0, PRIORITY_TIMER, "x")
        assert queue.peek_time() == 3.0
        assert len(queue) == 1


class TestNetworkConfig:
    def test_validates_basic_fields(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(0, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(3, -1.0, 0.1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(3, 1.0, 2.0)

    def test_u_tilde_bounds(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(3, 1.0, 0.2, u_tilde=0.1)  # below u
        config = NetworkConfig(3, 1.0, 0.1, u_tilde=0.5)
        assert config.faulty_uncertainty == 0.5

    def test_u_tilde_defaults_to_u(self):
        config = NetworkConfig(3, 1.0, 0.1)
        assert config.faulty_uncertainty == 0.1

    def test_delay_bounds_per_link_kind(self):
        config = NetworkConfig(3, 1.0, 0.1, u_tilde=0.4)
        assert config.delay_bounds(True) == (0.9, 1.0)
        assert config.delay_bounds(False) == (0.6, 1.0)

    def test_validate_delay_rejects_out_of_range(self):
        config = NetworkConfig(3, 1.0, 0.1)
        with pytest.raises(ModelViolation):
            config.validate_delay(0.5, True, True)
        with pytest.raises(ModelViolation):
            config.validate_delay(1.5, True, True)

    def test_validate_delay_clamps_float_noise(self):
        config = NetworkConfig(3, 1.0, 0.1)
        assert config.validate_delay(1.0 + 1e-12, True, True) == 1.0


class TestDelayPolicies:
    config = NetworkConfig(4, 1.0, 0.2)

    def _delay(self, policy, src=0, dst=1, honest=True):
        return policy.delay(self.config, src, dst, 0.0, None, honest)

    def test_maximum(self):
        assert self._delay(MaximumDelayPolicy()) == 1.0

    def test_minimum(self):
        assert self._delay(MinimumDelayPolicy()) == pytest.approx(0.8)

    def test_constant_fraction(self):
        policy = ConstantFractionDelayPolicy(0.5)
        assert self._delay(policy) == pytest.approx(0.9)
        with pytest.raises(ConfigurationError):
            ConstantFractionDelayPolicy(1.5)

    def test_random_within_bounds_and_deterministic(self):
        a = RandomDelayPolicy(seed=3)
        b = RandomDelayPolicy(seed=3)
        for _ in range(50):
            da = self._delay(a)
            assert 0.8 - 1e-9 <= da <= 1.0 + 1e-9
            assert da == self._delay(b)

    def test_biased_partition(self):
        policy = BiasedPartitionDelayPolicy([0, 1])
        assert self._delay(policy, 0, 1) == pytest.approx(0.8)  # same group
        assert self._delay(policy, 0, 2) == pytest.approx(1.0)  # across

    def test_skewing(self):
        policy = SkewingDelayPolicy(slow_senders=[0])
        assert self._delay(policy, 0, 1) == pytest.approx(1.0)
        assert self._delay(policy, 1, 0) == pytest.approx(0.8)

    def test_per_link_overrides(self):
        policy = PerLinkDelayPolicy({(0, 1): 0.85})
        assert self._delay(policy, 0, 1) == pytest.approx(0.85)
        assert self._delay(policy, 1, 0) == pytest.approx(1.0)  # fallback

    def test_describe_strings(self):
        assert "0.5" in ConstantFractionDelayPolicy(0.5).describe()
        assert "seed" in RandomDelayPolicy(7).describe()


class TestSignatureKnowledge:
    def setup_method(self):
        self.pki = PublicKeyInfrastructure(4)
        self.knowledge = SignatureKnowledge(faulty=[3])

    def test_faulty_signer_always_known(self):
        signature = self.pki.key_pair(3).sign("m")
        assert self.knowledge.knows(signature, 0.0)
        assert self.knowledge.earliest_known(signature) == 0.0

    def test_honest_signature_unknown_until_learned(self):
        signature = self.pki.key_pair(0).sign("m")
        assert not self.knowledge.knows(signature, 100.0)
        self.knowledge.learn(signature, 5.0)
        assert not self.knowledge.knows(signature, 4.0)
        assert self.knowledge.knows(signature, 5.0)

    def test_learning_keeps_earliest_time(self):
        signature = self.pki.key_pair(0).sign("m")
        self.knowledge.learn(signature, 5.0)
        self.knowledge.learn(signature, 9.0)
        assert self.knowledge.earliest_known(signature) == 5.0
        self.knowledge.learn(signature, 2.0)
        assert self.knowledge.earliest_known(signature) == 2.0

    def test_learn_payload_walks_containers(self):
        signature = self.pki.key_pair(1).sign("m")
        self.knowledge.learn_payload({"k": [signature]}, 3.0)
        assert self.knowledge.knows(signature, 3.0)

    def test_check_payload_raises_on_unknown(self):
        signature = self.pki.key_pair(0).sign("m")
        with pytest.raises(ForgeryError):
            self.knowledge.check_payload((signature,), 1.0, sender=3)

    def test_check_payload_passes_after_learning(self):
        signature = self.pki.key_pair(0).sign("m")
        self.knowledge.learn(signature, 1.0)
        self.knowledge.check_payload((signature,), 1.0, sender=3)

    def test_equivalent_signature_counts_as_known(self):
        """Deterministic scheme: a re-mint of the same (signer, value) is
        the same knowledge object."""
        first = self.pki.key_pair(0).sign("m")
        second = self.pki.key_pair(0).sign("m")
        self.knowledge.learn(first, 1.0)
        assert self.knowledge.knows(second, 1.0)


class TestTrace:
    def test_records_in_order_and_filters(self):
        trace = Trace()
        trace.send(time=0.0, src=0, dst=1, payload="m", delay=1.0,
                   src_honest=True)
        trace.delivery(time=1.0, src=0, dst=1, payload="m")
        trace.pulse(time=1.5, node=1, index=1, local_time=1.6)
        trace.protocol(time=2.0, node=1, kind="cps-round", details={})
        assert len(trace) == 4
        assert len(list(trace.of_type(SendRecord))) == 1
        assert len(list(trace.of_type(DeliveryRecord))) == 1
        assert trace.pulses_of(1)[0].index == 1
        assert trace.protocol_events("cps-round")[0].node == 1
        assert trace.protocol_events("other") == []

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.pulse(time=1.0, node=0, index=1, local_time=1.0)
        assert len(trace) == 0

    def test_where_predicate(self):
        trace = Trace()
        for i in range(3):
            trace.pulse(time=float(i), node=i, index=1, local_time=float(i))
        late = list(trace.where(lambda r: r.time >= 1.0))
        assert len(late) == 2
